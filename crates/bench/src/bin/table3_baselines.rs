//! **Table 3**: raw homogeneous baseline performance (ms) for each device
//! on CPU (big cores) and GPU, with the faster entry marked.
//!
//! Shape targets: the GPU wins AlexNet-dense everywhere by a wide margin;
//! sparse is close on the Pixel and GPU-favoured elsewhere; the CPU wins
//! octree on both phones while the (CUDA) GPU wins it on both Jetson
//! configurations.

use bt_core::{measure_baselines, SimBackend};
use serde::Serialize;

/// Paper's Table 3 (CPU | GPU, milliseconds), for side-by-side comparison.
const PAPER: [[(f64, f64); 3]; 4] = [
    [(155.63, 1.89), (8.51, 8.35), (8.40, 34.73)], // Pixel
    [(113.88, 1.89), (7.52, 3.95), (5.99, 22.26)], // OnePlus
    [(19.90, 1.04), (4.81, 1.14), (3.29, 1.08)],   // Jetson
    [(11.36, 1.08), (4.58, 1.78), (4.26, 0.74)],   // Jetson LP
];

#[derive(Serialize)]
struct Cell {
    device: String,
    app: String,
    cpu_ms: f64,
    gpu_ms: f64,
    winner: String,
    paper_cpu_ms: f64,
    paper_gpu_ms: f64,
    winner_matches_paper: bool,
}

fn main() {
    let apps = bt_bench::paper_apps();
    let labels = bt_bench::paper_app_labels();

    println!("Table 3 — homogeneous baselines (ms), measured | paper\n");
    println!(
        "{:>22} {:>26} {:>26} {:>26}",
        "device", "AlexNet-dense", "AlexNet-sparse", "Octree"
    );

    let mut cells = Vec::new();
    let mut winners_match = 0;
    for (di, soc) in bt_bench::paper_devices().iter().enumerate() {
        let mut line = format!("{:>22}", soc.name());
        for (ai, app) in apps.iter().enumerate() {
            let backend = SimBackend::new(soc.clone(), app.clone());
            let pair = measure_baselines(&backend).expect("baselines simulate");
            let (cpu, gpu) = (
                pair.cpu().expect("cpu baseline").as_millis(),
                pair.gpu().expect("gpu baseline").as_millis(),
            );
            let (p_cpu, p_gpu) = PAPER[di][ai];
            let winner = if cpu <= gpu { "cpu" } else { "gpu" };
            let paper_winner = if p_cpu <= p_gpu { "cpu" } else { "gpu" };
            let matches = winner == paper_winner;
            winners_match += usize::from(matches);
            line.push_str(&format!(
                " {:>11} vs {:>11}",
                format!("{cpu:.2}|{gpu:.2}"),
                format!("{p_cpu:.2}|{p_gpu:.2}")
            ));
            cells.push(Cell {
                device: soc.name().to_string(),
                app: labels[ai].to_string(),
                cpu_ms: cpu,
                gpu_ms: gpu,
                winner: winner.to_string(),
                paper_cpu_ms: p_cpu,
                paper_gpu_ms: p_gpu,
                winner_matches_paper: matches,
            });
        }
        println!("{line}");
    }
    println!(
        "\nWinner agreement with the paper: {winners_match}/12 cells \
         (the paper's LP-mode CPU entries are internally inconsistent; see EXPERIMENTS.md)"
    );

    bt_bench::write_result("table3_baselines", &cells);
}
