//! **Extension experiment**: BetterTogether's static interference-aware
//! pipelines vs. a StarPU-style dynamic greedy runtime (Related Work, §6).
//!
//! The dynamic scheduler assigns each ready stage to an idle PU at dispatch
//! time (FIFO or best-isolated-fit). It pays per-stage synchronization
//! (the runtime must observe completions to make decisions) and places
//! work using isolated estimates that cannot anticipate the interference
//! its own concurrent placements create — the two effects the paper argues
//! make static, interference-profiled schedules win on edge SoCs.

use bt_core::BetterTogether;
use bt_soc::des_dynamic::{simulate_dynamic, DynamicPolicy};
use bt_soc::RunConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    device: String,
    app: String,
    bt_static_ms: f64,
    dynamic_fifo_ms: f64,
    dynamic_bestfit_ms: f64,
    static_vs_bestfit: f64,
}

fn main() {
    let apps = bt_bench::paper_apps();
    let labels = bt_bench::paper_app_labels();
    let des = RunConfig {
        noise_sigma: 0.0,
        ..RunConfig::default()
    };

    println!("Static (BetterTogether) vs dynamic greedy scheduling, ms/task\n");
    println!(
        "{:>22} {:>9} {:>10} {:>11} {:>12} {:>10}",
        "device", "app", "BT static", "dyn FIFO", "dyn BestFit", "BT gain"
    );

    let mut rows = Vec::new();
    for soc in bt_bench::paper_devices() {
        for (ai, app) in apps.iter().enumerate() {
            let d = BetterTogether::new(soc.clone(), app.clone())
                .run()
                .expect("framework runs");
            let works = app.works();
            let fifo = simulate_dynamic(&soc, &works, &des, DynamicPolicy::Fifo, None)
                .expect("simulates")
                .expect_stats()
                .time_per_task
                .as_millis();
            let fit = simulate_dynamic(&soc, &works, &des, DynamicPolicy::BestFit, None)
                .expect("simulates")
                .expect_stats()
                .time_per_task
                .as_millis();
            let bt = d.best_latency().expect("measured").as_millis();
            let gain = fit / bt;
            println!(
                "{:>22} {:>9} {:>10.2} {:>11.2} {:>12.2} {:>9.2}x",
                soc.name(),
                labels[ai],
                bt,
                fifo,
                fit,
                gain
            );
            rows.push(Row {
                device: soc.name().to_string(),
                app: labels[ai].to_string(),
                bt_static_ms: bt,
                dynamic_fifo_ms: fifo,
                dynamic_bestfit_ms: fit,
                static_vs_bestfit: gain,
            });
        }
    }

    let wins = rows.iter().filter(|r| r.static_vs_bestfit > 1.0).count();
    let geo: f64 =
        (rows.iter().map(|r| r.static_vs_bestfit.ln()).sum::<f64>() / rows.len() as f64).exp();
    println!(
        "\nStatic interference-aware pipelines beat the dynamic best-fit runtime in \
         {wins}/{} configurations (geomean {geo:.2}x)",
        rows.len()
    );
    bt_bench::write_result("dynamic_vs_static", &rows);
}
