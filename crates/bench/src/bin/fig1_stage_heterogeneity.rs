//! **Figure 1**: execution time of three octree pipeline stages (sort,
//! build radix tree, build octree) on the Google Pixel 7a's PU classes.
//!
//! Paper's qualitative result: the GPU performs *poorly* on sorting, is
//! the *fastest* at building the radix tree, and is *comparable* to the
//! big/medium CPU cores on octree construction — the heterogeneity that
//! motivates stage-to-PU mapping.

use bt_kernels::apps;
use bt_profiler::{profile, ProfileMode, ProfilerConfig};
use bt_soc::{devices, PuClass};
use serde::Serialize;

#[derive(Serialize)]
struct Fig1Row {
    stage: String,
    big_us: f64,
    medium_us: f64,
    little_us: f64,
    gpu_us: f64,
}

#[derive(Serialize)]
struct Fig1 {
    device: String,
    rows: Vec<Fig1Row>,
    gpu_worst_at_sort: bool,
    gpu_fastest_at_radix_tree: bool,
    octree_build_comparable: bool,
}

fn main() {
    let soc = devices::pixel_7a();
    let app = apps::octree_app(apps::OctreeConfig::default()).model();
    let table = profile(
        &soc,
        &app,
        ProfileMode::Isolated,
        &ProfilerConfig::default(),
    );

    println!(
        "Figure 1 — stage execution time on {} (isolated)\n",
        soc.name()
    );
    println!(
        "{:>14} {:>10} {:>10} {:>10} {:>10}",
        "stage", "big", "med", "little", "gpu"
    );

    let fig_stages = ["sort", "radix-tree", "build-octree"];
    let mut rows = Vec::new();
    for (i, name) in table.stages().iter().enumerate() {
        if !fig_stages.contains(&name.as_str()) {
            continue;
        }
        let cell = |c: PuClass| table.latency(i, c).expect("pixel has all classes").as_f64();
        let (b, m, l, g) = (
            cell(PuClass::BigCpu),
            cell(PuClass::MediumCpu),
            cell(PuClass::LittleCpu),
            cell(PuClass::Gpu),
        );
        println!("{name:>14} {b:>9.0}µ {m:>9.0}µ {l:>9.0}µ {g:>9.0}µ");
        rows.push(Fig1Row {
            stage: name.clone(),
            big_us: b,
            medium_us: m,
            little_us: l,
            gpu_us: g,
        });
    }

    let sort = &rows[0];
    let rtree = &rows[1];
    let build = &rows[2];
    let gpu_worst_at_sort = sort.gpu_us > sort.big_us && sort.gpu_us > sort.medium_us;
    let gpu_fastest_at_radix_tree = rtree.gpu_us < rtree.big_us
        && rtree.gpu_us < rtree.medium_us
        && rtree.gpu_us < rtree.little_us;
    let ratio = build.gpu_us / build.big_us;
    let octree_build_comparable = (0.33..=3.0).contains(&ratio);

    println!("\nPaper's qualitative claims:");
    println!("  GPU worst at sort:             {gpu_worst_at_sort} (paper: true)");
    println!("  GPU fastest at radix tree:     {gpu_fastest_at_radix_tree} (paper: true)");
    println!(
        "  octree build comparable to big: {octree_build_comparable} (gpu/big = {ratio:.2}, paper: ≈1)"
    );

    bt_bench::write_result(
        "fig1_stage_heterogeneity",
        &Fig1 {
            device: soc.name().to_string(),
            rows,
            gpu_worst_at_sort,
            gpu_fastest_at_radix_tree,
            octree_build_comparable,
        },
    );
}
