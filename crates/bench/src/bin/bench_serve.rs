//! **Serving-layer benchmark**: measures `bt-serve` the way a fleet would
//! load it — a burst of cold plan requests across every registered device
//! and app (batched, so identical content is solved once), then a
//! steady-state cache-hit loop with per-request latency percentiles and an
//! instrumented global allocator proving the hit path never allocates.
//!
//! Writes `BENCH_serve.json` at the repository root so CI can upload it
//! and diff the serving trajectory across commits.
//!
//! `--smoke` shrinks the fleet and iteration counts for CI; the JSON shape
//! is unchanged. `--gate` exits non-zero if cold throughput falls below
//! the machine-aware floor (10k plans/s at ≥ 4 threads, scaled down
//! pro-rata on smaller runners) or if the hit loop allocated at all.

use std::time::Instant;

use bt_serve::{CountingAlloc, PlanObjective, PlanRequest, PlanService, ServeConfig, ServedFrom};
use serde::Serialize;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

#[derive(Serialize)]
struct Fleet {
    devices: usize,
    apps: usize,
    scales: usize,
    objectives: usize,
    /// Clients per unique (device, app, scale, objective) content — the
    /// fleet-duplication factor of the cold burst.
    replication: usize,
}

#[derive(Serialize)]
struct ColdBurst {
    requests: usize,
    /// Unique solves the batched burst collapsed those requests into.
    solves: u64,
    elapsed_ms: f64,
    plans_per_sec: f64,
    solves_per_sec: f64,
}

#[derive(Serialize)]
struct HitLoop {
    iterations: usize,
    p50_ns: f64,
    p99_ns: f64,
    /// Heap allocations across the whole loop (gated == 0).
    allocations: u64,
}

#[derive(Serialize)]
struct BenchServe {
    smoke: bool,
    threads: usize,
    /// The machine-aware cold-throughput floor this run is held to.
    floor_plans_per_sec: f64,
    fleet: Fleet,
    cold: ColdBurst,
    hit: HitLoop,
}

fn percentile(sorted_ns: &[u64], p: f64) -> f64 {
    let idx = ((sorted_ns.len() as f64 - 1.0) * p).round() as usize;
    sorted_ns[idx] as f64
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let gate = std::env::args().any(|a| a == "--gate");
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    let mut cfg = ServeConfig::default();
    if smoke {
        cfg.profiler.reps = 3;
        cfg.run.tasks = 10;
        cfg.run.warmup = 2;
        cfg.eval_lanes = 2;
    }
    let mut service = PlanService::builtin(cfg);
    let devices_dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("devices");
    service
        .load_devices(&devices_dir)
        .expect("device fleet loads");
    let service = service;

    let device_names: Vec<String> = service
        .registry()
        .entries()
        .iter()
        .map(|e| e.name.clone())
        .collect();
    let app_names: Vec<String> = service.app_names().into_iter().map(str::to_owned).collect();
    let scales: &[f64] = if smoke { &[1.0] } else { &[1.0, 2.0] };
    let objectives = [PlanObjective::MinLatency, PlanObjective::MinEnergy];
    let replication: usize = if smoke { 8 } else { 32 };

    let mut burst: Vec<PlanRequest<'_>> = Vec::new();
    for d in &device_names {
        for a in &app_names {
            for &s in scales {
                for &o in &objectives {
                    for _ in 0..replication {
                        burst.push(PlanRequest {
                            device: d,
                            app: a,
                            input_scale: s,
                            fault_history: &[],
                            objective: o,
                        });
                    }
                }
            }
        }
    }
    println!(
        "bt-serve fleet burst — {} devices x {} apps x {} scales x {} objectives x {} clients \
         = {} requests{}",
        device_names.len(),
        app_names.len(),
        scales.len(),
        objectives.len(),
        replication,
        burst.len(),
        if smoke { " (smoke)" } else { "" }
    );

    // --- Warm pass (untimed): profile every serving cell. ---------------
    // Profiling cost is a property of the simulator, not of the serving
    // layer; the cold metric prices solve + batched DES evaluation.
    service.serve_batch(&burst).expect("warm pass");
    service.clear_plans();

    // --- Cold burst: every plan content must be re-solved. --------------
    let solves_before = service.stats().solves;
    let t0 = Instant::now();
    let responses = service.serve_batch(&burst).expect("cold burst");
    let elapsed = t0.elapsed().as_secs_f64();
    let solves = service.stats().solves - solves_before;
    assert!(
        responses.len() == burst.len(),
        "every request must be answered"
    );
    let cold = ColdBurst {
        requests: burst.len(),
        solves,
        elapsed_ms: elapsed * 1e3,
        plans_per_sec: burst.len() as f64 / elapsed,
        solves_per_sec: solves as f64 / elapsed,
    };
    println!(
        "cold burst:   {} requests in {:8.2} ms   {:10.0} plans/s   \
         ({} unique solves, {:.0} solves/s)",
        cold.requests, cold.elapsed_ms, cold.plans_per_sec, cold.solves, cold.solves_per_sec
    );

    // --- Steady-state hits: per-request latency + allocation count. -----
    let hit_iters: usize = if smoke { 2_000 } else { 20_000 };
    let probes: Vec<&PlanRequest<'_>> = burst
        .iter()
        .step_by(replication)
        .take(if smoke { 4 } else { 16 })
        .collect();
    // Touch every probe once so lazy one-time initialization (TLS, lock
    // flags) happens outside the measured bracket.
    for p in &probes {
        assert!(service.serve(p).expect("probe hit").from == ServedFrom::Cache);
    }
    let mut samples_ns: Vec<u64> = Vec::with_capacity(hit_iters);
    let allocs_before = CountingAlloc::allocations();
    for i in 0..hit_iters {
        let p = probes[i % probes.len()];
        let t = Instant::now();
        let resp = service.serve(p).expect("hit");
        let ns = t.elapsed().as_nanos() as u64;
        assert!(resp.from == ServedFrom::Cache, "hit loop must not re-solve");
        samples_ns.push(ns);
    }
    let allocations = CountingAlloc::allocations() - allocs_before;
    samples_ns.sort_unstable();
    let hit = HitLoop {
        iterations: hit_iters,
        p50_ns: percentile(&samples_ns, 0.50),
        p99_ns: percentile(&samples_ns, 0.99),
        allocations,
    };
    println!(
        "cache hits:   {} iterations   p50 {:7.0} ns   p99 {:7.0} ns   {} allocation(s)",
        hit.iterations, hit.p50_ns, hit.p99_ns, hit.allocations
    );

    // Machine-aware floor, same shape as the eval harness's batched-DES
    // row: the 10k figure assumes ≥ 4 worker threads; smaller runners are
    // held to a pro-rata share so the gate still means something there.
    let floor = if threads >= 4 {
        10_000.0
    } else {
        10_000.0 * threads as f64 / 4.0
    };

    let plans_per_sec = cold.plans_per_sec;
    bt_bench::write_root_result(
        "BENCH_serve",
        &BenchServe {
            smoke,
            threads,
            floor_plans_per_sec: floor,
            fleet: Fleet {
                devices: device_names.len(),
                apps: app_names.len(),
                scales: scales.len(),
                objectives: objectives.len(),
                replication,
            },
            cold,
            hit,
        },
    );

    if gate {
        if plans_per_sec < floor {
            eprintln!(
                "gate: FAIL — cold throughput {plans_per_sec:.0} plans/s is below the \
                 machine-aware floor {floor:.0} plans/s ({threads} thread(s))"
            );
            std::process::exit(1);
        }
        if allocations != 0 {
            eprintln!(
                "gate: FAIL — cache-hit loop performed {allocations} heap allocation(s); \
                 the hit path must be allocation-free"
            );
            std::process::exit(1);
        }
        println!(
            "gate: pass (cold {plans_per_sec:.0} plans/s >= {floor:.0} floor on {threads} \
             thread(s), hit path allocation-free)"
        );
    }
}
