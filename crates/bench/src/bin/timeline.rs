//! Visualize pipelined execution: an ASCII Gantt chart of the Pixel 7a's
//! octree pipeline (best BetterTogether schedule) next to the serialized
//! homogeneous baseline — the overlap BT-Implementer's multi-buffering
//! creates (§3.4), made visible.
//!
//! Also exports the BetterTogether run as a Chrome `trace_event` JSON
//! (open `chrome://tracing` or <https://ui.perfetto.dev> and load
//! `results/timeline_trace.json`).

use bt_core::BetterTogether;
use bt_kernels::apps;
use bt_pipeline::{simulate_schedule, to_chunk_specs, Schedule};
use bt_soc::{devices, PuClass, RunConfig};
use bt_telemetry::TelemetryConfig;

fn gantt(soc: &bt_soc::SocSpec, app: &bt_kernels::AppModel, schedule: &Schedule, title: &str) {
    let cfg = RunConfig {
        tasks: 6,
        warmup: 0,
        noise_sigma: 0.0,
        record_timeline: true,
        ..RunConfig::default()
    };
    let report = simulate_schedule(soc, app, schedule, &cfg, None).expect("simulates");
    let labels: Vec<String> = to_chunk_specs(app, schedule)
        .expect("chunk specs")
        .iter()
        .map(|c| format!("{} ({} stages)", c.pu, c.stages.len()))
        .collect();
    println!(
        "{title}  —  {:.2} ms/task steady-state",
        report.expect_stats().time_per_task.as_millis()
    );
    println!("{}", bt_bench::render_gantt(&report.timeline, &labels, 100));
}

fn main() {
    let soc = devices::pixel_7a();
    let app = apps::octree_app(apps::OctreeConfig::default()).model();

    let d = BetterTogether::new(soc.clone(), app.clone())
        .run()
        .expect("framework runs");
    println!(
        "Six tasks (digits 0-5) flowing through the octree pipeline on {}\n",
        soc.name()
    );
    let best = d.best_schedule().expect("autotuned");
    gantt(&soc, &app, best, &format!("BetterTogether {best}"));
    gantt(
        &soc,
        &app,
        &Schedule::homogeneous(app.stage_count(), PuClass::BigCpu),
        "CPU-only baseline",
    );

    // Chrome trace of the winning schedule, from the telemetry layer.
    let cfg = RunConfig {
        tasks: 30,
        noise_sigma: 0.0,
        telemetry: TelemetryConfig::full(),
        ..RunConfig::default()
    };
    let report = simulate_schedule(&soc, &app, best, &cfg, None).expect("simulates");
    let tele = report.telemetry.expect("telemetry requested");
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results");
    std::fs::create_dir_all(&dir).expect("create results directory");
    std::fs::write(dir.join("timeline_trace.json"), tele.chrome_trace_json()).expect("write trace");
    println!("\n[Chrome trace written to results/timeline_trace.json — load in chrome://tracing]");
}
