//! **Figure 6**: Pearson correlation between predicted and measured
//! latencies of the top-20 schedules, for every (application, platform)
//! pair, under (a) the BetterTogether approach (interference-aware table +
//! utilization filter) and (b) the prior-work approach (isolated table,
//! latency-only optimization).
//!
//! Paper's result: (a) averages 0.92 (max 0.99); (b) averages ≈0.85 with
//! the largest degradation for the irregular workloads on the Jetson
//! platforms (0.65–0.73).

use bt_core::metrics::pearson;
use bt_profiler::ProfileMode;
use serde::Serialize;

#[derive(Serialize)]
struct Heatmap {
    label: String,
    /// `cell[app][device]` correlation.
    cells: Vec<Vec<f64>>,
    app_labels: Vec<String>,
    device_labels: Vec<String>,
    mean: f64,
    max: f64,
}

fn heatmap(label: &str, mode: ProfileMode, filter: bool) -> Heatmap {
    let apps = bt_bench::paper_apps();
    let labels = bt_bench::paper_app_labels();
    let devices = bt_bench::paper_devices();

    let mut cells = Vec::new();
    println!("--- {label} ---");
    print!("{:>9}", "");
    for soc in &devices {
        print!("{:>12}", soc.name().split(' ').next_back().unwrap_or("?"));
    }
    println!("{:>9}", "avg");
    let mut all = Vec::new();
    for (ai, app) in apps.iter().enumerate() {
        let mut row = Vec::new();
        print!("{:>9}", labels[ai]);
        for soc in &devices {
            let pairs = bt_bench::predicted_vs_measured(soc, app, mode, filter, 20);
            let xs: Vec<f64> = pairs.iter().map(|p| p.predicted_us).collect();
            let ys: Vec<f64> = pairs.iter().map(|p| p.measured_us).collect();
            let r = pearson(&xs, &ys).unwrap_or(0.0);
            print!("{r:>12.4}");
            row.push(r);
            all.push(r);
        }
        let avg = row.iter().sum::<f64>() / row.len() as f64;
        println!("{avg:>9.4}");
        cells.push(row);
    }
    let mean = all.iter().sum::<f64>() / all.len() as f64;
    let max = all.iter().cloned().fold(f64::MIN, f64::max);
    println!("mean = {mean:.4}, max = {max:.4}\n");
    Heatmap {
        label: label.into(),
        cells,
        app_labels: labels.iter().map(|s| s.to_string()).collect(),
        device_labels: devices.iter().map(|d| d.name().to_string()).collect(),
        mean,
        max,
    }
}

fn main() {
    println!("Figure 6 — predicted/measured correlation heatmaps\n");
    let a = heatmap(
        "(a) BetterTogether (interference-aware + utilization filter)",
        ProfileMode::InterferenceHeavy,
        true,
    );
    let b = heatmap(
        "(b) isolated profiles + latency-only (prior work)",
        ProfileMode::Isolated,
        false,
    );
    println!("Paper: (a) mean 0.92 / max 0.99; (b) mean ≈0.85 with Jetson sparse/octree lowest.");
    println!(
        "Ours:  (a) mean {:.2} / max {:.2}; (b) mean {:.2}.",
        a.mean, a.max, b.mean
    );
    let improvement = a.mean - b.mean;
    println!("Interference-aware profiling improves mean correlation by {improvement:+.3}.");
    bt_bench::write_result("fig6_correlation", &vec![a, b]);
}
