//! **Extension experiment**: sensitivity of schedules to input scale.
//!
//! The paper specializes a schedule per (workload, platform); this
//! experiment asks how stable that specialization is when the *input size*
//! changes — octree point counts from 32 Ki to 1 Mi on the Pixel 7a, and
//! the sparse batch from 32 to 256. Stage costs scale non-uniformly
//! (launch/sync overheads stay fixed, memory-bound stages scale with
//! bytes), so both the best schedule and the achievable speedup drift.

use bt_core::BetterTogether;
use bt_kernels::apps;
use bt_soc::devices;
use serde::Serialize;

#[derive(Serialize)]
struct ScaleRow {
    workload: String,
    scale: String,
    best_schedule: String,
    bt_ms: f64,
    speedup_vs_best: f64,
}

fn main() {
    let soc = devices::pixel_7a();
    let mut rows = Vec::new();

    println!("Input-scale sensitivity on {}\n", soc.name());
    println!(
        "{:>10} {:>12} {:>12} {:>9} {:>9}",
        "workload", "scale", "schedule", "BT(ms)", "speedup"
    );

    for points in [1usize << 15, 1 << 17, 1 << 18, 1 << 19, 1 << 20] {
        let app = apps::octree_app(apps::OctreeConfig {
            points,
            ..apps::OctreeConfig::default()
        })
        .model();
        let d = BetterTogether::new(soc.clone(), app).run().expect("runs");
        let label = format!("{}Ki pts", points >> 10);
        println!(
            "{:>10} {:>12} {:>12} {:>9.2} {:>8.2}x",
            "octree",
            label,
            d.best_schedule().expect("autotuned").to_string(),
            d.best_latency().expect("measured").as_millis(),
            d.speedup_over_best_baseline().expect("measured")
        );
        rows.push(ScaleRow {
            workload: "octree".into(),
            scale: label,
            best_schedule: d.best_schedule().expect("autotuned").to_string(),
            bt_ms: d.best_latency().expect("measured").as_millis(),
            speedup_vs_best: d.speedup_over_best_baseline().expect("measured"),
        });
    }

    for batch in [32usize, 64, 128, 256] {
        let app = apps::alexnet_sparse_app(apps::AlexNetConfig {
            batch,
            ..apps::AlexNetConfig::default()
        })
        .model();
        let d = BetterTogether::new(soc.clone(), app).run().expect("runs");
        let label = format!("batch {batch}");
        println!(
            "{:>10} {:>12} {:>12} {:>9.2} {:>8.2}x",
            "sparse",
            label,
            d.best_schedule().expect("autotuned").to_string(),
            d.best_latency().expect("measured").as_millis(),
            d.speedup_over_best_baseline().expect("measured")
        );
        rows.push(ScaleRow {
            workload: "sparse".into(),
            scale: label,
            best_schedule: d.best_schedule().expect("autotuned").to_string(),
            bt_ms: d.best_latency().expect("measured").as_millis(),
            speedup_vs_best: d.speedup_over_best_baseline().expect("measured"),
        });
    }

    let distinct: std::collections::HashSet<&String> =
        rows.iter().map(|r| &r.best_schedule).collect();
    println!(
        "\n{} distinct optimal schedules across {} scale points — schedules specialize to\n\
         input scale as well as to device and workload (re-profiling per deployment\n\
         configuration is not optional).",
        distinct.len(),
        rows.len()
    );
    bt_bench::write_result("input_scaling", &rows);
}
