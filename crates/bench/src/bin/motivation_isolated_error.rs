//! **§1 motivation**: composing isolated per-PU performance models
//! mispredicts pipelined execution on edge SoCs.
//!
//! The paper's example: on sparse AlexNet / Google Pixel, the isolated
//! model predicted an optimal pipeline at 4.95 ms but the measured latency
//! was 7.77 ms — 57% slower than predicted (prior work reports up to 60%
//! discrepancies). This binary reproduces the experiment: take the
//! isolated-table-optimal schedule, predict with the isolated table,
//! measure in the pipeline, and compare against the interference-aware
//! model's error on its own optimal schedule.

use bt_core::{optimize, predict, OptimizerConfig};
use bt_kernels::apps;
use bt_pipeline::simulate_schedule;
use bt_profiler::{profile, ProfileMode, ProfilerConfig};
use bt_soc::{devices, RunConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Motivation {
    device: String,
    app: String,
    isolated_predicted_ms: f64,
    isolated_measured_ms: f64,
    isolated_error_pct: f64,
    bt_predicted_ms: f64,
    bt_measured_ms: f64,
    bt_error_pct: f64,
}

fn main() {
    let soc = devices::pixel_7a();
    let app = apps::alexnet_sparse_app(apps::AlexNetConfig::default()).model();
    let des = RunConfig::default();
    let profiler = ProfilerConfig::default();

    // Prior-work approach: isolated table, latency-only optimization.
    let iso_table = profile(&soc, &app, ProfileMode::Isolated, &profiler);
    let iso_best = &optimize(
        &soc,
        &iso_table,
        &OptimizerConfig {
            candidates: 1,
            ..OptimizerConfig::with_threshold(0.0)
        },
    )
    .expect("candidates")[0];
    let iso_predicted =
        predict::predict_latency(&iso_table, &iso_best.schedule).expect("table covers schedule");
    let iso_measured = simulate_schedule(&soc, &app, &iso_best.schedule, &des, None)
        .expect("simulates")
        .expect_stats()
        .time_per_task;
    let iso_err = 100.0 * (iso_measured.as_f64() - iso_predicted.as_f64()) / iso_predicted.as_f64();

    // BetterTogether approach on its own optimal schedule.
    let bt_table = profile(&soc, &app, ProfileMode::InterferenceHeavy, &profiler);
    let bt_best = &optimize(&soc, &bt_table, &OptimizerConfig::default()).expect("candidates")[0];
    let bt_predicted =
        predict::predict_latency(&bt_table, &bt_best.schedule).expect("table covers schedule");
    let bt_measured = simulate_schedule(&soc, &app, &bt_best.schedule, &des, None)
        .expect("simulates")
        .expect_stats()
        .time_per_task;
    let bt_err = 100.0 * (bt_measured.as_f64() - bt_predicted.as_f64()) / bt_predicted.as_f64();

    println!(
        "§1 motivation — isolated-model misprediction, sparse AlexNet on {}\n",
        soc.name()
    );
    println!(
        "isolated model:   predicted {:>7.2} ms, measured {:>7.2} ms → {:+.0}% error \
         (paper: 4.95 → 7.77 ms, +57%)",
        iso_predicted.as_millis(),
        iso_measured.as_millis(),
        iso_err
    );
    println!(
        "BetterTogether:   predicted {:>7.2} ms, measured {:>7.2} ms → {:+.0}% error",
        bt_predicted.as_millis(),
        bt_measured.as_millis(),
        bt_err
    );
    println!(
        "\nThe isolated composition underpredicts by {:.0}% while the interference-aware \
         model stays within {:.0}%.",
        iso_err.abs(),
        bt_err.abs()
    );

    bt_bench::write_result(
        "motivation_isolated_error",
        &Motivation {
            device: soc.name().to_string(),
            app: "CIFAR-S".into(),
            isolated_predicted_ms: iso_predicted.as_millis(),
            isolated_measured_ms: iso_measured.as_millis(),
            isolated_error_pct: iso_err,
            bt_predicted_ms: bt_predicted.as_millis(),
            bt_measured_ms: bt_measured.as_millis(),
            bt_error_pct: bt_err,
        },
    );
}
