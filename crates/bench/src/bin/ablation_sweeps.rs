//! **Ablation experiments** for the design choices DESIGN.md calls out:
//!
//! 1. *Utilization threshold* (θ in the level-1 filter): sweep θ and watch
//!    prediction correlation and the measured-best latency.
//! 2. *Candidate count* 𝒦: how many schedules autotuning must execute
//!    before the measured best stops improving (the paper uses 20).
//! 3. *Interference-model components*: profile with a deliberately
//!    simplified device model (no DVFS response / no DRAM contention /
//!    neither) while measuring on the full model — quantifying how much
//!    each modeled mechanism contributes to prediction quality.
//! 4. *Multi-buffering depth*: pipeline throughput vs. the number of
//!    circulating TaskObjects (§3.4's design).

use bt_core::metrics::pearson;
use bt_core::{autotune, optimize, OptimizerConfig, SimBackend};
use bt_kernels::apps;
use bt_pipeline::{simulate_schedule, to_chunk_specs};
use bt_profiler::{profile, ProfileMode, ProfilerConfig};
use bt_soc::des::simulate;
use bt_soc::{devices, InterferenceModel, PuClass, RunConfig};
use serde::Serialize;

#[derive(Serialize, Default)]
struct Ablations {
    threshold_sweep: Vec<(f64, f64, f64)>, // θ, correlation, best_ms
    k_sweep: Vec<(usize, f64, f64)>,       // K, best_ms, cost_ms
    interference_ablation: Vec<(String, f64, f64)>, // variant, correlation, best_ms
    buffer_sweep: Vec<(u32, f64)>,         // buffers, ms/task
}

fn main() {
    let soc = devices::pixel_7a();
    let app = apps::alexnet_sparse_app(apps::AlexNetConfig::default()).model();
    let des = RunConfig::default();
    let backend = SimBackend::new(soc.clone(), app.clone()).with_run(des.clone());
    let mut out = Ablations::default();

    // 1. Utilization-threshold sweep.
    println!("1. utilization threshold sweep (sparse AlexNet / Pixel)\n");
    println!(
        "{:>6} {:>8} {:>12} {:>12}",
        "θ", "cands", "correlation", "best (ms)"
    );
    let table = profile(
        &soc,
        &app,
        ProfileMode::InterferenceHeavy,
        &ProfilerConfig::default(),
    );
    for theta in [0.0, 0.2, 0.35, 0.5, 0.65] {
        let cfg = OptimizerConfig::with_threshold(theta);
        let Ok(cands) = optimize(&soc, &table, &cfg) else {
            println!("{theta:>6.2} {:>8}", "none");
            continue;
        };
        let outcome = autotune(&backend, &cands).expect("autotunes");
        let xs: Vec<f64> = cands.iter().map(|c| c.predicted.as_f64()).collect();
        let ys: Vec<f64> = (0..cands.len())
            .map(|i| {
                outcome
                    .measured_latency(i)
                    .expect("candidate measured")
                    .as_f64()
            })
            .collect();
        let r = pearson(&xs, &ys).unwrap_or(f64::NAN);
        let best = outcome.best().expect("best measured").latency.as_millis();
        println!("{theta:>6.2} {:>8} {r:>12.3} {best:>12.2}", cands.len());
        out.threshold_sweep.push((theta, r, best));
    }

    // 2. K sweep.
    println!("\n2. candidate-count sweep (𝒦)\n");
    println!("{:>6} {:>12} {:>14}", "K", "best (ms)", "eval cost (ms)");
    for k in [1usize, 3, 5, 10, 20, 40] {
        let cfg = OptimizerConfig {
            candidates: k,
            ..OptimizerConfig::default()
        };
        let cands = optimize(&soc, &table, &cfg).expect("candidates");
        let outcome = autotune(&backend, &cands).expect("autotunes");
        let best = outcome.best().expect("best measured").latency.as_millis();
        let cost = outcome.evaluation_cost.as_millis();
        println!("{k:>6} {best:>12.2} {cost:>14.1}");
        out.k_sweep.push((k, best, cost));
    }

    // 3. Interference-model component ablation: the profiler believes a
    //    simplified device; measurements run on the real one.
    println!("\n3. interference-model component ablation\n");
    println!(
        "{:>28} {:>12} {:>12}",
        "profiler's model", "correlation", "best (ms)"
    );
    let full = soc.interference().clone();
    let dvfs_only = InterferenceModel::calibrated(
        [
            (PuClass::BigCpu, full.dvfs_multiplier(PuClass::BigCpu)),
            (PuClass::MediumCpu, full.dvfs_multiplier(PuClass::MediumCpu)),
            (PuClass::LittleCpu, full.dvfs_multiplier(PuClass::LittleCpu)),
            (PuClass::Gpu, full.dvfs_multiplier(PuClass::Gpu)),
        ],
        0.0,
    );
    let contention_only = InterferenceModel::calibrated::<0>([], full.contention_strength());
    let variants: [(&str, InterferenceModel); 4] = [
        ("full (dvfs + contention)", full.clone()),
        ("dvfs only", dvfs_only),
        ("contention only", contention_only),
        ("none (isolated physics)", InterferenceModel::none()),
    ];
    for (label, model) in variants {
        let believed = soc.clone().with_interference(model);
        let t = profile(
            &believed,
            &app,
            ProfileMode::InterferenceHeavy,
            &ProfilerConfig::default(),
        );
        let cands = optimize(&believed, &t, &OptimizerConfig::default()).expect("candidates");
        // Measure on the REAL device.
        let measured: Vec<f64> = cands
            .iter()
            .enumerate()
            .map(|(i, c)| {
                simulate_schedule(
                    &soc,
                    &app,
                    &c.schedule,
                    &RunConfig {
                        seed: i as u64,
                        ..des.clone()
                    },
                    None,
                )
                .expect("simulates")
                .expect_stats()
                .time_per_task
                .as_f64()
            })
            .collect();
        let xs: Vec<f64> = cands.iter().map(|c| c.predicted.as_f64()).collect();
        let r = pearson(&xs, &measured).unwrap_or(f64::NAN);
        let best = measured.iter().cloned().fold(f64::MAX, f64::min) / 1e3;
        println!("{label:>28} {r:>12.3} {best:>12.2}");
        out.interference_ablation.push((label.to_string(), r, best));
    }

    // 4. Multi-buffering depth.
    println!("\n4. multi-buffering depth (fixed best schedule)\n");
    println!("{:>9} {:>12}", "buffers", "ms/task");
    let cands = optimize(&soc, &table, &OptimizerConfig::default()).expect("candidates");
    let chunks = to_chunk_specs(&app, &cands[0].schedule).expect("chunk specs");
    for buffers in [1u32, 2, 3, 4, 6, 8] {
        let cfg = RunConfig {
            buffers,
            noise_sigma: 0.0,
            ..RunConfig::default()
        };
        let r = simulate(&soc, &chunks, &cfg, None).expect("simulates");
        let tpt = r.expect_stats().time_per_task;
        println!("{buffers:>9} {:>12.2}", tpt.as_millis());
        out.buffer_sweep.push((buffers, tpt.as_millis()));
    }
    let single = out.buffer_sweep[0].1;
    let deep = out.buffer_sweep.last().expect("non-empty").1;
    println!(
        "\nmulti-buffering speedup at depth 8 vs 1: {:.2}x (recycled TaskObjects are what\n\
         let chunks overlap — §3.4)",
        single / deep
    );

    bt_bench::write_result("ablation_sweeps", &out);
}
