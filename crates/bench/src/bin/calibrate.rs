//! Calibration dump: per-stage × per-PU latencies for every app on every
//! device, in isolated and interference-heavy modes, plus homogeneous
//! baselines and the best exhaustive pipeline.

use bt_kernels::apps;
use bt_pipeline::{simulate_baseline, simulate_schedule, Schedule};
use bt_profiler::{profile, ProfileMode, ProfilerConfig};
use bt_soc::{devices, RunConfig};
use bt_solver::enumerate::{enumerate_schedules, ScheduleEval};
use bt_solver::ScheduleProblem;

fn main() {
    let apps: Vec<(&str, bt_kernels::AppModel)> = vec![
        (
            "dense",
            apps::alexnet_dense_app(apps::AlexNetConfig::default()).model(),
        ),
        (
            "sparse",
            apps::alexnet_sparse_app(apps::AlexNetConfig::default()).model(),
        ),
        (
            "octree",
            apps::octree_app(apps::OctreeConfig::default()).model(),
        ),
    ];
    let cfg = ProfilerConfig {
        reps: 1,
        noise_sigma: 0.0,
        seed: 0,
        ..ProfilerConfig::default()
    };
    for soc in devices::all() {
        for (label, app) in &apps {
            let iso = profile(&soc, app, ProfileMode::Isolated, &cfg);
            let heavy = profile(&soc, app, ProfileMode::InterferenceHeavy, &cfg);
            println!("=== {} / {label} ===", soc.name());
            println!("{}", iso.render());
            println!("{}", heavy.render());

            // Homogeneous baselines (isolated single-chunk DES).
            let n = app.stage_count();
            let des = RunConfig {
                noise_sigma: 0.0,
                ..RunConfig::default()
            };
            let _ = n;
            for class in soc.classes() {
                let r = simulate_baseline(&soc, app, class, &des).unwrap();
                let tpt = r.expect_stats().time_per_task;
                println!("baseline {class}: {:.2} ms", tpt.as_millis());
            }

            // Best pipeline by exhaustive search over the heavy table.
            let classes: Vec<_> = soc.classes();
            let matrix = heavy.to_matrix();
            let allowed: Vec<bool> = classes
                .iter()
                .map(|&c| soc.pu(c).map(|p| p.schedulable()).unwrap_or(false))
                .collect();
            let problem = ScheduleProblem::new(matrix)
                .unwrap()
                .with_allowed(allowed)
                .unwrap();
            let mut evals: Vec<ScheduleEval> = enumerate_schedules(&problem);
            evals.sort_by(|a, b| a.t_max.partial_cmp(&b.t_max).unwrap());
            let mut best_measured = f64::MAX;
            let mut best_sched = String::new();
            for e in evals.iter().take(20) {
                let s = Schedule::from_class_indices(&e.assignment, &classes).unwrap();
                let r = simulate_schedule(&soc, app, &s, &des, None).unwrap();
                let tpt = r.expect_stats().time_per_task;
                if tpt.as_f64() < best_measured {
                    best_measured = tpt.as_f64();
                    best_sched = s.to_string();
                }
            }
            println!(
                "best-of-20 pipeline: {best_sched} = {:.2} ms (predicted best {:.2} ms)",
                best_measured / 1e3,
                evals[0].t_max / 1e3
            );
            println!();
        }
    }
}
