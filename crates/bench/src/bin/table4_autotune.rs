//! **Table 4**: measured and predicted latency (ms) for the top-10
//! schedules of AlexNet-sparse on the Google Pixel 7a, plus the gain from
//! level-3 autotuning.
//!
//! Paper's result: the predicted-best schedule (index 1) measures 5.34 ms,
//! but index 4 measures 3.96 ms — autotuning recovers a further 1.35×
//! beyond the model's choice. The whole autotuning phase costs ≈200 s of
//! device time for 𝒦 = 20 candidates at 10 s each.

use bt_core::BetterTogether;
use bt_kernels::apps;
use bt_soc::devices;
use serde::Serialize;

#[derive(Serialize)]
struct Table4 {
    device: String,
    app: String,
    schedules: Vec<String>,
    predicted_ms: Vec<f64>,
    measured_ms: Vec<f64>,
    speedup_vs_index1: Vec<f64>,
    best_index: usize,
    autotuning_gain: f64,
    evaluation_cost_s: f64,
    tiers: Vec<(f64, usize)>,
}

fn main() {
    let soc = devices::pixel_7a();
    let app = apps::alexnet_sparse_app(apps::AlexNetConfig::default()).model();
    let d = BetterTogether::new(soc.clone(), app.clone())
        .run()
        .expect("framework runs");

    let k = d.plan.candidates.len().min(10);
    println!(
        "Table 4 — top {k} schedules, AlexNet-sparse on {} (index 1 = predicted best)\n",
        soc.name()
    );
    print!("{:>10}", "");
    for i in 1..=k {
        print!("{i:>8}");
    }
    println!();

    let predicted_ms: Vec<f64> = d.plan.candidates[..k]
        .iter()
        .map(|c| c.predicted.as_millis())
        .collect();
    let measured_ms: Vec<f64> = (0..k)
        .map(|i| {
            d.outcome
                .measured_latency(i)
                .expect("candidate measured")
                .as_millis()
        })
        .collect();
    let speedups: Vec<f64> = measured_ms.iter().map(|&m| measured_ms[0] / m).collect();

    print!("{:>10}", "Measured");
    for m in &measured_ms {
        print!("{m:>8.2}");
    }
    print!("\n{:>10}", "Predicted");
    for p in &predicted_ms {
        print!("{p:>8.2}");
    }
    print!("\n{:>10}", "Speedup");
    for s in &speedups {
        print!("{s:>8.2}");
    }
    println!();

    // Performance-tier analysis (§3.3): cluster predictions within ±6%.
    let mut tiers: Vec<(f64, usize)> = Vec::new();
    for &p in &predicted_ms {
        match tiers.last_mut() {
            Some((anchor, count)) if (p - *anchor).abs() / *anchor <= 0.06 => *count += 1,
            _ => tiers.push((p, 1)),
        }
    }

    let gain = d.autotuning_gain().expect("measured");
    let cost_s = d.outcome.evaluation_cost.as_secs();
    println!(
        "\nAutotuning: measured best is index {} → {gain:.2}x beyond the predicted-best \
         (paper: 1.35x at index 4)",
        d.outcome.best_index + 1
    );
    println!(
        "Autotuning evaluation cost: {cost_s:.0} s of device time for {} candidates \
         (paper: ≈200 s for 20 × 10 s)",
        d.plan.candidates.len()
    );
    println!(
        "Performance tiers among predictions (anchor ms × members): {:?}",
        tiers
            .iter()
            .map(|(a, c)| (format!("{a:.2}"), *c))
            .collect::<Vec<_>>()
    );

    bt_bench::write_result(
        "table4_autotune",
        &Table4 {
            device: soc.name().to_string(),
            app: "CIFAR-S".into(),
            schedules: d.plan.candidates[..k]
                .iter()
                .map(|c| c.schedule.to_string())
                .collect(),
            predicted_ms,
            measured_ms,
            speedup_vs_index1: speedups,
            best_index: d.outcome.best_index,
            autotuning_gain: gain,
            evaluation_cost_s: cost_s,
            tiers,
        },
    );
}
