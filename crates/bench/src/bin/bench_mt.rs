//! **Multi-tenant co-run harness**: co-schedules the paper's three apps
//! on one simulated Pixel 7a and compares the aggregate makespan against
//! naive time-slicing, plus a wall-clock measurement of the
//! work-stealing pool's steal-path overhead per task.
//!
//! The virtual-time rows are deterministic (same seeds every run); the
//! steal-path row is wall-clock and machine-dependent. `--smoke` shrinks
//! stream lengths for CI. The same rows ride inside `BENCH_eval.json`
//! via `bench_eval`; this binary writes the standalone
//! `results/bench_mt.json` artefact.

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (tasks, steal_tasks) = if smoke { (50, 500) } else { (200, 5000) };
    println!(
        "multi-tenant co-run — Pixel 7a × (CIFAR-D + CIFAR-S + Tree){}\n",
        if smoke { " (smoke)" } else { "" }
    );

    let b = bt_bench::mt::run_mt_bench(tasks, steal_tasks);
    println!(
        "co-run makespan      {:>12.0} µs   ({} tenants, {} tasks each)",
        b.co_run_makespan_us, b.tenants, tasks
    );
    println!(
        "time-sliced makespan {:>12.0} µs   speedup {:.2}x",
        b.time_sliced_makespan_us, b.co_run_speedup
    );
    println!(
        "aggregate throughput {:>12.1} tasks/s",
        b.aggregate_throughput_hz
    );
    println!(
        "steal-path overhead  {:>12.2} µs/task   (wall-clock, no-op kernels)",
        b.steal_overhead_us_per_task
    );

    assert!(
        b.co_run_speedup > 1.0,
        "interference-aware co-run must beat time-slicing"
    );
    bt_bench::write_result("bench_mt", &b);
}
