//! **Perf-trajectory harness for the evaluation engine**: times the three
//! hot paths this repo's autotuning loop lives in — the end-to-end Fig. 2
//! loop (profile → optimize → autotune → baselines), the discrete-event
//! simulator, and the SAT candidate enumerator — each in a "before"
//! configuration (serial measurement, no DES service cache, per-round
//! solver re-encoding) and in the current default configuration.
//!
//! Writes `BENCH_eval.json` at the **repository root** so CI can upload it
//! and reviewers can diff the trajectory across commits. Also checks that
//! the parallel evaluation path produces a `Deployment` byte-identical to
//! the serial one (same seeds, index-ordered merge).
//!
//! `--smoke` shrinks iteration counts for CI; the JSON shape is unchanged.
//!
//! `--gate` turns the run into a regression gate: after measuring, the
//! fresh Fig. 2 loop speedup is compared against the committed
//! `BENCH_eval.json` baseline (informational) and the process exits
//! non-zero if the fresh speedup falls below 1.8× — the CI floor under
//! the 2× local acceptance bar, leaving headroom for noisy shared
//! runners.

use std::time::Instant;

use bt_core::{
    build_problem, optimize, optimize_dag, optimize_replicated, BetterTogether, McuBackend,
    OptimizerConfig, SimBackend,
};
use bt_kernels::{apps, AppModel};
use bt_pipeline::{
    simulate_baseline, simulate_dag_schedule, simulate_schedule, simulate_schedule_batch, Schedule,
};
use bt_profiler::{profile, ProfileMode, ProfilerConfig};
use bt_soc::{devices, DesSeedSpec, PuClass, RunConfig, SocSpec};
use bt_solver::enumerate::{enumerate_schedules, evaluate};
use bt_solver::{Assignment, DagProblem, Engine, ScheduleProblem};
use serde::Serialize;

#[derive(Serialize)]
struct Fig2Loop {
    /// Serial measurement, DES cache off — the pre-optimization path.
    pre_pr_ms: f64,
    /// Current defaults (parallel hint honoured, DES cache on).
    current_ms: f64,
    speedup: f64,
    /// Parallel and serial runs produced identical `Deployment`s.
    deployment_byte_identical: bool,
}

#[derive(Serialize)]
struct DesThroughput {
    tasks_per_run: u32,
    runs: u32,
    /// Task-stage service events per wall-clock second, cache off/on.
    events_per_sec_cache_off: f64,
    events_per_sec_cache_on: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct BatchThroughput {
    /// Lanes priced in one structure-of-arrays pass (same seeds as the
    /// scalar cache-on arm, same schedule, same event convention).
    lanes: u32,
    /// Worker threads the sharded batch pass had available.
    threads: usize,
    /// Aggregate task-stage service events per wall-clock second across
    /// all lanes of the batched pass.
    events_per_sec_batch: f64,
    /// The same-run scalar cache-on rate (the `des` row's `cache_on` arm,
    /// re-used for an apples-to-apples ratio on this machine).
    events_per_sec_scalar_same_run: f64,
    /// Batched / same-run scalar.
    batch_vs_scalar: f64,
    /// The committed `des.events_per_sec_cache_on` baseline, if present
    /// (read before this run overwrites the file).
    committed_cache_on: Option<f64>,
    /// Batched / committed scalar cache-on baseline.
    batch_vs_committed: Option<f64>,
    /// Worker threads the *committed* baseline was captured with, if its
    /// batch row recorded them. Cross-machine throughput ratios are only
    /// meaningful when both captures had cores to shard across, so the
    /// gate suppresses the vs-committed target when this is `None` or
    /// below 4 (e.g. the baseline was captured on a single-core box).
    committed_threads: Option<u64>,
}

#[derive(Serialize)]
struct SolverEngines {
    /// Stages of the random fork/join instances (classes fixed at 3).
    stages: usize,
    /// Instances solved per arm.
    instances: u32,
    /// Total wall-clock of `min_latency` across instances, CDCL engine.
    cdcl_ms: f64,
    /// Same instances, chronological DPLL engine.
    dpll_ms: f64,
    /// DPLL / CDCL (>= 1 gated: clause learning must never lose).
    speedup: f64,
    /// Slowest single CDCL solve (gated < 50 ms in the full run).
    max_cdcl_solve_ms: f64,
}

#[derive(Serialize)]
struct SolverCandidates {
    candidates: usize,
    /// Old algorithm: fresh CNF encoding per blocking-clause round.
    reencode_ms: f64,
    /// Current algorithm: persistent incremental solver across rounds.
    incremental_ms: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct DagBranching {
    /// Best DAG-aware schedule of the branching perception app, measured
    /// per-task critical-path latency (µs, one task in flight).
    dag_aware_us: f64,
    /// Best schedule of the same stages forced into their linearized
    /// chain order, same metric.
    best_linearized_us: f64,
    /// Linearized / DAG-aware (> 1 gated: branch overlap must pay).
    speedup: f64,
    /// Steady-state µs/task with the measured bottleneck stage replicated
    /// across two exclusive classes.
    replicated_us: f64,
    /// Steady-state µs/task of the best non-replicated DAG schedule.
    best_nonreplicated_us: f64,
    /// Non-replicated / replicated (> 1 gated).
    replication_speedup: f64,
}

#[derive(Serialize)]
struct McuEdge {
    device: &'static str,
    app: &'static str,
    /// Winning schedule's class letters (e.g. "GBLL": DMA drains the ADC,
    /// the M7 runs the FIR, the M4 takes features + classification).
    best_schedule: String,
    /// Measured time/task of the winning schedule (virtual µs).
    best_us: f64,
    /// The naive firmware baseline: every stage on the Cortex-M7.
    m7_baseline_us: f64,
    /// Baseline / best (> 1 gated: pipelining across the MCU's PUs must
    /// beat the single-core loop). Deterministic — virtual time.
    speedup_over_m7: f64,
    /// Distinct PU classes the winning schedule spans.
    classes_used: usize,
}

#[derive(Serialize)]
struct BenchEval {
    device: &'static str,
    app: &'static str,
    smoke: bool,
    fig2_loop: Fig2Loop,
    des: DesThroughput,
    /// Batched structure-of-arrays DES vs the scalar engine.
    batch: BatchThroughput,
    solver: SolverCandidates,
    /// CDCL vs the chronological DPLL oracle on large DAG encodings.
    solver_engines: SolverEngines,
    /// Multi-tenant rows: co-run vs time-slicing (deterministic, gated)
    /// and steal-path overhead (wall-clock, informational).
    mt: bt_bench::mt::MtBench,
    /// Fork/join rows on the branching perception app: DAG-aware vs
    /// linearized, and bottleneck replication (deterministic, gated).
    dag: DagBranching,
    /// MCU-class edge row: the Fig. 2 loop on the `mcu_m7` device and the
    /// sensor app, via the CPU-only-baseline [`McuBackend`]
    /// (deterministic, gated).
    mcu: McuEdge,
    /// The acceptance bar: current Fig. 2 loop ≥ 2× the pre-PR path.
    meets_2x_fig2: bool,
}

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

/// The seed's Fig. 2 loop, reconstructed from public primitives: serial
/// profiling; exact optimization that materializes the whole schedule
/// space, re-validates every leaf through [`evaluate`], and full-sorts it
/// before truncating to 𝒦; serial autotuning and baselines on the
/// uncached DES path. This is the "before" arm of the trajectory — the
/// framework's own entry points have since moved to streaming top-𝒦
/// selection, memoized service times, and hint-gated parallel fan-out.
fn pre_pr_fig2_loop(soc: &SocSpec, app: &AppModel) -> usize {
    let table = profile(
        soc,
        app,
        ProfileMode::InterferenceHeavy,
        &ProfilerConfig {
            parallel: false,
            ..ProfilerConfig::default()
        },
    );
    let problem = build_problem(soc, &table).expect("valid problem");
    let mut all: Vec<_> = enumerate_schedules(&problem)
        .iter()
        .map(|e| evaluate(&problem, &e.assignment))
        .collect();
    all.retain(|e| e.t_min >= 0.45 * e.t_max);
    all.sort_by(|a, b| {
        a.t_max
            .partial_cmp(&b.t_max)
            .expect("finite")
            .then_with(|| a.gapness().partial_cmp(&b.gapness()).expect("finite"))
            .then_with(|| a.assignment.cmp(&b.assignment))
    });
    all.truncate(20);
    let des = RunConfig {
        service_cache: false,
        ..RunConfig::default()
    };
    let mut best = (f64::INFINITY, 0usize);
    for (i, e) in all.iter().enumerate() {
        let schedule =
            Schedule::from_class_indices(&e.assignment, table.classes()).expect("contiguous");
        let cfg = RunConfig {
            seed: des.seed.wrapping_add(i as u64),
            ..des.clone()
        };
        let tpt = simulate_schedule(soc, app, &schedule, &cfg, None)
            .expect("simulates")
            .expect_stats()
            .time_per_task;
        if tpt.as_f64() < best.0 {
            best = (tpt.as_f64(), i);
        }
    }
    for class in [PuClass::BigCpu, PuClass::Gpu] {
        simulate_baseline(soc, app, class, &des).expect("baseline");
    }
    best.1
}

/// The pre-PR candidate loop: binary-search the smallest feasible latency
/// tier with a fresh solver encoding per `solve_window` probe, blocking
/// found assignments between rounds. Kept here (not in bt-solver) purely
/// as the baseline arm of the trajectory.
fn reencode_candidates(problem: &ScheduleProblem, k: usize) -> Vec<(f64, Assignment)> {
    let sums = problem.chunk_sums();
    let mut blocked: Vec<Assignment> = Vec::new();
    let mut found = Vec::with_capacity(k);
    while found.len() < k {
        let (mut lo, mut hi, mut best) = (0usize, sums.len(), None);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match problem.solve_window(0.0, sums[mid], &blocked) {
                Some(a) => {
                    best = Some((sums[mid], a));
                    hi = mid;
                }
                None => lo = mid + 1,
            }
        }
        match best {
            Some((t, a)) => {
                blocked.push(a.clone());
                found.push((t, a));
            }
            None => break,
        }
    }
    found
}

/// The fork/join rows: on the branching perception workload, measure the
/// DAG-aware optimum against the best linearized schedule (per-task
/// critical-path latency, one task in flight) and bottleneck replication
/// against the best non-replicated schedule (steady-state rate). All
/// virtual-time, hence deterministic — both speedups are gated.
fn dag_branching_rows(k: usize) -> DagBranching {
    let soc = devices::pixel_7a();
    let app = bt_bench::branching_app();
    let graph = app.task_graph();
    let table = profile(
        &soc,
        &app,
        ProfileMode::InterferenceHeavy,
        &ProfilerConfig::default(),
    );
    let cfg = OptimizerConfig {
        candidates: k,
        ..OptimizerConfig::with_threshold(0.0)
    };
    let noiseless = RunConfig {
        noise_sigma: 0.0,
        ..RunConfig::default()
    };
    // One task in flight: latency is the critical path, which is what
    // branch overlap shortens.
    let single = RunConfig {
        buffers: 1,
        ..noiseless.clone()
    };
    let dag_cands = optimize_dag(&soc, &table, &graph, &cfg).expect("dag candidates");
    // (critical-path latency, steady-state rate) of one DAG schedule.
    let measure = |s: &bt_pipeline::DagSchedule, cfg: &RunConfig| {
        let report = simulate_dag_schedule(&soc, &app, s, cfg, None).expect("simulates");
        let stats = report.expect_stats();
        (
            stats.mean_task_latency.as_f64(),
            stats.time_per_task.as_f64(),
        )
    };
    let dag_aware_us = dag_cands
        .iter()
        .map(|c| measure(&c.schedule, &single).0)
        .fold(f64::INFINITY, f64::min);
    let best_linearized_us = optimize(&soc, &table, &cfg)
        .expect("linearized candidates")
        .iter()
        .map(|c| {
            simulate_schedule(&soc, &app, &c.schedule, &single, None)
                .expect("simulates")
                .expect_stats()
                .mean_task_latency
                .as_f64()
        })
        .fold(f64::INFINITY, f64::min);

    // Replication arm: steady-state rate of the measured-best plain
    // schedule vs its bottleneck stage replicated.
    let (best_plain, best_nonreplicated_us) = dag_cands
        .iter()
        .map(|c| (c, measure(&c.schedule, &noiseless).1))
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("candidates");
    let bottleneck_chunk = best_plain
        .chunk_sums
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .expect("chunks")
        .0;
    let chunk = &best_plain.schedule.chunks()[bottleneck_chunk];
    let bottleneck_stage = chunk
        .stages
        .iter()
        .copied()
        .max_by(|&a, &b| {
            let lat = |s: usize| table.latency(s, chunk.pu).expect("profiled").as_f64();
            lat(a).partial_cmp(&lat(b)).expect("finite")
        })
        .expect("non-empty chunk");
    let replicated =
        optimize_replicated(&soc, &table, &graph, bottleneck_stage).expect("replication plan");
    let replicated_us = measure(&replicated.schedule, &noiseless).1;
    DagBranching {
        dag_aware_us,
        best_linearized_us,
        speedup: best_linearized_us / dag_aware_us,
        replicated_us,
        best_nonreplicated_us,
        replication_speedup: best_nonreplicated_us / replicated_us,
    }
}

/// The MCU edge row: the same Fig. 2 loop, retargeted at the STM32H745-
/// class device through [`McuBackend`] — whose only baseline is the
/// all-on-the-M7 firmware loop, since the MDMA engine moves bytes but
/// cannot host whole applications. Entirely virtual-time, hence
/// deterministic and hard-gated.
fn mcu_edge_row() -> McuEdge {
    let app = apps::sensor_app(apps::SensorConfig::default()).model();
    let d = BetterTogether::with_backend(McuBackend::new(devices::mcu_m7(), app))
        .run()
        .expect("Fig. 2 loop on the MCU backend");
    let best = d.best_schedule().expect("autotuned").clone();
    let best_us = d.best_latency().expect("measured").as_f64();
    let m7_baseline_us = d
        .baselines
        .latency_of(PuClass::BigCpu)
        .expect("M7 baseline measured")
        .as_f64();
    McuEdge {
        device: "mcu_m7",
        app: "sensor",
        best_schedule: best.to_string(),
        best_us,
        m7_baseline_us,
        speedup_over_m7: d.speedup_over_cpu().expect("both latencies measured"),
        classes_used: best.classes_used().len(),
    }
}

/// Reads one numeric leaf out of the committed `BENCH_eval.json`, if the
/// file exists and parses. Must run before this run overwrites it.
fn committed_value(keys: &[&str]) -> Option<f64> {
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_eval.json");
    let text = std::fs::read_to_string(path).ok()?;
    let mut v: serde_json::Value = serde_json::from_str(&text).ok()?;
    for k in keys {
        v = v.get(k)?.clone();
    }
    v.as_f64()
}

/// Fig. 2 loop speedup recorded in the committed `BENCH_eval.json`.
fn committed_baseline_speedup() -> Option<f64> {
    committed_value(&["fig2_loop", "speedup"])
}

/// Deterministic random fork/join instances for the engine-vs-engine row:
/// same generator for both arms, no external RNG dependency.
fn engine_instances(stages: usize, count: u32) -> Vec<(Vec<Vec<f64>>, bt_solver::StageDag)> {
    let splitmix = |state: &mut u64| {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    (0..u64::from(count))
        .map(|seed| {
            let mut st = seed.wrapping_mul(0xdead_beef).wrapping_add(17);
            let mut deps = Vec::new();
            for i in 0..stages {
                for j in i + 1..stages {
                    if splitmix(&mut st) % 2 == 0 {
                        deps.push((i, j));
                    }
                }
            }
            let lat: Vec<Vec<f64>> = (0..stages)
                .map(|_| {
                    (0..3)
                        .map(|_| 1.0 + (splitmix(&mut st) % 490) as f64 / 10.0)
                        .collect()
                })
                .collect();
            let dag = bt_solver::StageDag::new(stages, deps).expect("forward edges are acyclic");
            (lat, dag)
        })
        .collect()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let gate = std::env::args().any(|a| a == "--gate");
    let baseline_speedup = gate.then(committed_baseline_speedup).flatten();
    // Read the committed scalar cache-on rate before this run overwrites
    // the file — the batched row's throughput yardstick — along with the
    // thread count it was captured under (machine-awareness: a rate from
    // a single-core box is not a valid multi-core target).
    let committed_cache_on = committed_value(&["des", "events_per_sec_cache_on"]);
    let committed_threads =
        committed_value(&["batch", "threads"]).map(|t| t.max(0.0).round() as u64);
    let soc = devices::pixel_7a();
    let app = apps::alexnet_sparse_app(apps::AlexNetConfig::default()).model();
    println!(
        "evaluation-engine trajectory — Pixel 7a × sparse AlexNet{}\n",
        if smoke { " (smoke)" } else { "" }
    );

    // --- Fig. 2 loop: reconstructed pre-PR path vs current defaults. ----
    // Both arms run in ~1 ms, so a single averaged pass is at the mercy of
    // scheduler contention on small CI boxes. Contention is one-sided (it
    // only ever slows an arm down), so interleave short batches of the two
    // arms and keep the *minimum* batch mean per arm — the cleanest
    // observation each arm managed under identical machine conditions.
    let fig2_batches: u32 = if smoke { 2 } else { 6 };
    let fig2_reps: u32 = if smoke { 3 } else { 5 };
    let cur_backend = SimBackend::new(soc.clone(), app.clone());

    // Warm both arms once (page/allocator effects), then time.
    let bt = BetterTogether::with_backend(cur_backend.clone());
    pre_pr_fig2_loop(&soc, &app);
    bt.run().expect("warms");

    let mut pre_pr_ms = f64::INFINITY;
    let mut current_ms = f64::INFINITY;
    let mut current = None;
    for _ in 0..fig2_batches {
        let t0 = Instant::now();
        for _ in 0..fig2_reps {
            std::hint::black_box(pre_pr_fig2_loop(&soc, &app));
        }
        pre_pr_ms = pre_pr_ms.min(ms(t0) / f64::from(fig2_reps));

        let t0 = Instant::now();
        for _ in 0..fig2_reps {
            current = Some(bt.run().expect("current loop runs"));
        }
        current_ms = current_ms.min(ms(t0) / f64::from(fig2_reps));
    }

    // Byte-identical check: same defaults, parallel hint on vs forced
    // serial. Debug formatting covers every field of the Deployment.
    let serial = BetterTogether::with_backend(cur_backend.clone().with_parallel(false))
        .run()
        .expect("serial loop runs");
    let identical = format!("{:?}", current.expect("ran")) == format!("{serial:?}");
    let fig2 = Fig2Loop {
        pre_pr_ms,
        current_ms,
        speedup: pre_pr_ms / current_ms,
        deployment_byte_identical: identical,
    };
    println!(
        "Fig. 2 loop:  pre-PR {pre_pr_ms:9.2} ms   current {current_ms:9.2} ms   \
         speedup {:.2}x   byte-identical: {identical}",
        fig2.speedup
    );

    // --- DES throughput: service cache off vs on. -----------------------
    let plan = BetterTogether::with_backend(cur_backend.clone())
        .plan()
        .expect("plan");
    let schedule = &plan.candidates[0].schedule;
    let tasks: u32 = if smoke { 300 } else { 3000 };
    let runs: u32 = if smoke { 3 } else { 20 };
    let des_arm = |cache: bool| {
        let cfg = RunConfig {
            tasks,
            service_cache: cache,
            ..RunConfig::default()
        };
        let t0 = Instant::now();
        for seed in 0..u64::from(runs) {
            simulate_schedule(
                &soc,
                &app,
                schedule,
                &RunConfig {
                    seed,
                    ..cfg.clone()
                },
                None,
            )
            .expect("simulates");
        }
        let secs = t0.elapsed().as_secs_f64();
        // Each task crosses each chunk once: one dispatch + one completion.
        let events = f64::from(runs)
            * f64::from(tasks + RunConfig::default().warmup)
            * schedule.chunks().len() as f64
            * 2.0;
        events / secs
    };
    let off = des_arm(false);
    let on = des_arm(true);
    let des = DesThroughput {
        tasks_per_run: tasks,
        runs,
        events_per_sec_cache_off: off,
        events_per_sec_cache_on: on,
        speedup: on / off,
    };
    println!(
        "DES:          cache off {off:10.0} ev/s   cache on {on:10.0} ev/s   speedup {:.2}x",
        des.speedup
    );

    // --- Batched DES: all runs as lanes of one SoA pass. ----------------
    // Same schedule, same seeds, same event convention as the scalar
    // cache-on arm above; lanes shard across whatever cores this machine
    // has (per-lane results stay bit-identical either way).
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let (batch_rate, scalar_rate) = {
        let cfg = RunConfig {
            tasks,
            service_cache: true,
            ..RunConfig::default()
        };
        let lanes: Vec<DesSeedSpec> = (0..u64::from(runs)).map(DesSeedSpec::new).collect();
        let events = f64::from(runs)
            * f64::from(tasks + RunConfig::default().warmup)
            * schedule.chunks().len() as f64
            * 2.0;
        // Both arms are millisecond-scale on this workload, so a single
        // sample is noise-bound; interleave best-of-5 passes of each.
        simulate_schedule_batch(&soc, &app, schedule, &cfg, &lanes).expect("warm batch pass");
        let mut batch_best = f64::INFINITY;
        let mut scalar_best = f64::INFINITY;
        for _ in 0..5 {
            let t0 = Instant::now();
            simulate_schedule_batch(&soc, &app, schedule, &cfg, &lanes).expect("batch pass");
            batch_best = batch_best.min(t0.elapsed().as_secs_f64());
            let t0 = Instant::now();
            for lane in &lanes {
                simulate_schedule(
                    &soc,
                    &app,
                    schedule,
                    &RunConfig {
                        seed: lane.seed,
                        ..cfg.clone()
                    },
                    None,
                )
                .expect("scalar pass");
            }
            scalar_best = scalar_best.min(t0.elapsed().as_secs_f64());
        }
        (events / batch_best, events / scalar_best)
    };
    let batch = BatchThroughput {
        lanes: runs,
        threads,
        events_per_sec_batch: batch_rate,
        events_per_sec_scalar_same_run: scalar_rate,
        batch_vs_scalar: batch_rate / scalar_rate,
        committed_cache_on,
        batch_vs_committed: committed_cache_on.map(|c| batch_rate / c),
        committed_threads,
    };
    println!(
        "Batch DES:    {runs} lanes {batch_rate:10.0} ev/s   vs scalar {:.2}x   \
         vs committed {}   ({threads} threads)",
        batch.batch_vs_scalar,
        batch
            .batch_vs_committed
            .map_or_else(|| "n/a".into(), |r| format!("{r:.2}x")),
    );

    // --- Solver: 20 candidates, re-encode vs incremental. ---------------
    let k = if smoke { 8 } else { 20 };
    let table = BetterTogether::with_backend(cur_backend).profile();
    let problem = build_problem(&soc, &table).expect("valid problem");
    let t0 = Instant::now();
    let old = reencode_candidates(&problem, k);
    let reencode_ms = ms(t0);
    let t0 = Instant::now();
    let new = problem.latency_candidates(k);
    let incremental_ms = ms(t0);
    assert_eq!(old.len(), new.len(), "both arms enumerate the same count");
    let solver = SolverCandidates {
        candidates: k,
        reencode_ms,
        incremental_ms,
        speedup: reencode_ms / incremental_ms,
    };
    println!(
        "Solver ({k}):  re-encode {reencode_ms:8.2} ms   incremental {incremental_ms:8.2} ms   \
         speedup {:.2}x",
        solver.speedup
    );

    // --- Engines: CDCL vs chronological DPLL on large DAG encodings. ----
    // N = 9 stages is where the CEGAR loop's lazily-added constraints make
    // the chronological engine labor; clause learning must never lose and
    // must keep every solve interactive.
    let engine_stages = 9usize;
    let engine_count: u32 = if smoke { 2 } else { 6 };
    let instances = engine_instances(engine_stages, engine_count);
    let mut cdcl_ms = 0.0f64;
    let mut dpll_ms = 0.0f64;
    let mut max_cdcl_solve_ms = 0.0f64;
    for (lat, dag) in &instances {
        let cdcl = DagProblem::new(lat.clone(), dag.clone()).expect("valid instance");
        let dpll = DagProblem::new(lat.clone(), dag.clone())
            .expect("valid instance")
            .with_engine(Engine::Dpll);
        let t0 = Instant::now();
        let rc = cdcl.min_latency(&[]).map(|(t, _)| t);
        let solve = ms(t0);
        cdcl_ms += solve;
        max_cdcl_solve_ms = max_cdcl_solve_ms.max(solve);
        let t1 = Instant::now();
        let rd = dpll.min_latency(&[]).map(|(t, _)| t);
        dpll_ms += ms(t1);
        match (rc, rd) {
            (Some(a), Some(b)) => assert!((a - b).abs() < 1e-9, "optima differ: {a} vs {b}"),
            (None, None) => {}
            (a, b) => panic!("engine verdicts differ: cdcl {a:?} vs dpll {b:?}"),
        }
    }
    let solver_engines = SolverEngines {
        stages: engine_stages,
        instances: engine_count,
        cdcl_ms,
        dpll_ms,
        speedup: dpll_ms / cdcl_ms,
        max_cdcl_solve_ms,
    };
    println!(
        "Engines:      CDCL {cdcl_ms:8.2} ms   DPLL {dpll_ms:8.2} ms   speedup {:.2}x   \
         worst CDCL solve {max_cdcl_solve_ms:.2} ms",
        solver_engines.speedup
    );

    // --- Multi-tenant co-run rows. --------------------------------------
    let (mt_tasks, steal_tasks) = if smoke { (50, 500) } else { (200, 5000) };
    let mt = bt_bench::mt::run_mt_bench(mt_tasks, steal_tasks);
    println!(
        "Multi-tenant: co-run {:9.0} µs   sliced {:9.0} µs   speedup {:.2}x   \
         steal path {:.2} µs/task",
        mt.co_run_makespan_us,
        mt.time_sliced_makespan_us,
        mt.co_run_speedup,
        mt.steal_overhead_us_per_task
    );

    // --- Fork/join rows on the branching perception app. ----------------
    let dag = dag_branching_rows(if smoke { 5 } else { 10 });
    println!(
        "DAG:          dag-aware {:9.0} µs   linearized {:9.0} µs   speedup {:.2}x   \
         replication {:.2}x",
        dag.dag_aware_us, dag.best_linearized_us, dag.speedup, dag.replication_speedup
    );

    // --- MCU edge row: sensor app on the mcu_m7 device. -----------------
    let mcu = mcu_edge_row();
    println!(
        "MCU edge:     best {} {:9.0} µs   all-on-M7 {:9.0} µs   speedup {:.2}x   \
         ({} classes)",
        mcu.best_schedule, mcu.best_us, mcu.m7_baseline_us, mcu.speedup_over_m7, mcu.classes_used
    );

    let meets = fig2.speedup >= 2.0;
    println!(
        "\nFig. 2 loop >= 2x over pre-PR path: {}",
        if meets { "met" } else { "NOT met" }
    );

    let fig2_speedup = fig2.speedup;
    let mt_speedup = mt.co_run_speedup;
    let dag_speedup = dag.speedup;
    let replication_speedup = dag.replication_speedup;
    let batch_vs_scalar = batch.batch_vs_scalar;
    let batch_vs_committed = batch.batch_vs_committed;
    let engines_speedup = solver_engines.speedup;
    let engines_worst_ms = solver_engines.max_cdcl_solve_ms;
    let mcu_speedup = mcu.speedup_over_m7;
    let mcu_classes = mcu.classes_used;
    bt_bench::write_root_result(
        "BENCH_eval",
        &BenchEval {
            device: "pixel_7a",
            app: "alexnet_sparse",
            smoke,
            fig2_loop: fig2,
            des,
            batch,
            solver,
            solver_engines,
            mt,
            dag,
            mcu,
            meets_2x_fig2: meets,
        },
    );

    if gate {
        const GATE_FLOOR: f64 = 1.8;
        match baseline_speedup {
            Some(b) => println!(
                "gate: Fig. 2 loop speedup {fig2_speedup:.2}x vs committed baseline {b:.2}x \
                 ({:+.1}%)",
                (fig2_speedup / b - 1.0) * 100.0
            ),
            None => println!("gate: no committed baseline found (first run?)"),
        }
        if fig2_speedup < GATE_FLOOR {
            eprintln!(
                "gate: FAIL — Fig. 2 loop speedup {fig2_speedup:.2}x is below the \
                 {GATE_FLOOR}x regression floor"
            );
            std::process::exit(1);
        }
        // The multi-tenant arm is virtual-time, hence deterministic: a
        // co-run that stops beating time-slicing is a real regression in
        // the co-scheduling model, not runner noise.
        if mt_speedup <= 1.0 {
            eprintln!(
                "gate: FAIL — multi-tenant co-run speedup {mt_speedup:.2}x does not beat \
                 time-slicing"
            );
            std::process::exit(1);
        }
        // Likewise deterministic: the DAG-aware schedule must beat the
        // best linearized one, and replicating the measured bottleneck
        // must beat the best non-replicated schedule.
        if dag_speedup <= 1.0 {
            eprintln!(
                "gate: FAIL — DAG-aware schedule speedup {dag_speedup:.2}x does not beat \
                 the best linearized schedule"
            );
            std::process::exit(1);
        }
        if replication_speedup <= 1.0 {
            eprintln!(
                "gate: FAIL — bottleneck replication speedup {replication_speedup:.2}x does \
                 not beat the best non-replicated schedule"
            );
            std::process::exit(1);
        }
        // Batched-DES row. The 3x-vs-committed target is only expressible
        // when BOTH captures had cores for the batch engine to shard
        // across: this run's machine, and the machine the committed
        // baseline was recorded on (its batch row carries `threads`).
        // Otherwise the honest bound is parity with the same-run scalar
        // engine (the batch engine must never cost throughput to exist).
        const BATCH_TARGET: f64 = 3.0;
        // One core sees the SoA engine's column traffic without the
        // sharding that pays for it: steady-state parity measures ~0.8x
        // here (best-of-5). The floor guards against a catastrophic
        // regression (an accidentally quadratic lane loop), not a perf
        // claim — the perf claim lives in the multi-core branch above.
        const BATCH_PARITY_FLOOR: f64 = 0.7;
        let committed_is_multicore = committed_threads.is_some_and(|t| t >= 4);
        if threads >= 4 && committed_is_multicore {
            match batch_vs_committed {
                Some(r) if r < BATCH_TARGET => {
                    eprintln!(
                        "gate: FAIL — batched DES {r:.2}x vs committed cache-on rate is \
                         below the {BATCH_TARGET}x target ({threads} threads)"
                    );
                    std::process::exit(1);
                }
                Some(r) => println!(
                    "gate: batched DES {r:.2}x vs committed cache-on rate \
                     (target {BATCH_TARGET}x, {threads} threads)"
                ),
                None => println!("gate: no committed cache-on rate found (first run?)"),
            }
        } else {
            match (threads >= 4, committed_threads) {
                (true, Some(t)) => println!(
                    "gate: batched DES — committed baseline was captured on {t} thread(s); \
                     cross-machine {BATCH_TARGET}x target suppressed, holding parity floor \
                     {BATCH_PARITY_FLOOR}x vs same-run scalar"
                ),
                (true, None) => println!(
                    "gate: batched DES — committed baseline predates thread stamping; \
                     cross-machine {BATCH_TARGET}x target suppressed, holding parity floor \
                     {BATCH_PARITY_FLOOR}x vs same-run scalar"
                ),
                (false, _) => println!(
                    "gate: batched DES on {threads} thread(s) — holding parity floor \
                     {BATCH_PARITY_FLOOR}x vs same-run scalar instead of the {BATCH_TARGET}x \
                     multi-core target"
                ),
            }
            if batch_vs_scalar < BATCH_PARITY_FLOOR {
                eprintln!(
                    "gate: FAIL — batched DES {batch_vs_scalar:.2}x vs same-run scalar is \
                     below the {BATCH_PARITY_FLOOR}x parity floor"
                );
                std::process::exit(1);
            }
        }
        // Solver-engine row: the clause-learning engine must never lose to
        // the chronological DPLL it replaced, and on the full (non-smoke)
        // instance set every N=9 solve must land under the 50 ms budget.
        if engines_speedup < 1.0 {
            eprintln!("gate: FAIL — CDCL is slower than DPLL ({engines_speedup:.2}x aggregate)");
            std::process::exit(1);
        }
        // MCU edge row, also virtual-time: on the mcu_m7 device the
        // interference-aware pipeline must beat the naive all-on-M7
        // firmware loop, and the winning schedule must actually be
        // heterogeneous (otherwise the backend degenerated to the
        // baseline it claims to beat).
        if mcu_speedup <= 1.0 {
            eprintln!(
                "gate: FAIL — MCU edge speedup {mcu_speedup:.2}x does not beat the \
                 all-on-M7 firmware baseline"
            );
            std::process::exit(1);
        }
        if mcu_classes < 2 {
            eprintln!(
                "gate: FAIL — MCU edge schedule uses {mcu_classes} PU class(es); the \
                 winning schedule must span more than one"
            );
            std::process::exit(1);
        }
        const CDCL_BUDGET_MS: f64 = 50.0;
        if !smoke && engines_worst_ms >= CDCL_BUDGET_MS {
            eprintln!(
                "gate: FAIL — worst CDCL solve {engines_worst_ms:.1} ms exceeds the \
                 {CDCL_BUDGET_MS} ms budget"
            );
            std::process::exit(1);
        }
        println!(
            "gate: pass (fig2 {fig2_speedup:.2}x >= {GATE_FLOOR}x, co-run {mt_speedup:.2}x > 1x, \
             dag {dag_speedup:.2}x > 1x, replication {replication_speedup:.2}x > 1x, \
             batch {batch_vs_scalar:.2}x scalar, cdcl {engines_speedup:.2}x dpll / \
             worst {engines_worst_ms:.1} ms, mcu {mcu_speedup:.2}x > 1x)"
        );
    }
}
