//! Multi-tenant co-run measurements shared by the `bench_mt` binary and
//! the `bench_eval` trajectory rows.
//!
//! Two numbers summarize the multi-tenant runtime:
//!
//! 1. **Aggregate co-run speedup** — virtual-time, deterministic: the
//!    paper's three apps co-scheduled on one simulated Pixel 7a
//!    ([`bt_soc::simulate_multi`]) versus naive time-slicing (solo runs
//!    back to back). This is the number the `bench_eval --gate` floor
//!    covers: a co-run that stops beating time-slicing is a regression in
//!    either the stealing runtime model or the interference pricing.
//! 2. **Steal-path overhead per task** — wall-clock, informational: a
//!    no-op tenant pushed through the work-stealing host pool
//!    ([`bt_pipeline::run_multi_host`]), so every measured microsecond is
//!    queue/claim/steal machinery rather than kernel work.

use std::sync::Arc;
use std::time::Instant;

use bt_kernels::{Application, KernelFn, ParCtx, Stage};
use bt_pipeline::{
    run_multi_host, to_chunk_specs, RunConfig, Schedule, Tenant, TenantSet, WorkerBudget,
};
use bt_soc::{devices, simulate_multi, PuClass, TenantSpec, WorkProfile};
use serde::Serialize;

/// The multi-tenant rows of the perf trajectory.
#[derive(Debug, Clone, Serialize)]
pub struct MtBench {
    /// Number of co-running tenants (the paper's three apps).
    pub tenants: usize,
    /// Virtual-time makespan of the interference-aware co-run, µs.
    pub co_run_makespan_us: f64,
    /// Virtual-time makespan of naive time-slicing (solo runs summed), µs.
    pub time_sliced_makespan_us: f64,
    /// `time_sliced / co_run` — deterministic, gate-able.
    pub co_run_speedup: f64,
    /// Aggregate completed-task throughput of the co-run, Hz.
    pub aggregate_throughput_hz: f64,
    /// Wall-clock work-stealing pool overhead per task, µs (no-op
    /// kernels; queue + claim + steal machinery only). Informational —
    /// noisy on shared runners.
    pub steal_overhead_us_per_task: f64,
}

/// Interference-aware co-placement of the three paper apps (dense,
/// sparse, octree — [`crate::paper_apps`] order) on the Pixel 7a: each
/// tenant leans on a different cluster mix.
fn co_schedules(stage_counts: &[usize]) -> Vec<Schedule> {
    use PuClass::*;
    vec![
        // AlexNet dense: GPU trunk.
        Schedule::homogeneous(stage_counts[0], Gpu),
        // AlexNet sparse: big/medium CPU split, off the GPU.
        Schedule::new(
            (0..stage_counts[1])
                .map(|i| {
                    if i < stage_counts[1] / 2 {
                        BigCpu
                    } else {
                        MediumCpu
                    }
                })
                .collect(),
        )
        .expect("contiguous"),
        // Octree: CPU front, GPU middle, little tail.
        Schedule::new(vec![
            BigCpu, BigCpu, MediumCpu, Gpu, Gpu, LittleCpu, LittleCpu,
        ])
        .expect("contiguous"),
    ]
}

/// Runs both measurements. `tasks` scales the per-tenant stream length of
/// the virtual-time arms; `steal_tasks` the wall-clock no-op stream.
pub fn run_mt_bench(tasks: u32, steal_tasks: u32) -> MtBench {
    let soc = devices::pixel_7a();
    let models = crate::paper_apps();
    let schedules = co_schedules(&models.iter().map(|m| m.stage_count()).collect::<Vec<_>>());
    let specs: Vec<TenantSpec> = models
        .iter()
        .zip(&schedules)
        .enumerate()
        .map(|(i, (m, s))| {
            TenantSpec::new(
                m.name.clone(),
                to_chunk_specs(m, s).expect("schedule fits app"),
                RunConfig {
                    tasks,
                    warmup: 5,
                    seed: 11 + i as u64,
                    ..RunConfig::default()
                },
            )
        })
        .collect();

    let time_sliced: f64 = specs
        .iter()
        .map(|t| {
            simulate_multi(&soc, std::slice::from_ref(t), None)
                .expect("solo run")
                .makespan_us
        })
        .sum();
    let co = simulate_multi(&soc, &specs, None).expect("co-run");

    MtBench {
        tenants: specs.len(),
        co_run_makespan_us: co.makespan_us,
        time_sliced_makespan_us: time_sliced,
        co_run_speedup: time_sliced / co.makespan_us,
        aggregate_throughput_hz: co.throughput_hz,
        steal_overhead_us_per_task: steal_overhead_us(steal_tasks),
    }
}

/// Wall-clock µs of pool machinery per task: one no-op two-chunk tenant,
/// two workers, so each task crosses the injector/deque/claim path twice.
fn steal_overhead_us(tasks: u32) -> f64 {
    let noop: KernelFn<u64> = Arc::new(|_t: &mut u64, _ctx: &ParCtx| {});
    let stages = (0..2)
        .map(|i| {
            Stage::new(
                format!("s{i}"),
                WorkProfile::new(1.0, 1.0),
                Arc::clone(&noop),
            )
        })
        .collect();
    let app = Application::new(
        "noop",
        stages,
        Arc::new(|| 0u64),
        Arc::new(|t: &mut u64, seq| *t = seq),
    );
    let schedule = Schedule::new(vec![PuClass::BigCpu, PuClass::MediumCpu]).expect("contiguous");
    let run = RunConfig {
        tasks,
        warmup: 1,
        ..RunConfig::default()
    };
    let set =
        TenantSet::new().with(Tenant::new("noop", &app, &schedule, run).expect("valid tenant"));
    let budget = WorkerBudget::new(2);
    // One warmup run for thread spawn / allocator effects, then measure.
    run_multi_host(&set, &budget).expect("warm run");
    let t0 = Instant::now();
    let reports = run_multi_host(&set, &budget).expect("measured run");
    let elapsed_us = t0.elapsed().as_secs_f64() * 1e6;
    assert_eq!(reports[0].completed, u64::from(tasks + 1));
    elapsed_us / f64::from(tasks + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mt_bench_rows_are_sane() {
        let b = run_mt_bench(10, 50);
        assert_eq!(b.tenants, 3);
        assert!(b.co_run_makespan_us > 0.0);
        assert!(b.time_sliced_makespan_us > b.co_run_makespan_us);
        assert!(b.co_run_speedup > 1.0);
        assert!(b.aggregate_throughput_hz > 0.0);
        assert!(b.steal_overhead_us_per_task > 0.0);
    }
}
