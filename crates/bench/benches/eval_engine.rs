//! End-to-end evaluation-engine benchmarks: the full Fig. 2 loop
//! (profile → optimize → autotune → baselines), the DES service cache,
//! and the incremental SAT candidate enumerator — each against its
//! pre-optimization configuration. `bench_eval` (a binary) distils the
//! same comparisons into the `BENCH_eval.json` trajectory artefact.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bt_core::{build_problem, BetterTogether, SimBackend};
use bt_kernels::apps;
use bt_pipeline::simulate_schedule;
use bt_soc::{devices, RunConfig};

fn fig2_loop(c: &mut Criterion) {
    let soc = devices::pixel_7a();
    let app = apps::alexnet_sparse_app(apps::AlexNetConfig::default()).model();
    let current = SimBackend::new(soc.clone(), app.clone());
    let pre_pr = SimBackend::new(soc, app)
        .with_parallel(false)
        .with_run(RunConfig {
            service_cache: false,
            ..RunConfig::default()
        });

    let mut group = c.benchmark_group("fig2_loop");
    group.sample_size(10);
    group.bench_function("current", |b| {
        b.iter(|| {
            black_box(
                BetterTogether::with_backend(current.clone())
                    .run()
                    .expect("runs")
                    .outcome
                    .best_index,
            )
        });
    });
    group.bench_function("pre_pr", |b| {
        b.iter(|| {
            black_box(
                BetterTogether::with_backend(pre_pr.clone())
                    .run()
                    .expect("runs")
                    .outcome
                    .best_index,
            )
        });
    });
    group.finish();
}

fn des_service_cache(c: &mut Criterion) {
    let soc = devices::pixel_7a();
    let app = apps::alexnet_sparse_app(apps::AlexNetConfig::default()).model();
    let plan = BetterTogether::new(soc.clone(), app.clone())
        .plan()
        .expect("plan");
    let schedule = plan.candidates[0].schedule.clone();

    let mut group = c.benchmark_group("des_service_cache");
    for cache in [true, false] {
        let cfg = RunConfig {
            tasks: 3000,
            service_cache: cache,
            ..RunConfig::default()
        };
        group.bench_function(if cache { "on" } else { "off" }, |b| {
            b.iter(|| {
                black_box(
                    simulate_schedule(&soc, &app, &schedule, &cfg, None)
                        .expect("simulates")
                        .expect_stats()
                        .time_per_task,
                )
            });
        });
    }
    group.finish();
}

fn solver_enumerator(c: &mut Criterion) {
    let soc = devices::pixel_7a();
    let app = apps::alexnet_sparse_app(apps::AlexNetConfig::default()).model();
    let table = BetterTogether::new(soc.clone(), app).profile();
    let problem = build_problem(&soc, &table).expect("valid problem");

    c.bench_function("solver_incremental_20", |b| {
        b.iter(|| black_box(problem.latency_candidates(20).len()));
    });
}

fn bench_all(c: &mut Criterion) {
    fig2_loop(c);
    des_service_cache(c);
    solver_enumerator(c);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_all
}
criterion_main!(benches);
