//! Discrete-event simulator throughput: how fast the virtual-device
//! substrate evaluates pipeline schedules (this bounds autotuning cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bt_kernels::apps;
use bt_pipeline::{simulate_schedule, Schedule};
use bt_soc::{devices, PuClass, RunConfig};

fn simulator_throughput(c: &mut Criterion) {
    let soc = devices::pixel_7a();
    let app = apps::octree_app(apps::OctreeConfig::default()).model();
    let schedule = Schedule::new(vec![
        PuClass::LittleCpu,
        PuClass::BigCpu,
        PuClass::Gpu,
        PuClass::Gpu,
        PuClass::Gpu,
        PuClass::Gpu,
        PuClass::MediumCpu,
    ])
    .expect("valid schedule");

    let mut group = c.benchmark_group("des");
    for tasks in [30u32, 300, 3000] {
        let cfg = RunConfig {
            tasks,
            ..RunConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("octree_pixel", tasks), &cfg, |b, cfg| {
            b.iter(|| {
                black_box(
                    simulate_schedule(&soc, &app, &schedule, cfg, None)
                        .expect("simulates")
                        .expect_stats()
                        .time_per_task,
                )
            });
        });
    }
    group.finish();
}

fn profiler_cost(c: &mut Criterion) {
    use bt_profiler::{profile, ProfileMode, ProfilerConfig};
    let soc = devices::pixel_7a();
    let app = apps::alexnet_dense_app(apps::AlexNetConfig::default()).model();
    c.bench_function("profile_dense_pixel_heavy", |b| {
        b.iter(|| {
            black_box(profile(
                &soc,
                &app,
                ProfileMode::InterferenceHeavy,
                &ProfilerConfig::default(),
            ))
            .stages()
            .len()
        });
    });
}

fn bench_all(c: &mut Criterion) {
    simulator_throughput(c);
    profiler_cost(c);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_all
}
criterion_main!(benches);
