//! Kernel-level throughput benches: the real compute stages behind the
//! three applications, on the host.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use bt_kernels::dense::{conv2d, conv2d_gemm, Conv2dParams};
use bt_kernels::octree::{
    count_edges, dedup_sorted, exclusive_scan, morton_encode_cloud, radix_sort_u32, RadixTree,
};
use bt_kernels::pointcloud::{CloudShape, PointCloudStream};
use bt_kernels::sparse::{prune_to_csr, CsrMatrix};
use bt_kernels::{ParCtx, Tensor};

fn octree_stages(c: &mut Criterion) {
    let n = 50_000usize;
    let cloud = PointCloudStream::new(CloudShape::Clustered, 1).next_cloud(n);
    let ctx = ParCtx::new(2);

    let mut group = c.benchmark_group("octree");
    group.throughput(Throughput::Elements(n as u64));

    group.bench_function("morton_encode", |b| {
        let mut codes = Vec::new();
        b.iter(|| {
            morton_encode_cloud(&ctx, black_box(&cloud), &mut codes);
            black_box(codes.len())
        });
    });

    let mut codes = Vec::new();
    morton_encode_cloud(&ctx, &cloud, &mut codes);
    group.bench_function("radix_sort", |b| {
        let mut scratch = Vec::new();
        b.iter_batched(
            || codes.clone(),
            |mut data| {
                radix_sort_u32(&ctx, &mut data, &mut scratch);
                black_box(data[0])
            },
            criterion::BatchSize::LargeInput,
        );
    });

    let mut sorted = codes.clone();
    let mut scratch = Vec::new();
    radix_sort_u32(&ctx, &mut sorted, &mut scratch);
    let mut unique = Vec::new();
    dedup_sorted(&ctx, &sorted, &mut unique);

    group.bench_function("radix_tree_build", |b| {
        b.iter(|| black_box(RadixTree::build(&ctx, &unique)).internal_count());
    });

    let tree = RadixTree::build(&ctx, &unique);
    group.bench_function("edge_count", |b| {
        let mut edges = Vec::new();
        b.iter(|| {
            count_edges(&ctx, &tree, 6, &mut edges);
            black_box(edges.len())
        });
    });

    let mut edges = Vec::new();
    count_edges(&ctx, &tree, 6, &mut edges);
    group.bench_function("prefix_sum", |b| {
        let mut offsets = Vec::new();
        b.iter(|| black_box(exclusive_scan(&ctx, &edges, &mut offsets)));
    });
    group.finish();
}

fn cnn_kernels(c: &mut Criterion) {
    let ctx = ParCtx::new(2);
    let params = Conv2dParams {
        in_channels: 64,
        out_channels: 128,
        kernel: 3,
        padding: 1,
    };
    let input = Tensor::zeros(&[64, 16, 16]);
    let weights = vec![0.01f32; 128 * 64 * 9];
    let bias = vec![0.0f32; 128];
    let mut out = Tensor::zeros(&[128, 16, 16]);

    let mut group = c.benchmark_group("cnn");
    group.throughput(Throughput::Elements(params.flops(16, 16) as u64));
    group.bench_function("conv2d_direct_64x128_16x16", |b| {
        b.iter(|| {
            conv2d(&ctx, &params, black_box(&input), &weights, &bias, &mut out);
            black_box(out.as_slice()[0])
        });
    });
    group.bench_function("conv2d_gemm_64x128_16x16", |b| {
        b.iter(|| {
            conv2d_gemm(&ctx, &params, black_box(&input), &weights, &bias, &mut out);
            black_box(out.as_slice()[0])
        });
    });

    // Sparse SpMM at 10% density.
    let rows = 128;
    let cols = 64 * 9;
    let dense: Vec<f32> = (0..rows * cols)
        .map(|i| ((i % 17) as f32 - 8.0) * 0.1)
        .collect();
    let csr: CsrMatrix = prune_to_csr(&dense, rows, cols, 0.1);
    let rhs = vec![0.5f32; cols * 256];
    let mut spmm_out = vec![0.0f32; rows * 256];
    group.throughput(Throughput::Elements((csr.nnz() * 256) as u64));
    group.bench_function("spmm_csr_10pct", |b| {
        b.iter(|| {
            csr.spmm(&ctx, black_box(&rhs), 256, &mut spmm_out);
            black_box(spmm_out[0])
        });
    });
    group.finish();
}

fn bench_all(c: &mut Criterion) {
    octree_stages(c);
    cnn_kernels(c);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_all
}
criterion_main!(benches);
