//! Solver benches: the paper claims each z3 invocation completes in <50 ms
//! for N=9/M=4 (§3.3); these benches time our DPLL replacement and the
//! exact enumerator across problem sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bt_solver::enumerate::{enumerate_schedules, latency_candidates_exact};
use bt_solver::ScheduleProblem;

fn synthetic(n: usize, m: usize) -> ScheduleProblem {
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..m)
                .map(|c| 50.0 + ((i * 31 + c * 17) % 97) as f64 * 13.0)
                .collect()
        })
        .collect();
    ScheduleProblem::new(rows).expect("valid synthetic table")
}

fn solver_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat_min_latency");
    for n in [6usize, 9, 12] {
        let p = synthetic(n, 4);
        group.bench_with_input(BenchmarkId::from_parameter(n), &p, |b, p| {
            b.iter(|| black_box(p.min_latency(&[])).is_some());
        });
    }
    group.finish();

    let mut group = c.benchmark_group("exact_enumeration");
    for n in [6usize, 9, 12] {
        let p = synthetic(n, 4);
        group.bench_with_input(BenchmarkId::from_parameter(n), &p, |b, p| {
            b.iter(|| black_box(enumerate_schedules(p)).len());
        });
    }
    group.finish();
}

fn candidate_generation(c: &mut Criterion) {
    let p = synthetic(9, 4);
    let mut group = c.benchmark_group("candidates_k20_n9_m4");
    group.bench_function("sat_blocking", |b| {
        b.iter(|| black_box(p.latency_candidates(20)).len());
    });
    group.bench_function("exact_sorted", |b| {
        b.iter(|| black_box(latency_candidates_exact(&p, 20)).len());
    });
    group.finish();
}

fn gapness(c: &mut Criterion) {
    let p = synthetic(7, 4);
    c.bench_function("sat_min_gapness_n7_m4", |b| {
        b.iter(|| black_box(p.min_gapness()).is_some());
    });
}

fn bench_all(c: &mut Criterion) {
    solver_scaling(c);
    candidate_generation(c);
    gapness(c);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_all
}
criterion_main!(benches);
