//! Hot-path benches of the lock-free SPSC queue that carries TaskObject
//! pointers between dispatcher threads.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use bt_pipeline::spsc;

fn spsc_same_thread(c: &mut Criterion) {
    let mut group = c.benchmark_group("spsc");
    group.throughput(Throughput::Elements(1));
    group.bench_function("push_pop_uncontended", |b| {
        let (mut tx, mut rx) = spsc::channel::<u64>(64).expect("positive capacity");
        b.iter(|| {
            tx.push(black_box(42)).expect("capacity available");
            black_box(rx.pop().expect("just pushed"))
        });
    });

    group.bench_function("boxed_payload_transfer", |b| {
        let (mut tx, mut rx) = spsc::channel::<Box<[u8; 256]>>(8).expect("positive capacity");
        let mut slot = Some(Box::new([0u8; 256]));
        b.iter(|| {
            let payload = slot.take().expect("recycled");
            tx.push(payload).expect("capacity");
            slot = rx.pop();
            black_box(slot.is_some())
        });
    });
    group.finish();
}

fn spsc_cross_thread(c: &mut Criterion) {
    let mut group = c.benchmark_group("spsc");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("cross_thread_10k", |b| {
        b.iter(|| {
            let (mut tx, mut rx) = spsc::channel::<u64>(256).expect("positive capacity");
            let producer = std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    let mut v = i;
                    while let Err(back) = tx.push(v) {
                        v = back;
                        std::hint::spin_loop();
                    }
                }
            });
            let mut sum = 0u64;
            let mut got = 0;
            while got < 10_000 {
                if let Some(v) = rx.pop() {
                    sum = sum.wrapping_add(v);
                    got += 1;
                } else {
                    std::hint::spin_loop();
                }
            }
            producer.join().expect("producer exits");
            black_box(sum)
        });
    });
    group.finish();
}

fn bench_all(c: &mut Criterion) {
    spsc_same_thread(c);
    spsc_cross_thread(c);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_all
}
criterion_main!(benches);
