//! Host pipeline executor benches, centred on the telemetry contract:
//! with `TelemetryConfig::OFF` the instrumented dispatch loop must cost
//! the same as before the telemetry layer existed (one predictable
//! branch per instrumentation point).

use std::hint::black_box;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};

use bt_kernels::{Application, KernelFn, ParCtx, Stage};
use bt_pipeline::{run_host, PuThreads, RunConfig, Schedule};
use bt_telemetry::TelemetryConfig;

#[derive(Debug, Default)]
struct Payload {
    seq: u64,
    acc: u64,
}

/// Application whose stages do a fixed chunk of integer work — large
/// enough to dominate thread wake-ups, small enough that per-task queue
/// traffic (where the telemetry branches live) stays visible.
fn busy_app(stages: usize, iters: u64) -> Application<Payload> {
    let stage_list = (0..stages)
        .map(|i| {
            Stage::new(
                format!("s{i}"),
                bt_soc::WorkProfile::new(1.0, 1.0),
                Arc::new(move |p: &mut Payload, _ctx: &ParCtx| {
                    let mut x = p.seq.wrapping_add(i as u64);
                    for _ in 0..iters {
                        x = x
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                    }
                    p.acc = p.acc.wrapping_add(x);
                }) as KernelFn<Payload>,
            )
        })
        .collect();
    Application::new(
        "busy",
        stage_list,
        Arc::new(Payload::default),
        Arc::new(|p: &mut Payload, seq| p.seq = seq),
    )
}

fn run_once(app: &Application<Payload>, telemetry: TelemetryConfig) -> f64 {
    use bt_soc::PuClass::*;
    let schedule = Schedule::new(vec![BigCpu, BigCpu, Gpu, Gpu]).expect("contiguous");
    let cfg = RunConfig {
        tasks: 200,
        warmup: 10,
        telemetry,
        ..RunConfig::default()
    };
    let report = run_host(app, &schedule, &PuThreads::uniform(1), &cfg, None).expect("runs");
    report.expect_stats().time_per_task.as_f64() * 1e-6
}

fn executor_telemetry_overhead(c: &mut Criterion) {
    let app = busy_app(4, 2_000);
    let mut group = c.benchmark_group("executor");
    group.bench_function("run_host_telemetry_off", |b| {
        b.iter(|| black_box(run_once(&app, TelemetryConfig::OFF)))
    });
    group.bench_function("run_host_telemetry_full", |b| {
        b.iter(|| black_box(run_once(&app, TelemetryConfig::full())))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = executor_telemetry_overhead
}
criterion_main!(benches);
