//! bt-telemetry: pipeline instrumentation shared by the host executor and
//! the discrete-event simulator.
//!
//! The paper's measurement methodology (§5) needs more than end-to-end
//! latency: diagnosing *why* a schedule underperforms requires knowing, per
//! dispatcher, how long it computed, how long it starved on its input queue,
//! how long it was back-pressured by its output queue, and how full the
//! queues ran. This crate provides that layer:
//!
//! * [`DispatcherCounters`] — plain per-thread counters. Each dispatcher
//!   owns its instance exclusively (no atomics, no sharing — ownership *is*
//!   the lock-freedom) and the executor merges them at join time.
//! * [`SpanRecorder`] / [`Span`] — one span model for both execution
//!   domains: the host records wall-clock [`std::time::Instant`] pairs
//!   against an epoch, the simulator records virtual microseconds directly.
//! * [`RunTelemetry`] — the merged result, exportable as Chrome
//!   `trace_event` JSON ([`RunTelemetry::chrome_trace_json`], loadable in
//!   `chrome://tracing` or Perfetto) or compact JSONL
//!   ([`RunTelemetry::metrics_jsonl`]).
//! * [`TelemetryConfig`] — the switch carried by the executor and simulator
//!   configs. Everything is off by default; the disabled path costs one
//!   branch per instrumentation point (bench-verified in `bt-bench`).

use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};
use serde_json::Value;

/// What a run should collect. Default: nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TelemetryConfig {
    /// Collect per-dispatcher counters (tasks, busy/blocked time, queue
    /// occupancy samples).
    #[serde(default)]
    pub counters: bool,
    /// Record per-task execution spans for trace export.
    #[serde(default)]
    pub spans: bool,
}

impl TelemetryConfig {
    /// Everything off — the zero-overhead default.
    pub const OFF: TelemetryConfig = TelemetryConfig {
        counters: false,
        spans: false,
    };

    /// Everything on.
    pub fn full() -> TelemetryConfig {
        TelemetryConfig {
            counters: true,
            spans: true,
        }
    }

    /// Counters without span recording (constant memory per run).
    pub fn counters_only() -> TelemetryConfig {
        TelemetryConfig {
            counters: true,
            spans: false,
        }
    }

    /// Whether any collection is requested.
    pub fn any(&self) -> bool {
        self.counters || self.spans
    }
}

/// Per-dispatcher activity counters.
///
/// One instance per dispatcher thread, owned exclusively by that thread
/// while the pipeline runs; the executor moves them out at join and folds
/// them into [`RunTelemetry`]. All fields accumulate monotonically.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DispatcherCounters {
    /// Tasks whose chunk this dispatcher executed.
    pub tasks: u64,
    /// Time spent inside kernel execution.
    pub busy: Duration,
    /// Time blocked popping an empty input queue (starvation).
    pub blocked_pop: Duration,
    /// Time blocked pushing a full output queue (back-pressure).
    pub blocked_push: Duration,
    /// Number of queue-occupancy samples taken.
    pub queue_samples: u64,
    /// Sum of sampled queue depths (mean = sum / samples).
    pub queue_depth_sum: u64,
}

impl DispatcherCounters {
    /// Fresh, all-zero counters.
    pub fn new() -> DispatcherCounters {
        DispatcherCounters::default()
    }

    /// Records one executed task and its kernel time.
    pub fn record_task(&mut self, busy: Duration) {
        self.tasks += 1;
        self.busy += busy;
    }

    /// Records time spent starved on an input queue.
    pub fn record_blocked_pop(&mut self, d: Duration) {
        self.blocked_pop += d;
    }

    /// Records time spent back-pressured on an output queue.
    pub fn record_blocked_push(&mut self, d: Duration) {
        self.blocked_push += d;
    }

    /// Records one queue-occupancy observation.
    pub fn sample_queue_depth(&mut self, depth: usize) {
        self.queue_samples += 1;
        self.queue_depth_sum += depth as u64;
    }

    /// Folds another dispatcher's counters into this one.
    pub fn merge(&mut self, other: &DispatcherCounters) {
        self.tasks += other.tasks;
        self.busy += other.busy;
        self.blocked_pop += other.blocked_pop;
        self.blocked_push += other.blocked_push;
        self.queue_samples += other.queue_samples;
        self.queue_depth_sum += other.queue_depth_sum;
    }

    /// Mean sampled queue depth (0 when nothing was sampled).
    pub fn mean_queue_depth(&self) -> f64 {
        if self.queue_samples == 0 {
            0.0
        } else {
            self.queue_depth_sum as f64 / self.queue_samples as f64
        }
    }

    /// Serializable snapshot labelled with the dispatcher's name.
    pub fn stats(&self, label: impl Into<String>) -> DispatcherStats {
        DispatcherStats {
            label: label.into(),
            tasks: self.tasks,
            busy_us: self.busy.as_secs_f64() * 1e6,
            blocked_pop_us: self.blocked_pop.as_secs_f64() * 1e6,
            blocked_push_us: self.blocked_push.as_secs_f64() * 1e6,
            queue_samples: self.queue_samples,
            mean_queue_depth: self.mean_queue_depth(),
        }
    }
}

/// Serializable per-dispatcher summary (all times in µs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DispatcherStats {
    /// Dispatcher name (e.g. `"chunk0"`).
    pub label: String,
    /// Tasks executed.
    pub tasks: u64,
    /// Kernel-execution time.
    pub busy_us: f64,
    /// Input-starvation time.
    pub blocked_pop_us: f64,
    /// Output back-pressure time.
    pub blocked_push_us: f64,
    /// Queue-occupancy samples taken.
    pub queue_samples: u64,
    /// Mean sampled queue depth.
    pub mean_queue_depth: f64,
}

/// One completed execution span on a track (a chunk/dispatcher).
///
/// The unified timeline unit: host dispatchers record one span per
/// (chunk, task); the simulator additionally tags the stage index within
/// the chunk.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// Track index (chunk / dispatcher, pipeline order).
    pub track: u32,
    /// Task sequence number.
    pub task: u64,
    /// Stage index within the chunk, when per-stage resolution is
    /// available (the simulator); `None` for whole-chunk host spans.
    #[serde(default)]
    pub stage: Option<u32>,
    /// Start offset in µs from the run epoch.
    pub start_us: f64,
    /// End offset in µs from the run epoch.
    pub end_us: f64,
}

impl Span {
    /// Span length in µs.
    pub fn duration_us(&self) -> f64 {
        (self.end_us - self.start_us).max(0.0)
    }
}

/// Collects [`Span`]s from either time domain.
///
/// When disabled every record call is a single branch; nothing allocates.
#[derive(Debug, Clone)]
pub struct SpanRecorder {
    enabled: bool,
    epoch: Instant,
    spans: Vec<Span>,
}

impl SpanRecorder {
    /// A recorder anchored at `epoch` (host runs pass the common run-start
    /// instant so all dispatchers share one time base).
    pub fn new(enabled: bool, epoch: Instant) -> SpanRecorder {
        SpanRecorder {
            enabled,
            epoch,
            spans: Vec::new(),
        }
    }

    /// A recorder for virtual-time (simulator) spans; the epoch is unused.
    pub fn virtual_time(enabled: bool) -> SpanRecorder {
        SpanRecorder::new(enabled, Instant::now())
    }

    /// Whether spans are being kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one wall-clock span against the epoch.
    pub fn record(&mut self, track: u32, task: u64, stage: Option<u32>, t0: Instant, t1: Instant) {
        if !self.enabled {
            return;
        }
        self.spans.push(Span {
            track,
            task,
            stage,
            start_us: t0.saturating_duration_since(self.epoch).as_secs_f64() * 1e6,
            end_us: t1.saturating_duration_since(self.epoch).as_secs_f64() * 1e6,
        });
    }

    /// Records one virtual-time span (already in µs).
    pub fn record_virtual(
        &mut self,
        track: u32,
        task: u64,
        stage: Option<u32>,
        start_us: f64,
        end_us: f64,
    ) {
        if !self.enabled {
            return;
        }
        self.spans.push(Span {
            track,
            task,
            stage,
            start_us,
            end_us,
        });
    }

    /// Consumes the recorder, yielding its spans.
    pub fn into_spans(self) -> Vec<Span> {
        self.spans
    }
}

/// Complete telemetry of one pipeline run (host or simulated).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunTelemetry {
    /// Which executor produced this (`"host"` or `"des"`).
    pub source: String,
    /// Per-dispatcher counter summaries, pipeline order.
    pub dispatchers: Vec<DispatcherStats>,
    /// Recorded execution spans (empty unless span recording was on).
    pub spans: Vec<Span>,
}

impl RunTelemetry {
    /// An empty telemetry record for `source`.
    pub fn new(source: impl Into<String>) -> RunTelemetry {
        RunTelemetry {
            source: source.into(),
            dispatchers: Vec::new(),
            spans: Vec::new(),
        }
    }

    /// Serializes to the Chrome `trace_event` JSON object format
    /// (`{"traceEvents": [...]}`), loadable in `chrome://tracing` and
    /// Perfetto. Each span becomes a complete (`"ph": "X"`) event on the
    /// thread of its track; dispatchers get `thread_name` metadata.
    pub fn chrome_trace_json(&self) -> String {
        let mut events: Vec<Value> = Vec::new();
        for (i, d) in self.dispatchers.iter().enumerate() {
            events.push(Value::Object(vec![
                ("name".into(), Value::Str("thread_name".into())),
                ("ph".into(), Value::Str("M".into())),
                ("pid".into(), Value::U64(1)),
                ("tid".into(), Value::U64(i as u64)),
                (
                    "args".into(),
                    Value::Object(vec![("name".into(), Value::Str(d.label.clone()))]),
                ),
            ]));
        }
        for s in &self.spans {
            let name = match s.stage {
                Some(stage) => format!("task {} / stage {}", s.task, stage),
                None => format!("task {}", s.task),
            };
            let mut args = vec![("task".into(), Value::U64(s.task))];
            if let Some(stage) = s.stage {
                args.push(("stage".into(), Value::U64(u64::from(stage))));
            }
            events.push(Value::Object(vec![
                ("name".into(), Value::Str(name)),
                ("cat".into(), Value::Str(self.source.clone())),
                ("ph".into(), Value::Str("X".into())),
                ("ts".into(), Value::F64(s.start_us)),
                ("dur".into(), Value::F64(s.duration_us())),
                ("pid".into(), Value::U64(1)),
                ("tid".into(), Value::U64(u64::from(s.track))),
                ("args".into(), Value::Object(args)),
            ]));
        }
        let root = Value::Object(vec![
            ("traceEvents".into(), Value::Array(events)),
            ("displayTimeUnit".into(), Value::Str("ms".into())),
        ]);
        serde_json::to_string(&root).expect("trace values serialize")
    }

    /// Serializes to compact JSONL: one `{"type": ...}`-tagged object per
    /// line — a `run` header, one `dispatcher` line per dispatcher, one
    /// `span` line per span.
    pub fn metrics_jsonl(&self) -> String {
        let mut out = String::new();
        let header = Value::Object(vec![
            ("type".into(), Value::Str("run".into())),
            ("source".into(), Value::Str(self.source.clone())),
            (
                "dispatchers".into(),
                Value::U64(self.dispatchers.len() as u64),
            ),
            ("spans".into(), Value::U64(self.spans.len() as u64)),
        ]);
        out.push_str(&serde_json::to_string(&header).expect("header serializes"));
        out.push('\n');
        for d in &self.dispatchers {
            push_tagged_line(&mut out, "dispatcher", d);
        }
        for s in &self.spans {
            push_tagged_line(&mut out, "span", s);
        }
        out
    }
}

fn push_tagged_line<T: Serialize>(out: &mut String, tag: &str, value: &T) {
    let mut line = serde_json::to_value(value).expect("telemetry values serialize");
    if let Value::Object(fields) = &mut line {
        fields.insert(0, ("type".into(), Value::Str(tag.into())));
    }
    out.push_str(&serde_json::to_string(&line).expect("telemetry values serialize"));
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_default_is_off() {
        let cfg = TelemetryConfig::default();
        assert_eq!(cfg, TelemetryConfig::OFF);
        assert!(!cfg.any());
        assert!(TelemetryConfig::full().any());
        assert!(TelemetryConfig::counters_only().counters);
        assert!(!TelemetryConfig::counters_only().spans);
    }

    #[test]
    fn counters_accumulate_and_merge() {
        let mut a = DispatcherCounters::new();
        a.record_task(Duration::from_micros(100));
        a.record_task(Duration::from_micros(50));
        a.record_blocked_pop(Duration::from_micros(10));
        a.sample_queue_depth(3);
        a.sample_queue_depth(1);
        let mut b = DispatcherCounters::new();
        b.record_task(Duration::from_micros(25));
        b.record_blocked_push(Duration::from_micros(5));
        b.sample_queue_depth(2);
        a.merge(&b);
        assert_eq!(a.tasks, 3);
        assert_eq!(a.busy, Duration::from_micros(175));
        assert_eq!(a.blocked_pop, Duration::from_micros(10));
        assert_eq!(a.blocked_push, Duration::from_micros(5));
        assert_eq!(a.queue_samples, 3);
        assert!((a.mean_queue_depth() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn disabled_recorder_keeps_nothing() {
        let mut r = SpanRecorder::virtual_time(false);
        r.record_virtual(0, 1, None, 0.0, 10.0);
        assert!(!r.is_enabled());
        assert!(r.into_spans().is_empty());
    }

    #[test]
    fn wall_clock_spans_are_epoch_relative() {
        let epoch = Instant::now();
        let t0 = epoch + Duration::from_micros(100);
        let t1 = epoch + Duration::from_micros(250);
        let mut r = SpanRecorder::new(true, epoch);
        r.record(2, 7, None, t0, t1);
        let spans = r.into_spans();
        assert_eq!(spans.len(), 1);
        assert!((spans[0].start_us - 100.0).abs() < 1.0);
        assert!((spans[0].end_us - 250.0).abs() < 1.0);
        assert_eq!(spans[0].track, 2);
        assert_eq!(spans[0].task, 7);
        assert!((spans[0].duration_us() - 150.0).abs() < 2.0);
    }

    fn sample_telemetry() -> RunTelemetry {
        let mut counters = DispatcherCounters::new();
        counters.record_task(Duration::from_micros(42));
        counters.sample_queue_depth(1);
        let mut r = SpanRecorder::virtual_time(true);
        r.record_virtual(0, 0, Some(1), 0.0, 42.0);
        r.record_virtual(1, 0, None, 42.0, 50.0);
        RunTelemetry {
            source: "des".into(),
            dispatchers: vec![counters.stats("chunk0")],
            spans: r.into_spans(),
        }
    }

    #[test]
    fn chrome_trace_is_valid_json_with_complete_events() {
        let trace = sample_telemetry().chrome_trace_json();
        let v: Value = serde_json::from_str(&trace).expect("valid JSON");
        let events = v
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("traceEvents array");
        // 1 thread_name metadata + 2 spans.
        assert_eq!(events.len(), 3);
        let complete: Vec<&Value> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .collect();
        assert_eq!(complete.len(), 2);
        for e in complete {
            assert!(e.get("ts").is_some() && e.get("dur").is_some());
            assert!(e.get("tid").is_some());
        }
    }

    #[test]
    fn jsonl_lines_each_parse_and_are_tagged() {
        let jsonl = sample_telemetry().metrics_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 4, "run + 1 dispatcher + 2 spans");
        let tags: Vec<String> = lines
            .iter()
            .map(|l| {
                let v: Value = serde_json::from_str(l).expect("each line is JSON");
                v.get("type")
                    .and_then(Value::as_str)
                    .expect("tagged")
                    .to_string()
            })
            .collect();
        assert_eq!(tags, ["run", "dispatcher", "span", "span"]);
    }

    #[test]
    fn telemetry_round_trips_through_serde() {
        let t = sample_telemetry();
        let json = serde_json::to_string(&t).expect("serializes");
        let back: RunTelemetry = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back, t);
    }
}
