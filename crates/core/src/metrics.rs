//! Statistics used throughout the evaluation: Pearson correlation (Fig. 6),
//! geometric-mean speedups (Fig. 4), and speedup ratios.

/// Pearson correlation coefficient between two equal-length samples.
///
/// Returns `None` if the samples are shorter than 2 or either has zero
/// variance (correlation undefined).
///
/// ```
/// use bt_core::metrics::pearson;
/// let r = pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]).unwrap();
/// assert!((r - 1.0).abs() < 1e-12);
/// ```
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Geometric mean of positive values; `None` on empty input or any
/// non-positive value.
pub fn geomean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

/// Speedup of `ours` over `baseline` (`baseline / ours`, > 1 means faster).
///
/// # Panics
///
/// Panics if `ours` is not positive.
pub fn speedup(baseline: f64, ours: f64) -> f64 {
    assert!(ours > 0.0, "latency must be positive");
    baseline / ours
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive_and_negative_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let up: Vec<f64> = xs.iter().map(|x| 3.0 * x + 1.0).collect();
        let down: Vec<f64> = xs.iter().map(|x| -2.0 * x).collect();
        assert!((pearson(&xs, &up).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &down).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn uncorrelated_is_near_zero() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [1.0, -1.0, 1.0, -1.0];
        assert!(pearson(&xs, &ys).unwrap().abs() < 0.5);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert_eq!(pearson(&[1.0], &[2.0]), None);
        assert_eq!(pearson(&[1.0, 2.0], &[3.0]), None);
        assert_eq!(pearson(&[1.0, 1.0], &[1.0, 2.0]), None, "zero variance");
    }

    #[test]
    fn geomean_of_known_values() {
        assert!((geomean(&[1.0, 4.0]).unwrap() - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]).unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), None);
        assert_eq!(geomean(&[1.0, 0.0]), None);
    }

    #[test]
    fn speedup_ratio() {
        assert_eq!(speedup(10.0, 5.0), 2.0);
        assert_eq!(speedup(5.0, 10.0), 0.5);
    }
}
