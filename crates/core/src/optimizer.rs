//! BT-Optimizer (§3.3 of the paper): the three-level schedule optimizer.
//!
//! 1. **Utilization** — minimize gapness (`T_max − T_min`) so candidate
//!    schedules keep every PU busy, matching the conditions the
//!    interference-aware profiles were collected under.
//! 2. **Latency** — generate a set of 𝒦 diverse candidates (blocking
//!    previously found solutions, constraint C5), filter out schedules
//!    that underutilize the device, and sort by predicted latency `T_max`.
//! 3. **Autotuning** — execute the top candidates for real (here: in the
//!    discrete-event simulator) and pick the measured best.
//!
//! Two interchangeable engines implement levels 1–2: the exact enumerator
//! (fast path — the contiguous-partition space is small) and the SAT
//! encoding (the z3-faithful path); they are property-tested to agree.

use bt_kernels::TaskGraph;
use bt_pipeline::{DagSchedule, Schedule};
use bt_profiler::ProfilingTable;
use bt_soc::{Micros, PuClass, SocSpec};
use bt_solver::enumerate::{evaluate, for_each_schedule, ScheduleEval};
use bt_solver::{DagProblem, ScheduleProblem, StageDag};

use serde::{Deserialize, Serialize};

use crate::backend::ExecutionBackend;
use crate::BtError;

/// Which optimization engine produces the candidate set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolverEngine {
    /// Exact enumeration of the contiguous-partition space (fast path).
    Exact,
    /// The DPLL/SAT encoding with blocking clauses (z3-faithful path).
    Sat,
}

/// How levels 1–2 combine utilization and latency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Objective {
    /// Keep schedules with `T_min ≥ threshold × T_max`, then sort by
    /// predicted latency — a single-pass formulation of the paper's
    /// filter-then-rank behaviour (the default).
    UtilizationFilter {
        /// The θ in `T_min ≥ θ·T_max`; 0 disables the filter (the
        /// "latency-only" comparison model of Fig. 5b).
        threshold: f64,
    },
    /// The paper's literal two-level split: first minimize gapness
    /// (objective O1) to find `g*`, then rank by latency among schedules
    /// with `gapness ≤ g* · (1 + slack)`.
    GapnessFirst {
        /// Relative slack above the gapness optimum admitted into the
        /// candidate pool.
        slack: f64,
    },
}

/// Configuration of levels 1–2.
#[derive(Debug, Clone)]
pub struct OptimizerConfig {
    /// Number of diverse candidates to produce (the paper uses 𝒦 = 20).
    pub candidates: usize,
    /// Utilization/latency trade-off.
    pub objective: Objective,
    /// Candidate-generation engine.
    pub engine: SolverEngine,
    /// Optional cap on chunks (dispatcher threads) per schedule.
    pub max_chunks: Option<usize>,
}

impl OptimizerConfig {
    /// Convenience constructor for the common filter-based objective.
    pub fn with_threshold(threshold: f64) -> OptimizerConfig {
        OptimizerConfig {
            objective: Objective::UtilizationFilter { threshold },
            ..OptimizerConfig::default()
        }
    }
}

impl Default for OptimizerConfig {
    fn default() -> OptimizerConfig {
        OptimizerConfig {
            candidates: 20,
            objective: Objective::UtilizationFilter { threshold: 0.45 },
            engine: SolverEngine::Exact,
            max_chunks: None,
        }
    }
}

/// One candidate schedule with its model predictions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Candidate {
    /// The stage → PU mapping.
    pub schedule: Schedule,
    /// Predicted pipeline latency (`T_max`, the bottleneck chunk).
    pub predicted: Micros,
    /// Predicted gapness (`T_max − T_min`).
    pub gapness: Micros,
    /// Predicted per-chunk runtimes.
    pub chunk_sums: Vec<Micros>,
}

/// Builds the solver instance for a device/table pair: the latency matrix
/// restricted to classes present in the table, with unschedulable classes
/// (e.g. unpinnable clusters) disallowed.
pub fn build_problem(soc: &SocSpec, table: &ProfilingTable) -> Result<ScheduleProblem, BtError> {
    build_problem_with(soc, table, None)
}

/// [`build_problem`] with an optional chunk cap.
pub fn build_problem_with(
    soc: &SocSpec,
    table: &ProfilingTable,
    max_chunks: Option<usize>,
) -> Result<ScheduleProblem, BtError> {
    build_problem_masked(
        table,
        |c| soc.pu(c).map(|p| p.schedulable()).unwrap_or(false),
        max_chunks,
    )
}

/// Builds the solver instance from a table and an arbitrary class-
/// admission predicate — the backend-neutral core of [`build_problem`].
pub fn build_problem_masked(
    table: &ProfilingTable,
    schedulable: impl Fn(PuClass) -> bool,
    max_chunks: Option<usize>,
) -> Result<ScheduleProblem, BtError> {
    let allowed: Vec<bool> = table.classes().iter().map(|&c| schedulable(c)).collect();
    let mut problem = ScheduleProblem::new(table.to_matrix())?.with_allowed(allowed)?;
    if let Some(k) = max_chunks {
        problem = problem.with_max_chunks(k);
    }
    Ok(problem)
}

fn to_candidate(
    table: &ProfilingTable,
    assignment: &[usize],
    problem: &ScheduleProblem,
) -> Candidate {
    let eval = evaluate(problem, assignment);
    let schedule = Schedule::from_class_indices(assignment, table.classes())
        .expect("solver output satisfies contiguity");
    Candidate {
        schedule,
        predicted: Micros::new(eval.t_max),
        gapness: Micros::new(eval.gapness()),
        chunk_sums: eval.chunk_sums.iter().map(|&s| Micros::new(s)).collect(),
    }
}

/// The admission predicate a candidate must pass, derived from the
/// objective. For [`Objective::GapnessFirst`] the budget comes from the
/// gapness optimum `g_star`.
fn admits(objective: Objective, g_star: f64, t_max: f64, t_min: f64) -> bool {
    match objective {
        Objective::UtilizationFilter { threshold } => {
            threshold <= 0.0 || t_min >= threshold * t_max
        }
        Objective::GapnessFirst { slack } => (t_max - t_min) <= g_star * (1.0 + slack) + 1e-9,
    }
}

/// Levels 1–2: produce up to `cfg.candidates` schedules, utilization-
/// filtered and sorted by predicted latency.
///
/// # Errors
///
/// Returns [`BtError`] if the table cannot form a valid problem or no
/// schedule survives the filter.
pub fn optimize(
    soc: &SocSpec,
    table: &ProfilingTable,
    cfg: &OptimizerConfig,
) -> Result<Vec<Candidate>, BtError> {
    optimize_with(table, cfg, |c| {
        soc.pu(c).map(|p| p.schedulable()).unwrap_or(false)
    })
}

/// [`optimize`] against an arbitrary class-admission predicate instead of
/// a device model — the form the generic framework drives, letting any
/// [`ExecutionBackend`] supply its own schedulability mask.
///
/// # Errors
///
/// Returns [`BtError`] if the table cannot form a valid problem or no
/// schedule survives the filter.
pub fn optimize_with(
    table: &ProfilingTable,
    cfg: &OptimizerConfig,
    schedulable: impl Fn(PuClass) -> bool,
) -> Result<Vec<Candidate>, BtError> {
    let problem = build_problem_masked(table, schedulable, cfg.max_chunks)?;
    let candidates = match cfg.engine {
        SolverEngine::Exact => {
            // The Fig. 2 loop re-enters this path on every run, so the
            // space is streamed rather than materialized: one pass for
            // the gapness optimum g* when the objective needs it, one
            // pass keeping a bounded top-𝒦 ordered by
            // (T_max, gapness, assignment) — the same total order the
            // old collect-sort-truncate produced, without the ~|space|
            // allocations and full sort behind it.
            let g_star = match cfg.objective {
                Objective::GapnessFirst { .. } => {
                    let mut best = f64::INFINITY;
                    for_each_schedule(&problem, |_, sums| {
                        let t_max = sums.iter().cloned().fold(f64::MIN, f64::max);
                        let t_min = sums.iter().cloned().fold(f64::MAX, f64::min);
                        best = best.min(t_max - t_min);
                    });
                    if best.is_infinite() {
                        return Err(BtError::NoCandidates);
                    }
                    best
                }
                Objective::UtilizationFilter { .. } => 0.0,
            };
            let mut top: Vec<ScheduleEval> = Vec::with_capacity(cfg.candidates + 1);
            let rank = |a: &ScheduleEval, b: &ScheduleEval| {
                a.t_max
                    .partial_cmp(&b.t_max)
                    .expect("finite latencies")
                    .then_with(|| a.gapness().partial_cmp(&b.gapness()).expect("finite"))
                    .then_with(|| a.assignment.cmp(&b.assignment))
            };
            for_each_schedule(&problem, |assignment, sums| {
                let t_max = sums.iter().cloned().fold(f64::MIN, f64::max);
                let t_min = sums.iter().cloned().fold(f64::MAX, f64::min);
                if !admits(cfg.objective, g_star, t_max, t_min) {
                    return;
                }
                let full = top.len() == cfg.candidates;
                // Cheap pre-test against the current worst before paying
                // for the ScheduleEval materialization. (Equal T_max must
                // still be inserted — tie-breaks may rank it earlier.)
                if full {
                    match top.last() {
                        Some(worst) if t_max <= worst.t_max => {}
                        _ => return, // beaten, or 𝒦 = 0
                    }
                }
                let eval = ScheduleEval {
                    assignment: assignment.to_vec(),
                    chunk_sums: sums.to_vec(),
                    t_max,
                    t_min,
                };
                let at = top
                    .binary_search_by(|e| rank(e, &eval))
                    .unwrap_or_else(|i| i);
                if full && at == top.len() {
                    return;
                }
                top.insert(at, eval);
                top.truncate(cfg.candidates);
            });
            top.iter()
                .map(|e| to_candidate(table, &e.assignment, &problem))
                .collect::<Vec<_>>()
        }
        SolverEngine::Sat => {
            // Level 1 for the gapness-first objective: the optimum g*.
            let g_star = match cfg.objective {
                Objective::GapnessFirst { .. } => bt_solver::enumerate::min_gapness_exact(&problem)
                    .map(|e| e.gapness())
                    .ok_or(BtError::NoCandidates)?,
                Objective::UtilizationFilter { .. } => 0.0,
            };
            let mut found = Vec::new();
            // Generate by ascending T_max; keep only filtered survivors.
            // The incremental enumerator keeps one solver alive across the
            // blocking-clause rounds instead of re-encoding the problem
            // per candidate (see [`bt_solver::LatencyEnumerator`]).
            let mut enumerator = problem.latency_enumerator();
            let budget = cfg.candidates * 12;
            let mut enumerated = 0usize;
            while found.len() < cfg.candidates && enumerated < budget {
                match enumerator.next_candidate() {
                    Some((_, assignment)) => {
                        enumerated += 1;
                        let eval = evaluate(&problem, &assignment);
                        if admits(cfg.objective, g_star, eval.t_max, eval.t_min) {
                            found.push(to_candidate(table, &assignment, &problem));
                        }
                    }
                    None => break,
                }
            }
            found
        }
    };
    if candidates.is_empty() {
        return Err(BtError::NoCandidates);
    }
    Ok(candidates)
}

/// The gapness optimum of level 1 (objective O1), for reporting.
pub fn min_gapness(soc: &SocSpec, table: &ProfilingTable) -> Result<Micros, BtError> {
    let problem = build_problem(soc, table)?;
    bt_solver::enumerate::min_gapness_exact(&problem)
        .map(|e| Micros::new(e.gapness()))
        .ok_or(BtError::NoCandidates)
}

/// One candidate's level-3 measurement, tagged with the index of the
/// candidate it belongs to so the pairing survives reordering and
/// serialization round-trips (nothing downstream has to assume the
/// measurement vector is parallel to the candidate vector).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CandidateMeasurement {
    /// Index into the candidate slice passed to [`autotune`].
    pub candidate_index: usize,
    /// Measured per-task latency of that candidate.
    pub latency: Micros,
    /// Telemetry from the measurement run (`None` unless the backend's
    /// [`bt_soc::RunConfig::telemetry`] enabled collection — the same
    /// field on both the simulator and the host).
    #[serde(default)]
    pub telemetry: Option<bt_telemetry::RunTelemetry>,
}

/// Level 3 result: measured latencies for every candidate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AutotuneOutcome {
    /// Per-candidate measurements, each tagged with its candidate index.
    pub measured: Vec<CandidateMeasurement>,
    /// Candidate index of the measured-best candidate.
    pub best_index: usize,
    /// Total virtual time spent evaluating candidates (the paper reports
    /// ≈200 s per device/application for 𝒦 = 20 at 10 s each).
    pub evaluation_cost: Micros,
}

impl AutotuneOutcome {
    /// Resolves a candidate index to its measurement. [`autotune`] pushes
    /// measurements in candidate order, so position `i` normally carries
    /// tag `i` and the lookup is a direct index; the tagged-index contract
    /// still governs — a reordered or partially persisted vector falls
    /// back to a scan of the tags.
    fn lookup(&self, candidate_index: usize) -> Option<&CandidateMeasurement> {
        match self.measured.get(candidate_index) {
            Some(m) if m.candidate_index == candidate_index => Some(m),
            _ => self
                .measured
                .iter()
                .find(|m| m.candidate_index == candidate_index),
        }
    }

    /// The measured latency of candidate `candidate_index`, if it was
    /// evaluated.
    pub fn measured_latency(&self, candidate_index: usize) -> Option<Micros> {
        self.lookup(candidate_index).map(|m| m.latency)
    }

    /// The measurement of the measured-best candidate.
    pub fn best(&self) -> Option<&CandidateMeasurement> {
        self.lookup(self.best_index)
    }
}

/// Level 3: execute every candidate on the backend and pick the measured
/// best (the paper runs each for a fixed interval on the device).
///
/// Telemetry enabled in the backend's run configuration is collected
/// independently for every candidate run and attached to its
/// [`CandidateMeasurement`].
///
/// When the backend's
/// [`parallel_measure_hint`](ExecutionBackend::parallel_measure_hint) is
/// set, candidate runs fan out over scoped worker threads; each run keeps
/// its serial `run_index` (so simulator seeds are unchanged) and results
/// merge in candidate order, making the outcome byte-identical to the
/// serial sweep.
///
/// # Errors
///
/// Propagates backend measurement errors.
pub fn autotune<B: ExecutionBackend>(
    backend: &B,
    candidates: &[Candidate],
) -> Result<AutotuneOutcome, BtError> {
    if candidates.is_empty() {
        return Err(BtError::NoCandidates);
    }
    let runs = crate::parallel::fan_out(candidates.len(), backend.parallel_measure_hint(), |i| {
        backend.measure(&candidates[i].schedule, i as u64)
    })?;
    let mut measured = Vec::with_capacity(candidates.len());
    let mut cost = Micros::ZERO;
    for (i, m) in runs.into_iter().enumerate() {
        cost += m.makespan;
        measured.push(CandidateMeasurement {
            candidate_index: i,
            latency: m.latency,
            telemetry: m.telemetry,
        });
    }
    debug_assert!(
        measured
            .iter()
            .enumerate()
            .all(|(i, m)| m.candidate_index == i),
        "autotune emits measurements in candidate order"
    );
    let best_index = measured
        .iter()
        .min_by(|a, b| {
            a.latency
                .partial_cmp(&b.latency)
                .expect("latencies are finite")
        })
        .map(|m| m.candidate_index)
        .expect("non-empty");
    Ok(AutotuneOutcome {
        measured,
        best_index,
        evaluation_cost: cost,
    })
}

/// One fork/join candidate schedule with its model predictions — the DAG
/// counterpart of [`Candidate`]. The schedule itself records whether a
/// stage is replicated.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DagCandidate {
    /// The validated stage → PU mapping over the task graph.
    pub schedule: DagSchedule,
    /// Predicted pipeline latency (`T_max`, the bottleneck chunk; replica
    /// chunks priced at half service).
    pub predicted: Micros,
    /// Predicted gapness (`T_max − T_min`).
    pub gapness: Micros,
    /// Predicted per-chunk runtimes, in the schedule's chunk order.
    pub chunk_sums: Vec<Micros>,
}

/// Builds the DAG solver instance for a device/table/graph triple: the
/// latency matrix restricted to schedulable classes, plus the stage
/// dependency structure.
///
/// # Errors
///
/// Returns [`BtError`] if the table or graph cannot form a valid problem.
pub fn build_dag_problem(
    soc: &SocSpec,
    table: &ProfilingTable,
    graph: &TaskGraph,
) -> Result<DagProblem, BtError> {
    let dag = StageDag::new(graph.len(), graph.deps().to_vec())?;
    let allowed: Vec<bool> = table
        .classes()
        .iter()
        .map(|&c| soc.pu(c).map(|p| p.schedulable()).unwrap_or(false))
        .collect();
    Ok(DagProblem::new(table.to_matrix(), dag)?.with_allowed(allowed)?)
}

fn to_dag_candidate(
    table: &ProfilingTable,
    graph: &TaskGraph,
    problem: &DagProblem,
    assignment: &[usize],
) -> Option<DagCandidate> {
    let eval = problem.evaluate(assignment);
    let classes: Vec<PuClass> = assignment.iter().map(|&i| table.classes()[i]).collect();
    // Solver validity (path-convexity + quotient acyclicity) is necessary
    // but the executable form additionally requires single-entry/exit
    // token routing; assignments that fail it are skipped, not fatal.
    let schedule = DagSchedule::new(classes, graph).ok()?;
    Some(DagCandidate {
        schedule,
        predicted: Micros::new(eval.t_max),
        gapness: Micros::new(eval.gapness()),
        chunk_sums: eval.chunk_sums.iter().map(|&s| Micros::new(s)).collect(),
    })
}

/// Levels 1–2 over a fork/join application: produce up to
/// `cfg.candidates` DAG schedules, objective-filtered and sorted by
/// predicted latency — the generalization of [`optimize`] from contiguity
/// (C2) to per-path convexity, with parallel branches free to occupy
/// disjoint PUs.
///
/// Chain-shaped graphs reproduce [`optimize`]'s space exactly (the
/// property tests pin the solver-level equivalence).
///
/// # Errors
///
/// Returns [`BtError`] if the problem cannot be built or no schedule
/// survives the filter.
pub fn optimize_dag(
    soc: &SocSpec,
    table: &ProfilingTable,
    graph: &TaskGraph,
    cfg: &OptimizerConfig,
) -> Result<Vec<DagCandidate>, BtError> {
    let mut problem = build_dag_problem(soc, table, graph)?;
    if let Some(k) = cfg.max_chunks {
        problem = problem.with_max_chunks(k);
    }
    let g_star = match cfg.objective {
        Objective::GapnessFirst { .. } => {
            let mut best = f64::INFINITY;
            problem.for_each_valid(|a| {
                let e = problem.evaluate(a);
                best = best.min(e.gapness());
            });
            if best.is_infinite() {
                return Err(BtError::NoCandidates);
            }
            best
        }
        Objective::UtilizationFilter { .. } => 0.0,
    };
    let candidates = match cfg.engine {
        SolverEngine::Exact => {
            let mut evals: Vec<bt_solver::DagEval> = Vec::new();
            problem.for_each_valid(|a| {
                let e = problem.evaluate(a);
                if admits(cfg.objective, g_star, e.t_max, e.t_min) {
                    evals.push(e);
                }
            });
            evals.sort_by(|a, b| {
                a.t_max
                    .partial_cmp(&b.t_max)
                    .expect("finite latencies")
                    .then_with(|| a.gapness().partial_cmp(&b.gapness()).expect("finite"))
                    .then_with(|| a.assignment.cmp(&b.assignment))
            });
            evals
                .iter()
                .filter_map(|e| to_dag_candidate(table, graph, &problem, &e.assignment))
                .take(cfg.candidates)
                .collect::<Vec<_>>()
        }
        SolverEngine::Sat => {
            // CEGAR generation by ascending T_max; keep filtered survivors.
            let budget = cfg.candidates * 12;
            problem
                .latency_candidates(budget)
                .into_iter()
                .filter_map(|(_, a)| {
                    let e = problem.evaluate(&a);
                    admits(cfg.objective, g_star, e.t_max, e.t_min)
                        .then(|| to_dag_candidate(table, graph, &problem, &a))
                        .flatten()
                })
                .take(cfg.candidates)
                .collect()
        }
    };
    if candidates.is_empty() {
        return Err(BtError::NoCandidates);
    }
    Ok(candidates)
}

/// Searches for the best *replication* of `stage`: the stage runs on both
/// classes of an exclusive pair (each replica serving alternate tasks at
/// half steady-state demand) while the remaining stages are assigned
/// optimally around it. Returns the bottleneck-minimizing plan as an
/// executable [`DagCandidate`].
///
/// # Errors
///
/// Returns [`BtError::NoCandidates`] when no exclusive pair leaves enough
/// classes for the remaining stages, or the best solver plan cannot be
/// realized as an executable schedule.
pub fn optimize_replicated(
    soc: &SocSpec,
    table: &ProfilingTable,
    graph: &TaskGraph,
    stage: usize,
) -> Result<DagCandidate, BtError> {
    let problem = build_dag_problem(soc, table, graph)?;
    let plan = problem
        .best_replication(stage)
        .ok_or(BtError::NoCandidates)?;
    let eval = problem.evaluate_replicated(&plan);
    let palette = table.classes();
    let (c1, c2) = plan.classes;
    let classes: Vec<PuClass> = plan
        .assignment
        .iter()
        .enumerate()
        .map(|(s, &i)| if s == stage { palette[c1] } else { palette[i] })
        .collect();
    let schedule = DagSchedule::replicated(classes, graph, stage, (palette[c1], palette[c2]))?;
    Ok(DagCandidate {
        schedule,
        predicted: Micros::new(eval.t_max),
        gapness: Micros::new(eval.gapness()),
        chunk_sums: eval.chunk_sums.iter().map(|&s| Micros::new(s)).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SimBackend;
    use bt_kernels::{apps, AppModel};
    use bt_profiler::{profile, ProfileMode, ProfilerConfig};
    use bt_soc::devices;
    use bt_soc::RunConfig;

    fn setup() -> (SocSpec, AppModel, ProfilingTable) {
        let soc = devices::pixel_7a();
        let app = apps::octree_app(apps::OctreeConfig::default()).model();
        let table = profile(
            &soc,
            &app,
            ProfileMode::InterferenceHeavy,
            &ProfilerConfig::default(),
        );
        (soc, app, table)
    }

    #[test]
    fn candidates_are_sorted_distinct_and_valid() {
        let (soc, _, table) = setup();
        let cands = optimize(&soc, &table, &OptimizerConfig::default()).unwrap();
        assert!(!cands.is_empty() && cands.len() <= 20);
        for w in cands.windows(2) {
            assert!(w[0].predicted <= w[1].predicted, "sorted by T_max");
            assert_ne!(w[0].schedule, w[1].schedule, "distinct");
        }
        for c in &cands {
            let max = c.chunk_sums.iter().copied().reduce(Micros::max).unwrap();
            assert_eq!(max.as_f64(), c.predicted.as_f64());
        }
    }

    #[test]
    fn exact_and_sat_engines_agree_on_optimum() {
        let (soc, _, table) = setup();
        let exact = optimize(
            &soc,
            &table,
            &OptimizerConfig {
                engine: SolverEngine::Exact,
                candidates: 5,
                ..OptimizerConfig::with_threshold(0.0)
            },
        )
        .unwrap();
        let sat = optimize(
            &soc,
            &table,
            &OptimizerConfig {
                engine: SolverEngine::Sat,
                candidates: 5,
                ..OptimizerConfig::with_threshold(0.0)
            },
        )
        .unwrap();
        assert!(
            (exact[0].predicted.as_f64() - sat[0].predicted.as_f64()).abs() < 1e-6,
            "optimal T_max must agree: {} vs {}",
            exact[0].predicted,
            sat[0].predicted
        );
    }

    #[test]
    fn utilization_filter_prunes_unbalanced_schedules() {
        let (soc, _, table) = setup();
        let filtered = optimize(&soc, &table, &OptimizerConfig::with_threshold(0.5)).unwrap();
        for c in &filtered {
            let min = c.chunk_sums.iter().copied().reduce(Micros::min).unwrap();
            assert!(
                min.as_f64() >= 0.5 * c.predicted.as_f64() - 1e-9,
                "schedule {} violates the filter",
                c.schedule
            );
        }
    }

    #[test]
    fn unschedulable_classes_excluded() {
        let soc = devices::oneplus_11();
        let app = apps::octree_app(apps::OctreeConfig::default()).model();
        let table = profile(
            &soc,
            &app,
            ProfileMode::InterferenceHeavy,
            &ProfilerConfig::default(),
        );
        let cands = optimize(&soc, &table, &OptimizerConfig::default()).unwrap();
        for c in &cands {
            assert!(
                !c.schedule
                    .classes_used()
                    .contains(&bt_soc::PuClass::LittleCpu),
                "OnePlus little cores are unpinnable"
            );
        }
    }

    #[test]
    fn autotune_finds_measured_best() {
        let (soc, app, table) = setup();
        let cands = optimize(&soc, &table, &OptimizerConfig::default()).unwrap();
        let backend = SimBackend::new(soc, app);
        let outcome = autotune(&backend, &cands).unwrap();
        assert_eq!(outcome.measured.len(), cands.len());
        for (i, m) in outcome.measured.iter().enumerate() {
            assert_eq!(m.candidate_index, i, "autotune preserves input order");
        }
        let best = outcome.best().expect("best candidate was measured").latency;
        assert!(outcome.measured.iter().all(|m| best <= m.latency));
        assert!(outcome.evaluation_cost.as_f64() > 0.0);
    }

    #[test]
    fn outcome_lookup_is_index_based_not_positional() {
        // A reordered (e.g. re-sorted or partially persisted) measurement
        // vector must still resolve candidates correctly.
        let outcome = AutotuneOutcome {
            measured: vec![
                CandidateMeasurement {
                    candidate_index: 2,
                    latency: Micros::new(30.0),
                    telemetry: None,
                },
                CandidateMeasurement {
                    candidate_index: 0,
                    latency: Micros::new(50.0),
                    telemetry: None,
                },
                CandidateMeasurement {
                    candidate_index: 1,
                    latency: Micros::new(40.0),
                    telemetry: None,
                },
            ],
            best_index: 2,
            evaluation_cost: Micros::new(120.0),
        };
        assert_eq!(outcome.measured_latency(0), Some(Micros::new(50.0)));
        assert_eq!(outcome.measured_latency(2), Some(Micros::new(30.0)));
        assert_eq!(outcome.measured_latency(9), None);
        assert_eq!(outcome.best().expect("present").latency, Micros::new(30.0));
    }

    #[test]
    fn autotune_threads_telemetry_through_candidates() {
        let (soc, app, table) = setup();
        let cands = optimize(&soc, &table, &OptimizerConfig::default()).unwrap();
        let backend = SimBackend::new(soc, app).with_run(RunConfig {
            telemetry: bt_telemetry::TelemetryConfig::counters_only(),
            ..RunConfig::default()
        });
        let outcome = autotune(&backend, &cands).unwrap();
        for m in &outcome.measured {
            let tele = m.telemetry.as_ref().expect("telemetry requested");
            assert_eq!(tele.source, "des");
            assert!(!tele.dispatchers.is_empty());
        }
    }

    #[test]
    fn gapness_first_objective_is_tightest_on_gapness() {
        let (soc, _, table) = setup();
        let gapness_first = optimize(
            &soc,
            &table,
            &OptimizerConfig {
                objective: Objective::GapnessFirst { slack: 0.25 },
                ..OptimizerConfig::default()
            },
        )
        .unwrap();
        let g_star = min_gapness(&soc, &table).unwrap();
        for c in &gapness_first {
            assert!(
                c.gapness.as_f64() <= g_star.as_f64() * 1.25 + 1e-6,
                "candidate {} gapness {} exceeds budget",
                c.schedule,
                c.gapness
            );
        }
        // Still sorted by latency within the budget.
        for w in gapness_first.windows(2) {
            assert!(w[0].predicted <= w[1].predicted);
        }
    }

    #[test]
    fn max_chunks_cap_limits_dispatcher_count() {
        let (soc, _, table) = setup();
        let capped = optimize(
            &soc,
            &table,
            &OptimizerConfig {
                max_chunks: Some(2),
                ..OptimizerConfig::with_threshold(0.0)
            },
        )
        .unwrap();
        for c in &capped {
            assert!(c.schedule.chunks().len() <= 2, "schedule {}", c.schedule);
        }
    }

    #[test]
    fn min_gapness_is_lower_bound_for_candidates() {
        let (soc, _, table) = setup();
        let g = min_gapness(&soc, &table).unwrap();
        let cands = optimize(&soc, &table, &OptimizerConfig::default()).unwrap();
        for c in &cands {
            assert!(c.gapness.as_f64() >= g.as_f64() - 1e-9);
        }
    }

    fn dag_setup() -> (SocSpec, AppModel, ProfilingTable) {
        let soc = devices::pixel_7a();
        let app = apps::perception_app(apps::PerceptionConfig::default()).model();
        let table = profile(
            &soc,
            &app,
            ProfileMode::InterferenceHeavy,
            &ProfilerConfig::default(),
        );
        (soc, app, table)
    }

    #[test]
    fn dag_candidates_are_sorted_valid_and_graph_bound() {
        let (soc, app, table) = dag_setup();
        let graph = app.task_graph();
        let cfg = OptimizerConfig {
            candidates: 10,
            ..OptimizerConfig::with_threshold(0.0)
        };
        let cands = optimize_dag(&soc, &table, &graph, &cfg).unwrap();
        assert!(!cands.is_empty() && cands.len() <= 10);
        for w in cands.windows(2) {
            assert!(w[0].predicted <= w[1].predicted, "sorted by T_max");
            assert_ne!(w[0].schedule, w[1].schedule, "distinct");
        }
        for c in &cands {
            // Every candidate validates against the application's graph.
            assert_eq!(c.schedule.stage_count(), app.stage_count());
            assert!(c.schedule.replicated_stage().is_none());
            let max = c.chunk_sums.iter().copied().reduce(Micros::max).unwrap();
            assert_eq!(max.as_f64(), c.predicted.as_f64());
        }
    }

    #[test]
    fn dag_exact_and_sat_engines_agree_on_optimum() {
        let (soc, app, table) = dag_setup();
        let graph = app.task_graph();
        let mk = |engine| OptimizerConfig {
            engine,
            candidates: 5,
            ..OptimizerConfig::with_threshold(0.0)
        };
        let exact = optimize_dag(&soc, &table, &graph, &mk(SolverEngine::Exact)).unwrap();
        let sat = optimize_dag(&soc, &table, &graph, &mk(SolverEngine::Sat)).unwrap();
        assert!(
            (exact[0].predicted.as_f64() - sat[0].predicted.as_f64()).abs() < 1e-6,
            "optimal T_max must agree: {} vs {}",
            exact[0].predicted,
            sat[0].predicted
        );
    }

    #[test]
    fn dag_chain_graph_matches_linear_optimizer() {
        // On a chain-shaped graph the DAG space collapses to the
        // contiguous-partition space: optima must coincide.
        let (soc, app, table) = setup();
        let graph = app.task_graph();
        let cfg = OptimizerConfig::with_threshold(0.0);
        let linear = optimize(&soc, &table, &cfg).unwrap();
        let dag = optimize_dag(&soc, &table, &graph, &cfg).unwrap();
        assert!(
            (linear[0].predicted.as_f64() - dag[0].predicted.as_f64()).abs() < 1e-9,
            "chain optimum: linear {} vs dag {}",
            linear[0].predicted,
            dag[0].predicted
        );
        assert!(dag[0].schedule.is_chain());
    }

    #[test]
    fn dag_beats_linearized_on_branching_app() {
        // The point of the generalization: on the fork/join perception
        // app, freeing parallel branches from a forced linear order must
        // not lose to the best linearization — and strictly beats it in
        // the predicted model here.
        let (soc, app, table) = dag_setup();
        let graph = app.task_graph();
        let cfg = OptimizerConfig::with_threshold(0.0);
        let dag = optimize_dag(&soc, &table, &graph, &cfg).unwrap();
        // Best schedule over a *linearization*: same stages treated as a
        // chain in the linearized stage order.
        let linear = optimize(&soc, &table, &cfg).unwrap();
        assert!(
            dag[0].predicted.as_f64() <= linear[0].predicted.as_f64() + 1e-9,
            "DAG optimum {} must not lose to linearized optimum {}",
            dag[0].predicted,
            linear[0].predicted
        );
    }

    #[test]
    fn replication_halves_a_dominant_bottleneck() {
        let (soc, app, table) = dag_setup();
        let graph = app.task_graph();
        let cfg = OptimizerConfig::with_threshold(0.0);
        let best = optimize_dag(&soc, &table, &graph, &cfg).unwrap();
        // Find the measured bottleneck stage of the best plain schedule:
        // the single stage whose chunk dominates T_max.
        let bottleneck = {
            let s = &best[0].schedule;
            let idx = best[0]
                .chunk_sums
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            s.chunks()[idx].stages[0]
        };
        if let Ok(rep) = optimize_replicated(&soc, &table, &graph, bottleneck) {
            assert_eq!(
                rep.schedule.replicated_stage().map(|(s, _)| s),
                Some(bottleneck)
            );
            // The replicated plan prices its replica chunks at half rate;
            // its T_max must be internally consistent.
            let max = rep.chunk_sums.iter().copied().reduce(Micros::max).unwrap();
            assert_eq!(max.as_f64(), rep.predicted.as_f64());
        }
    }

    #[test]
    fn replicated_candidate_names_both_classes() {
        // A 3-stage chain with a fat middle stage: replication must place
        // the middle stage on an exclusive class pair.
        let table = ProfilingTable::new(
            "app",
            "dev",
            ProfileMode::InterferenceHeavy,
            vec!["a".into(), "b".into(), "c".into()],
            vec![
                PuClass::BigCpu,
                PuClass::Gpu,
                PuClass::LittleCpu,
                PuClass::MediumCpu,
            ],
            vec![
                vec![
                    Micros::new(10.0),
                    Micros::new(5.0),
                    Micros::new(4.0),
                    Micros::new(6.0),
                ],
                vec![
                    Micros::new(40.0),
                    Micros::new(24.0),
                    Micros::new(80.0),
                    Micros::new(60.0),
                ],
                vec![
                    Micros::new(10.0),
                    Micros::new(5.0),
                    Micros::new(4.0),
                    Micros::new(7.0),
                ],
            ],
        );
        let soc = devices::pixel_7a();
        let graph = TaskGraph::chain(3);
        let rep = optimize_replicated(&soc, &table, &graph, 1).unwrap();
        let (stage, (c1, c2)) = rep.schedule.replicated_stage().unwrap();
        assert_ne!(c1, c2);
        assert_eq!(stage, 1);
        // Replicating the dominant middle stage must beat every
        // non-replicated schedule of the same problem.
        let plain =
            optimize_dag(&soc, &table, &graph, &OptimizerConfig::with_threshold(0.0)).unwrap();
        assert!(
            rep.predicted.as_f64() < plain[0].predicted.as_f64(),
            "replicated {} vs best plain {}",
            rep.predicted,
            plain[0].predicted
        );
    }
}
