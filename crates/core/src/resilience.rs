//! Telemetry-driven re-optimization under runtime faults.
//!
//! A deployed schedule is only optimal while the device behaves like the
//! profiling table says it does. DVFS throttles, thermal caps, and
//! stragglers change per-cluster costs mid-run; this module closes the
//! loop: observe per-chunk runtimes from the run's telemetry, compare
//! against the optimizer's predictions, and when the drift exceeds a
//! threshold, rescale the affected cost-table columns, re-solve, and
//! redeploy — emitting a [`RescheduleEvent`] per round so callers can
//! audit every decision.

use bt_pipeline::{Measurement, Schedule};
use bt_soc::{FaultSpec, Micros, PuClass};

use crate::backend::{ExecutionBackend, SimBackend};
use crate::optimizer::{autotune, optimize_with};
use crate::{BetterTogether, BtError, Deployment};

/// Knobs of the drift-detection / re-optimization loop.
#[derive(Debug, Clone)]
pub struct DriftConfig {
    /// Relative per-chunk drift (|observed/predicted − 1|) that triggers a
    /// re-solve. Small model mismatch is expected even fault-free, so this
    /// should stay well above the simulator's noise floor.
    pub threshold: f64,
    /// Re-optimization rounds before the loop settles for what it has.
    pub max_rounds: usize,
    /// Clamp on the per-class rescale factor applied to the cost table.
    pub max_factor: f64,
}

impl Default for DriftConfig {
    fn default() -> DriftConfig {
        DriftConfig {
            threshold: 0.3,
            max_rounds: 2,
            max_factor: 16.0,
        }
    }
}

/// One round of the resilience loop: the drift that was observed, the
/// cost-table correction applied, and the schedule swap it produced.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct RescheduleEvent {
    /// Loop round (0-based).
    pub round: usize,
    /// Per-chunk observed/predicted runtime ratios of the outgoing
    /// schedule. Empty when the probe run degraded past measurement (a
    /// lost PU), in which case the re-solve was triggered by the failure
    /// itself rather than a drift ratio.
    pub drifts: Vec<f64>,
    /// Per-class factors applied to the cost table before re-solving.
    pub factors: Vec<(PuClass, f64)>,
    /// The schedule that was running when drift was detected.
    pub old_schedule: Schedule,
    /// The re-optimized replacement.
    pub new_schedule: Schedule,
    /// Measured latency of the outgoing schedule under the live faults
    /// (`None` when that run degraded past measurement).
    pub old_latency: Option<Micros>,
    /// Measured latency of the replacement under the same faults.
    pub new_latency: Micros,
}

impl RescheduleEvent {
    /// Whether the reschedule strictly improved measured latency (a
    /// degraded outgoing run counts as improved upon by construction).
    pub fn improved(&self) -> bool {
        self.old_latency
            .is_none_or(|old| self.new_latency.as_f64() < old.as_f64())
    }
}

/// Output of [`BetterTogether::run_resilient`]: the initial fault-free
/// deployment, every reschedule the loop performed, and the schedule left
/// running at the end.
#[derive(Debug)]
pub struct ResilientRun {
    /// The fault-free deployment the run started from.
    pub deployment: Deployment,
    /// The schedule deployed before any fault was observed.
    pub stale_schedule: Schedule,
    /// The stale schedule's measurement under the live faults (`None`
    /// when it degraded past measurement).
    pub stale_under_fault: Option<Measurement>,
    /// One event per reschedule, in loop order. Empty when no drift
    /// crossed the threshold.
    pub events: Vec<RescheduleEvent>,
    /// The schedule left running after the loop settled.
    pub schedule: Schedule,
    /// The final schedule's measurement under the live faults.
    pub under_fault: Option<Measurement>,
}

impl ResilientRun {
    /// Whether the loop replaced the stale schedule at least once.
    pub fn rescheduled(&self) -> bool {
        !self.events.is_empty()
    }

    /// Latency ratio stale/final under the live faults — > 1 means the
    /// re-optimized schedule beats the stale one. `None` unless both were
    /// measurable.
    pub fn improvement(&self) -> Option<f64> {
        let stale = self.stale_under_fault.as_ref()?.latency.as_f64();
        let now = self.under_fault.as_ref()?.latency.as_f64();
        Some(stale / now)
    }
}

/// Per-chunk observed runtime per task, in microseconds. Prefers the
/// run's telemetry counters (`busy_us / tasks` per dispatcher); falls back
/// to the utilization-derived estimate `utilization × makespan / tasks`,
/// which is available on every measurement.
fn observed_chunk_cost(m: &Measurement) -> Vec<f64> {
    if let Some(t) = &m.telemetry {
        if t.dispatchers.len() == m.chunk_utilization.len() && m.tasks > 0 {
            let from_counters: Vec<f64> = t
                .dispatchers
                .iter()
                .map(|d| {
                    if d.tasks == 0 {
                        0.0
                    } else {
                        d.busy_us / d.tasks as f64
                    }
                })
                .collect();
            if from_counters.iter().all(|&c| c.is_finite()) {
                return from_counters;
            }
        }
    }
    let per_task = m.makespan.as_f64() / f64::from(m.tasks.max(1));
    m.chunk_utilization.iter().map(|u| u * per_task).collect()
}

impl BetterTogether<SimBackend> {
    /// Runs the full framework, then keeps the deployment honest under the
    /// injected `faults`: the deployed (now stale) schedule is observed
    /// under the perturbed simulator, per-chunk drift against the
    /// optimizer's predictions is computed from telemetry, and any drift
    /// past [`DriftConfig::threshold`] rescales the affected cost-table
    /// columns and re-solves. Each replacement is measured under the same
    /// faults and recorded as a [`RescheduleEvent`].
    ///
    /// A probe run degraded past measurement (a lost PU) skips the ratio
    /// test and re-solves immediately with the lost classes masked out of
    /// the placement domain.
    ///
    /// # Errors
    ///
    /// Returns [`BtError`] when the initial fault-free run fails, or when
    /// re-solving finds no feasible candidate (e.g. every schedulable
    /// class lost).
    pub fn run_resilient(
        &self,
        faults: &FaultSpec,
        drift: &DriftConfig,
    ) -> Result<ResilientRun, BtError> {
        let deployment = self.run()?;
        let stale_schedule = deployment
            .best_schedule()
            .ok_or(BtError::NoCandidates)?
            .clone();
        let mut chunk_pred: Vec<Micros> = deployment.plan.candidates[deployment.outcome.best_index]
            .chunk_sums
            .clone();
        let mut table = deployment.plan.table.clone();

        let faulted = self.backend().clone().with_faults(faults.clone());
        // Chunks on a lost PU never produce again; take the class out of
        // the placement domain for every re-solve.
        let placeable = |c: PuClass| faulted.schedulable(c) && faults.loss_at(c).is_none();

        let mut current = stale_schedule.clone();
        let mut current_meas = match faulted.measure(&current, 0) {
            Ok(m) => Some(m),
            Err(BtError::RunDegraded { .. }) => None,
            Err(e) => return Err(e),
        };
        let stale_under_fault = current_meas.clone();
        let mut events = Vec::new();

        for round in 0..drift.max_rounds {
            let (drifts, factors) = match &current_meas {
                Some(m) => {
                    let observed = observed_chunk_cost(m);
                    let drifts: Vec<f64> = observed
                        .iter()
                        .zip(&chunk_pred)
                        .map(|(obs, pred)| obs / pred.as_f64().max(1e-9))
                        .collect();
                    let mut factors: Vec<(PuClass, f64)> = Vec::new();
                    for (i, chunk) in current.chunks().iter().enumerate() {
                        let d = drifts[i];
                        if (d - 1.0).abs() <= drift.threshold || !d.is_finite() {
                            continue;
                        }
                        let f = d.clamp(1.0 / drift.max_factor, drift.max_factor);
                        match factors.iter_mut().find(|(c, _)| *c == chunk.pu) {
                            // Two drifting chunks on one class: believe the
                            // larger slowdown.
                            Some((_, old)) => *old = old.max(f),
                            None => factors.push((chunk.pu, f)),
                        }
                    }
                    if factors.is_empty() {
                        break; // within tolerance: the deployment stands
                    }
                    (drifts, factors)
                }
                // Degraded probe: no ratios to rescale by; re-solve on the
                // masked domain (the loss itself is the trigger).
                None => (Vec::new(), Vec::new()),
            };

            for &(class, f) in &factors {
                table = table
                    .scaled_class(class, f)
                    .expect("factor clamped finite-positive; class came from the table");
            }
            let candidates = optimize_with(&table, &self.config().optimizer, placeable)?;
            let outcome = autotune(&faulted, &candidates)?;
            let best = &candidates[outcome.best_index];
            let new_schedule = best.schedule.clone();
            let new_latency = outcome
                .measured_latency(outcome.best_index)
                .ok_or(BtError::NoCandidates)?;
            events.push(RescheduleEvent {
                round,
                drifts,
                factors,
                old_schedule: current.clone(),
                new_schedule: new_schedule.clone(),
                old_latency: current_meas.as_ref().map(|m| m.latency),
                new_latency,
            });
            let settled = new_schedule == current;
            chunk_pred = best.chunk_sums.clone();
            current = new_schedule;
            current_meas = match faulted.measure(&current, 0) {
                Ok(m) => Some(m),
                Err(BtError::RunDegraded { .. }) => None,
                Err(e) => return Err(e),
            };
            if settled {
                break;
            }
        }

        Ok(ResilientRun {
            deployment,
            stale_schedule,
            stale_under_fault,
            events,
            schedule: current,
            under_fault: current_meas,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_kernels::apps;
    use bt_soc::{devices, PuLoss, SlowdownRamp};

    fn pixel_octree() -> BetterTogether<SimBackend> {
        let app = apps::octree_app(apps::OctreeConfig::default()).model();
        BetterTogether::new(devices::pixel_7a(), app)
    }

    #[test]
    fn no_faults_means_no_reschedule() {
        let bt = pixel_octree();
        let run = bt
            .run_resilient(&FaultSpec::none(), &DriftConfig::default())
            .unwrap();
        assert!(!run.rescheduled(), "clean runs must not churn the schedule");
        assert_eq!(run.schedule, run.stale_schedule);
        assert!(run.under_fault.is_some());
    }

    #[test]
    fn midrun_big_cluster_throttle_triggers_beneficial_reschedule() {
        let bt = pixel_octree();
        // 2× DVFS throttle on the big cluster, stepping in early enough
        // that most of the measured window runs throttled.
        let faults = FaultSpec {
            slowdowns: vec![SlowdownRamp {
                class: PuClass::BigCpu,
                start_us: 2_000.0,
                ramp_us: 0.0,
                factor: 2.0,
            }],
            ..FaultSpec::none()
        };
        let run = bt.run_resilient(&faults, &DriftConfig::default()).unwrap();
        assert!(run.rescheduled(), "a 2× throttle must trip drift detection");
        let ev = &run.events[0];
        assert!(
            ev.factors
                .iter()
                .any(|&(c, f)| c == PuClass::BigCpu && f > 1.3),
            "the throttled class should be rescaled: {:?}",
            ev.factors
        );
        assert!(
            run.improvement().expect("both measurable") > 1.0,
            "re-optimized schedule must strictly beat the stale one: {:?}",
            run.improvement()
        );
    }

    #[test]
    fn lost_gpu_reroutes_without_ratios() {
        let bt = pixel_octree();
        let stale = bt.run().unwrap();
        let uses_gpu = stale
            .best_schedule()
            .expect("deployed")
            .classes_used()
            .contains(&PuClass::Gpu);
        assert!(uses_gpu, "octree on Pixel should offload to the GPU");
        let faults = FaultSpec {
            losses: vec![PuLoss {
                class: PuClass::Gpu,
                at_us: 0.0,
            }],
            ..FaultSpec::none()
        };
        let run = bt.run_resilient(&faults, &DriftConfig::default()).unwrap();
        assert!(run.rescheduled(), "a dead PU must force a reschedule");
        assert!(run.events[0].drifts.is_empty(), "no ratios on a dead probe");
        assert!(
            !run.schedule.classes_used().contains(&PuClass::Gpu),
            "the replacement must avoid the lost class: {}",
            run.schedule
        );
        assert!(run.under_fault.is_some(), "replacement must be measurable");
    }

    #[test]
    fn resilient_runs_are_deterministic() {
        let bt = pixel_octree();
        let faults = FaultSpec {
            slowdowns: vec![SlowdownRamp {
                class: PuClass::BigCpu,
                start_us: 2_000.0,
                ramp_us: 0.0,
                factor: 2.0,
            }],
            ..FaultSpec::none()
        };
        let a = bt.run_resilient(&faults, &DriftConfig::default()).unwrap();
        let b = bt.run_resilient(&faults, &DriftConfig::default()).unwrap();
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.events.len(), b.events.len());
        assert_eq!(
            a.under_fault.unwrap().latency.as_f64(),
            b.under_fault.unwrap().latency.as_f64()
        );
    }
}
