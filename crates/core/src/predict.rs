//! Schedule-latency prediction from a profiling table: the paper's
//! `T_max` — the bottleneck chunk's summed stage latencies, for both
//! linear-chain and fork/join (DAG) schedules.

use bt_pipeline::{DagSchedule, Schedule};
use bt_profiler::ProfilingTable;
use bt_soc::Micros;

/// Per-chunk predicted runtimes of `schedule` under `table`, in pipeline
/// order.
///
/// Returns `None` if the table lacks a class used by the schedule or the
/// stage counts disagree.
pub fn chunk_predictions(table: &ProfilingTable, schedule: &Schedule) -> Option<Vec<Micros>> {
    if table.stages().len() != schedule.stage_count() {
        return None;
    }
    let mut sums = Vec::new();
    for chunk in schedule.chunks() {
        let mut acc = Micros::ZERO;
        for stage in chunk.first_stage..=chunk.last_stage {
            acc += table.latency(stage, chunk.pu)?;
        }
        sums.push(acc);
    }
    Some(sums)
}

/// Predicted pipeline latency of `schedule`: the maximum chunk runtime
/// (`T_max`), i.e. the steady-state bottleneck.
pub fn predict_latency(table: &ProfilingTable, schedule: &Schedule) -> Option<Micros> {
    chunk_predictions(table, schedule)?
        .into_iter()
        .reduce(Micros::max)
}

/// Predicted gapness of `schedule`: `T_max − T_min` over its chunks
/// (objective O1; low gapness = high utilization).
pub fn predict_gapness(table: &ProfilingTable, schedule: &Schedule) -> Option<Micros> {
    let sums = chunk_predictions(table, schedule)?;
    let max = sums.iter().copied().reduce(Micros::max)?;
    let min = sums.iter().copied().reduce(Micros::min)?;
    Some(max - min)
}

/// Per-chunk predicted runtimes of a DAG `schedule` under `table`, in the
/// schedule's chunk order. A replicated stage's two chunks are each priced
/// at *half* the stage latency: every replica serves alternate tasks at
/// full per-task latency, so its steady-state service demand per pipeline
/// interval halves — the same convention the solver's
/// `evaluate_replicated` uses.
///
/// Returns `None` if the table lacks a class used by the schedule or the
/// stage counts disagree.
pub fn dag_chunk_predictions(
    table: &ProfilingTable,
    schedule: &DagSchedule,
) -> Option<Vec<Micros>> {
    if table.stages().len() != schedule.stage_count() {
        return None;
    }
    let replica = schedule.replica_pair();
    let mut sums = Vec::new();
    for (i, chunk) in schedule.chunks().iter().enumerate() {
        let mut acc = Micros::ZERO;
        for &stage in &chunk.stages {
            acc += table.latency(stage, chunk.pu)?;
        }
        if replica.is_some_and(|(a, b)| i == a || i == b) {
            acc = Micros::new(acc.as_f64() * 0.5);
        }
        sums.push(acc);
    }
    Some(sums)
}

/// Predicted pipeline latency of a DAG `schedule`: the maximum chunk
/// runtime (`T_max`). Parallel branches pipeline against each other, so
/// the steady-state time per task is still the bottleneck chunk — the DAG
/// changes *which* chunk decompositions are legal (path-convexity instead
/// of linear contiguity) and lets replication halve a bottleneck.
pub fn predict_dag_latency(table: &ProfilingTable, schedule: &DagSchedule) -> Option<Micros> {
    dag_chunk_predictions(table, schedule)?
        .into_iter()
        .reduce(Micros::max)
}

/// Predicted gapness of a DAG `schedule`: `T_max − T_min` over its chunks.
pub fn predict_dag_gapness(table: &ProfilingTable, schedule: &DagSchedule) -> Option<Micros> {
    let sums = dag_chunk_predictions(table, schedule)?;
    let max = sums.iter().copied().reduce(Micros::max)?;
    let min = sums.iter().copied().reduce(Micros::min)?;
    Some(max - min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_profiler::ProfileMode;
    use bt_soc::PuClass;

    fn table() -> ProfilingTable {
        ProfilingTable::new(
            "app",
            "dev",
            ProfileMode::InterferenceHeavy,
            vec!["a".into(), "b".into(), "c".into()],
            vec![PuClass::BigCpu, PuClass::Gpu],
            vec![
                vec![Micros::new(10.0), Micros::new(5.0)],
                vec![Micros::new(20.0), Micros::new(8.0)],
                vec![Micros::new(30.0), Micros::new(100.0)],
            ],
        )
    }

    #[test]
    fn chunk_sums_and_bottleneck() {
        let t = table();
        let s = Schedule::new(vec![PuClass::Gpu, PuClass::Gpu, PuClass::BigCpu]).unwrap();
        assert_eq!(
            chunk_predictions(&t, &s).unwrap(),
            vec![Micros::new(13.0), Micros::new(30.0)]
        );
        assert_eq!(predict_latency(&t, &s).unwrap(), Micros::new(30.0));
        assert_eq!(predict_gapness(&t, &s).unwrap(), Micros::new(17.0));
    }

    #[test]
    fn homogeneous_has_zero_gapness() {
        let t = table();
        let s = Schedule::homogeneous(3, PuClass::BigCpu);
        assert_eq!(predict_latency(&t, &s).unwrap(), Micros::new(60.0));
        assert_eq!(predict_gapness(&t, &s).unwrap(), Micros::ZERO);
    }

    #[test]
    fn missing_class_yields_none() {
        let t = table();
        let s = Schedule::homogeneous(3, PuClass::LittleCpu);
        assert_eq!(predict_latency(&t, &s), None);
    }

    #[test]
    fn stage_count_mismatch_yields_none() {
        let t = table();
        let s = Schedule::homogeneous(4, PuClass::BigCpu);
        assert_eq!(predict_latency(&t, &s), None);
    }

    #[test]
    fn dag_chain_predictions_match_linear() {
        let t = table();
        let linear = Schedule::new(vec![PuClass::Gpu, PuClass::Gpu, PuClass::BigCpu]).unwrap();
        let dag = DagSchedule::from_schedule(&linear);
        assert_eq!(
            dag_chunk_predictions(&t, &dag),
            chunk_predictions(&t, &linear)
        );
        assert_eq!(predict_dag_latency(&t, &dag), predict_latency(&t, &linear));
        assert_eq!(predict_dag_gapness(&t, &dag), predict_gapness(&t, &linear));
    }

    #[test]
    fn replicated_bottleneck_is_half_priced() {
        use PuClass::*;
        let t = ProfilingTable::new(
            "app",
            "dev",
            ProfileMode::InterferenceHeavy,
            vec!["a".into(), "b".into(), "c".into()],
            vec![BigCpu, Gpu, LittleCpu, MediumCpu],
            vec![
                vec![
                    Micros::new(10.0),
                    Micros::new(5.0),
                    Micros::new(4.0),
                    Micros::new(6.0),
                ],
                vec![
                    Micros::new(40.0),
                    Micros::new(24.0),
                    Micros::new(80.0),
                    Micros::new(60.0),
                ],
                vec![
                    Micros::new(10.0),
                    Micros::new(5.0),
                    Micros::new(4.0),
                    Micros::new(7.0),
                ],
            ],
        );
        let g = bt_kernels::TaskGraph::chain(3);
        let s = DagSchedule::replicated(vec![LittleCpu, BigCpu, MediumCpu], &g, 1, (BigCpu, Gpu))
            .unwrap();
        // Chunks: L{0}, B{1}, G{1}, M{2}; replica chunks at half service.
        assert_eq!(
            dag_chunk_predictions(&t, &s).unwrap(),
            vec![
                Micros::new(4.0),
                Micros::new(20.0),
                Micros::new(12.0),
                Micros::new(7.0),
            ]
        );
        assert_eq!(predict_dag_latency(&t, &s).unwrap(), Micros::new(20.0));
    }
}
