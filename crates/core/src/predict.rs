//! Schedule-latency prediction from a profiling table: the paper's
//! `T_max` — the bottleneck chunk's summed stage latencies.

use bt_pipeline::Schedule;
use bt_profiler::ProfilingTable;
use bt_soc::Micros;

/// Per-chunk predicted runtimes of `schedule` under `table`, in pipeline
/// order.
///
/// Returns `None` if the table lacks a class used by the schedule or the
/// stage counts disagree.
pub fn chunk_predictions(table: &ProfilingTable, schedule: &Schedule) -> Option<Vec<Micros>> {
    if table.stages().len() != schedule.stage_count() {
        return None;
    }
    let mut sums = Vec::new();
    for chunk in schedule.chunks() {
        let mut acc = Micros::ZERO;
        for stage in chunk.first_stage..=chunk.last_stage {
            acc += table.latency(stage, chunk.pu)?;
        }
        sums.push(acc);
    }
    Some(sums)
}

/// Predicted pipeline latency of `schedule`: the maximum chunk runtime
/// (`T_max`), i.e. the steady-state bottleneck.
pub fn predict_latency(table: &ProfilingTable, schedule: &Schedule) -> Option<Micros> {
    chunk_predictions(table, schedule)?
        .into_iter()
        .reduce(Micros::max)
}

/// Predicted gapness of `schedule`: `T_max − T_min` over its chunks
/// (objective O1; low gapness = high utilization).
pub fn predict_gapness(table: &ProfilingTable, schedule: &Schedule) -> Option<Micros> {
    let sums = chunk_predictions(table, schedule)?;
    let max = sums.iter().copied().reduce(Micros::max)?;
    let min = sums.iter().copied().reduce(Micros::min)?;
    Some(max - min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_profiler::ProfileMode;
    use bt_soc::PuClass;

    fn table() -> ProfilingTable {
        ProfilingTable::new(
            "app",
            "dev",
            ProfileMode::InterferenceHeavy,
            vec!["a".into(), "b".into(), "c".into()],
            vec![PuClass::BigCpu, PuClass::Gpu],
            vec![
                vec![Micros::new(10.0), Micros::new(5.0)],
                vec![Micros::new(20.0), Micros::new(8.0)],
                vec![Micros::new(30.0), Micros::new(100.0)],
            ],
        )
    }

    #[test]
    fn chunk_sums_and_bottleneck() {
        let t = table();
        let s = Schedule::new(vec![PuClass::Gpu, PuClass::Gpu, PuClass::BigCpu]).unwrap();
        assert_eq!(
            chunk_predictions(&t, &s).unwrap(),
            vec![Micros::new(13.0), Micros::new(30.0)]
        );
        assert_eq!(predict_latency(&t, &s).unwrap(), Micros::new(30.0));
        assert_eq!(predict_gapness(&t, &s).unwrap(), Micros::new(17.0));
    }

    #[test]
    fn homogeneous_has_zero_gapness() {
        let t = table();
        let s = Schedule::homogeneous(3, PuClass::BigCpu);
        assert_eq!(predict_latency(&t, &s).unwrap(), Micros::new(60.0));
        assert_eq!(predict_gapness(&t, &s).unwrap(), Micros::ZERO);
    }

    #[test]
    fn missing_class_yields_none() {
        let t = table();
        let s = Schedule::homogeneous(3, PuClass::LittleCpu);
        assert_eq!(predict_latency(&t, &s), None);
    }

    #[test]
    fn stage_count_mismatch_yields_none() {
        let t = table();
        let s = Schedule::homogeneous(4, PuClass::BigCpu);
        assert_eq!(predict_latency(&t, &s), None);
    }
}
