//! The end-to-end BetterTogether framework (Fig. 2 of the paper): inputs →
//! interference-aware profiling → three-level optimization → deployment.

use bt_kernels::AppModel;
use bt_pipeline::Schedule;
use bt_profiler::{profile, ProfileMode, ProfilerConfig, ProfilingTable};
use bt_soc::des::DesConfig;
use bt_soc::{Micros, SocSpec};

use crate::baseline::{measure_baselines, BaselinePair};
use crate::optimizer::{autotune, optimize, AutotuneOutcome, Candidate, OptimizerConfig};
use crate::BtError;

/// Framework configuration: every knob of the pipeline in Fig. 2.
#[derive(Debug, Clone)]
pub struct BtConfig {
    /// Profiling mode (the contribution is
    /// [`ProfileMode::InterferenceHeavy`]; `Isolated` reproduces the
    /// prior-work comparison models).
    pub profile_mode: ProfileMode,
    /// Profiler repetitions/noise.
    pub profiler: ProfilerConfig,
    /// Optimizer levels 1–2.
    pub optimizer: OptimizerConfig,
    /// Execution / autotuning configuration.
    pub des: DesConfig,
}

impl Default for BtConfig {
    fn default() -> BtConfig {
        BtConfig {
            profile_mode: ProfileMode::InterferenceHeavy,
            profiler: ProfilerConfig::default(),
            optimizer: OptimizerConfig::default(),
            des: DesConfig::default(),
        }
    }
}

/// The BetterTogether framework bound to one (device, application) pair.
///
/// ```
/// use bt_core::BetterTogether;
/// use bt_kernels::apps;
/// use bt_soc::devices;
///
/// let app = apps::octree_app(apps::OctreeConfig::default()).model();
/// let bt = BetterTogether::new(devices::pixel_7a(), app);
/// let deployment = bt.run()?;
/// assert!(deployment.speedup_over_best_baseline() > 1.0);
/// # Ok::<(), bt_core::BtError>(())
/// ```
#[derive(Debug)]
pub struct BetterTogether {
    soc: SocSpec,
    app: AppModel,
    cfg: BtConfig,
}

/// Output of levels 1–2: the profiling table plus ranked candidates.
/// Serializable, so plans can be cached on disk and re-deployed without
/// re-profiling.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Plan {
    /// The profiling table optimization ran against.
    pub table: ProfilingTable,
    /// Candidates sorted by predicted latency.
    pub candidates: Vec<Candidate>,
}

impl Plan {
    /// The schedule the model predicts to be fastest (index 1 of the
    /// paper's Table 4), or `None` for an empty plan. [`optimize`]
    /// never returns an empty candidate set, but a `Plan` deserialized
    /// from disk can carry one, so this cannot be a plain index.
    pub fn predicted_best(&self) -> Option<&Candidate> {
        self.candidates.first()
    }
}

/// Output of the full framework run: plan, autotuning measurements, and
/// baselines.
#[derive(Debug, Clone)]
pub struct Deployment {
    /// The plan that was autotuned.
    pub plan: Plan,
    /// Per-candidate measurements and the measured-best index.
    pub outcome: AutotuneOutcome,
    /// Homogeneous baselines for the same device/app.
    pub baselines: BaselinePair,
}

impl Deployment {
    /// The measured-best schedule — BetterTogether's final output.
    pub fn best_schedule(&self) -> &Schedule {
        &self.plan.candidates[self.outcome.best_index].schedule
    }

    /// Measured per-task latency of the best schedule.
    pub fn best_latency(&self) -> Micros {
        self.outcome
            .measured_latency(self.outcome.best_index)
            .expect("autotune measured its own best candidate")
    }

    /// Measured latency of the *predicted*-best schedule (what a user gets
    /// without level-3 autotuning). Resolved by candidate index, not by
    /// position in the measurement vector.
    pub fn predicted_best_latency(&self) -> Micros {
        self.outcome
            .measured_latency(0)
            .expect("autotune measured the predicted-best candidate")
    }

    /// Speedup over the faster homogeneous baseline (Fig. 4's metric).
    pub fn speedup_over_best_baseline(&self) -> f64 {
        self.baselines.best() / self.best_latency()
    }

    /// Speedup over the CPU-only baseline.
    pub fn speedup_over_cpu(&self) -> f64 {
        self.baselines.cpu / self.best_latency()
    }

    /// Speedup over the GPU-only baseline.
    pub fn speedup_over_gpu(&self) -> f64 {
        self.baselines.gpu / self.best_latency()
    }

    /// The extra speedup autotuning contributed beyond the predicted-best
    /// schedule (the paper measures 1.35× on sparse AlexNet / Pixel).
    pub fn autotuning_gain(&self) -> f64 {
        self.predicted_best_latency() / self.best_latency()
    }
}

impl BetterTogether {
    /// Binds the framework to a device model and an application model.
    pub fn new(soc: SocSpec, app: AppModel) -> BetterTogether {
        BetterTogether {
            soc,
            app,
            cfg: BtConfig::default(),
        }
    }

    /// Overrides the configuration.
    pub fn with_config(mut self, cfg: BtConfig) -> BetterTogether {
        self.cfg = cfg;
        self
    }

    /// The bound device.
    pub fn soc(&self) -> &SocSpec {
        &self.soc
    }

    /// The bound application model.
    pub fn app(&self) -> &AppModel {
        &self.app
    }

    /// The active configuration.
    pub fn config(&self) -> &BtConfig {
        &self.cfg
    }

    /// Runs BT-Profiler (Fig. 2, step 3).
    pub fn profile(&self) -> ProfilingTable {
        profile(
            &self.soc,
            &self.app,
            self.cfg.profile_mode,
            &self.cfg.profiler,
        )
    }

    /// Runs levels 1–2 of BT-Optimizer (Fig. 2, step 4).
    ///
    /// # Errors
    ///
    /// Returns [`BtError`] when no candidate satisfies the constraints.
    pub fn plan(&self) -> Result<Plan, BtError> {
        let table = self.profile();
        let candidates = optimize(&self.soc, &table, &self.cfg.optimizer)?;
        Ok(Plan { table, candidates })
    }

    /// Runs the full framework: profile → optimize → autotune → compare
    /// against the homogeneous baselines (Fig. 2, steps 3–5).
    ///
    /// # Errors
    ///
    /// Returns [`BtError`] on infeasible constraints or simulator errors.
    pub fn run(&self) -> Result<Deployment, BtError> {
        let plan = self.plan()?;
        let outcome = autotune(&self.soc, &self.app, &plan.candidates, &self.cfg.des)?;
        let baselines = measure_baselines(&self.soc, &self.app, &self.cfg.des)?;
        Ok(Deployment {
            plan,
            outcome,
            baselines,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_kernels::apps;
    use bt_soc::devices;

    #[test]
    fn end_to_end_octree_on_pixel_beats_baselines() {
        let app = apps::octree_app(apps::OctreeConfig::default()).model();
        let bt = BetterTogether::new(devices::pixel_7a(), app);
        let d = bt.run().unwrap();
        assert!(
            d.speedup_over_best_baseline() > 1.5,
            "octree on Pixel should speed up well, got {:.2}",
            d.speedup_over_best_baseline()
        );
        assert!(d.speedup_over_cpu() >= d.speedup_over_best_baseline());
        assert!(!d.best_schedule().is_homogeneous());
        assert!(d.autotuning_gain() >= 1.0 - 1e-9);
    }

    #[test]
    fn end_to_end_works_on_two_class_jetson() {
        let app = apps::alexnet_sparse_app(apps::AlexNetConfig::default()).model();
        let bt = BetterTogether::new(devices::jetson_orin_nano(), app);
        let d = bt.run().unwrap();
        // Modest gains expected on the homogeneous-CPU Jetson (paper §5.1).
        assert!(d.speedup_over_best_baseline() > 0.8);
        assert!(d.plan.candidates.len() <= 20);
    }

    #[test]
    fn plan_orders_candidates_by_prediction() {
        let app = apps::alexnet_dense_app(apps::AlexNetConfig::default()).model();
        let bt = BetterTogether::new(devices::oneplus_11(), app);
        let plan = bt.plan().unwrap();
        assert_eq!(
            plan.predicted_best().expect("non-empty plan").predicted,
            plan.candidates[0].predicted
        );
        for w in plan.candidates.windows(2) {
            assert!(w[0].predicted <= w[1].predicted);
        }
    }

    #[test]
    fn isolated_mode_produces_different_tables() {
        let app = apps::octree_app(apps::OctreeConfig::default()).model();
        let soc = devices::pixel_7a();
        let heavy = BetterTogether::new(soc.clone(), app.clone());
        let iso = BetterTogether::new(soc, app).with_config(BtConfig {
            profile_mode: ProfileMode::Isolated,
            ..BtConfig::default()
        });
        assert_ne!(heavy.profile(), iso.profile());
    }

    #[test]
    fn plan_round_trips_through_json() {
        let app = apps::octree_app(apps::OctreeConfig::default()).model();
        let plan = BetterTogether::new(devices::jetson_orin_nano(), app)
            .plan()
            .expect("plans");
        let json = serde_json::to_string(&plan).expect("serializes");
        let back: Plan = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back.candidates.len(), plan.candidates.len());
        assert_eq!(
            back.predicted_best().expect("non-empty plan").schedule,
            plan.predicted_best().expect("non-empty plan").schedule
        );
        // Floats survive JSON within a ULP; compare cell-wise.
        for s in 0..plan.table.stages().len() {
            for (&a, &b) in back.table.row(s).iter().zip(plan.table.row(s)) {
                assert!((a.as_f64() - b.as_f64()).abs() <= 1e-9 * b.as_f64().abs());
            }
        }
    }

    #[test]
    fn empty_deserialized_plan_has_no_predicted_best() {
        // A plan loaded from disk can have an empty candidate list; it
        // must degrade to `None`, not panic.
        let app = apps::octree_app(apps::OctreeConfig::default()).model();
        let mut plan = BetterTogether::new(devices::jetson_orin_nano(), app)
            .plan()
            .expect("plans");
        plan.candidates.clear();
        let json = serde_json::to_string(&plan).expect("serializes");
        let back: Plan = serde_json::from_str(&json).expect("deserializes");
        assert!(back.predicted_best().is_none());
    }

    #[test]
    fn deterministic_given_config() {
        let app = apps::octree_app(apps::OctreeConfig::default()).model();
        let bt = BetterTogether::new(devices::jetson_orin_nano(), app);
        let a = bt.run().unwrap();
        let b = bt.run().unwrap();
        assert_eq!(a.best_schedule(), b.best_schedule());
        assert_eq!(a.best_latency().as_f64(), b.best_latency().as_f64());
    }
}
