//! The end-to-end BetterTogether framework (Fig. 2 of the paper): inputs →
//! interference-aware profiling → three-level optimization → deployment —
//! generic over the [`ExecutionBackend`] so the identical loop drives the
//! discrete-event simulator and the real host runtime.

use bt_pipeline::Schedule;
use bt_profiler::{ProfileMode, ProfilingTable};
use bt_soc::{Micros, PuClass, SocSpec};

use bt_kernels::AppModel;

use crate::backend::{ExecutionBackend, SimBackend};
use crate::baseline::{measure_baselines, Baselines};
use crate::optimizer::{autotune, optimize_with, AutotuneOutcome, Candidate, OptimizerConfig};
use crate::BtError;

/// Framework configuration: the backend-independent knobs of Fig. 2.
/// Substrate-specific knobs (simulator noise/seed, host thread tiers,
/// repetitions) live on the backend itself.
#[derive(Debug, Clone)]
pub struct BtConfig {
    /// Profiling mode (the contribution is
    /// [`ProfileMode::InterferenceHeavy`]; `Isolated` reproduces the
    /// prior-work comparison models). Interference-heavy is the default on
    /// *every* backend — on the host this runs real background co-runners
    /// during profiling, which costs genuine contended wall-clock time on
    /// a shared machine.
    pub profile_mode: ProfileMode,
    /// Optimizer levels 1–2.
    pub optimizer: OptimizerConfig,
}

impl Default for BtConfig {
    fn default() -> BtConfig {
        BtConfig {
            profile_mode: ProfileMode::InterferenceHeavy,
            optimizer: OptimizerConfig::default(),
        }
    }
}

/// The BetterTogether framework bound to one execution backend.
///
/// The default backend is the simulator; [`BetterTogether::new`] keeps the
/// device-model entry point. Any other [`ExecutionBackend`] — notably
/// [`crate::HostBackend`] for real kernels on the development machine —
/// plugs in through [`BetterTogether::with_backend`] and drives the exact
/// same loop: gapness pass, 𝒦 blocking-clause candidates, utilization
/// filter, autotuning, and homogeneous-baseline comparison.
///
/// ```
/// use bt_core::BetterTogether;
/// use bt_kernels::apps;
/// use bt_soc::devices;
///
/// let app = apps::octree_app(apps::OctreeConfig::default()).model();
/// let bt = BetterTogether::new(devices::pixel_7a(), app);
/// let deployment = bt.run()?;
/// assert!(deployment.speedup_over_best_baseline().expect("measured") > 1.0);
/// # Ok::<(), bt_core::BtError>(())
/// ```
#[derive(Debug)]
pub struct BetterTogether<B: ExecutionBackend = SimBackend> {
    backend: B,
    cfg: BtConfig,
}

/// Output of levels 1–2: the profiling table plus ranked candidates.
/// Serializable, so plans can be cached on disk and re-deployed without
/// re-profiling — but validate a deserialized plan against the live
/// backend with [`Plan::validate`] before executing it.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Plan {
    /// The profiling table optimization ran against.
    pub table: ProfilingTable,
    /// Candidates sorted by predicted latency.
    pub candidates: Vec<Candidate>,
}

impl Plan {
    /// The schedule the model predicts to be fastest (index 1 of the
    /// paper's Table 4), or `None` for an empty plan. [`optimize_with`]
    /// never returns an empty candidate set, but a `Plan` deserialized
    /// from disk can carry one, so this cannot be a plain index.
    pub fn predicted_best(&self) -> Option<&Candidate> {
        self.candidates.first()
    }

    /// Checks that this plan can execute on `backend`: every candidate
    /// (and the table itself) agrees with the backend's stage count, and
    /// every scheduled PU class is one the backend can host. A stale
    /// cached plan — re-configured app, different device — fails here
    /// instead of panicking mid-execution.
    ///
    /// # Errors
    ///
    /// Returns [`BtError::PlanStageMismatch`] or
    /// [`BtError::PlanClassUnavailable`].
    pub fn validate<B: ExecutionBackend>(&self, backend: &B) -> Result<(), BtError> {
        let stages = backend.stage_count();
        if self.table.stages().len() != stages {
            return Err(BtError::PlanStageMismatch {
                plan: self.table.stages().len(),
                backend: stages,
            });
        }
        for cand in &self.candidates {
            if cand.schedule.stage_count() != stages {
                return Err(BtError::PlanStageMismatch {
                    plan: cand.schedule.stage_count(),
                    backend: stages,
                });
            }
            for class in cand.schedule.classes_used() {
                if !backend.schedulable(class) {
                    return Err(BtError::PlanClassUnavailable(class));
                }
            }
        }
        Ok(())
    }
}

/// Checks that a fork/join `schedule` can execute on `backend`: the stage
/// counts agree and every PU class it places chunks on (including both
/// replica classes) is one the backend can host — the [`Plan::validate`]
/// counterpart for DAG schedules, which live outside the linear-chain
/// `Plan` cache.
///
/// # Errors
///
/// Returns [`BtError::PlanStageMismatch`] or
/// [`BtError::PlanClassUnavailable`].
pub fn validate_dag_schedule<B: ExecutionBackend>(
    schedule: &bt_pipeline::DagSchedule,
    backend: &B,
) -> Result<(), BtError> {
    let stages = backend.stage_count();
    if schedule.stage_count() != stages {
        return Err(BtError::PlanStageMismatch {
            plan: schedule.stage_count(),
            backend: stages,
        });
    }
    for class in schedule.classes_used() {
        if !backend.schedulable(class) {
            return Err(BtError::PlanClassUnavailable(class));
        }
    }
    Ok(())
}

/// Output of the full framework run: plan, autotuning measurements, and
/// baselines — the same shape whether measured in the simulator or on the
/// host.
#[derive(Debug, Clone)]
pub struct Deployment {
    /// The plan that was autotuned.
    pub plan: Plan,
    /// Per-candidate measurements and the measured-best index.
    pub outcome: AutotuneOutcome,
    /// Homogeneous baselines for the same backend/app.
    pub baselines: Baselines,
}

impl Deployment {
    /// The measured-best schedule — BetterTogether's final output. `None`
    /// only if the deployment was assembled from inconsistent parts (e.g.
    /// a deserialized outcome pointing outside the candidate list).
    pub fn best_schedule(&self) -> Option<&Schedule> {
        self.plan
            .candidates
            .get(self.outcome.best_index)
            .map(|c| &c.schedule)
    }

    /// Measured per-task latency of the best schedule, if it was measured.
    pub fn best_latency(&self) -> Option<Micros> {
        self.outcome.measured_latency(self.outcome.best_index)
    }

    /// Measured latency of the *predicted*-best schedule (what a user gets
    /// without level-3 autotuning), if it was measured. Resolved by
    /// candidate index, not by position in the measurement vector.
    pub fn predicted_best_latency(&self) -> Option<Micros> {
        self.outcome.measured_latency(0)
    }

    /// Speedup over the faster homogeneous baseline (Fig. 4's metric).
    pub fn speedup_over_best_baseline(&self) -> Option<f64> {
        Some(self.baselines.best()? / self.best_latency()?)
    }

    /// Speedup over the baseline on `class`, if both were measured.
    pub fn speedup_over(&self, class: PuClass) -> Option<f64> {
        Some(self.baselines.latency_of(class)? / self.best_latency()?)
    }

    /// Speedup over the CPU-only baseline.
    pub fn speedup_over_cpu(&self) -> Option<f64> {
        self.speedup_over(PuClass::BigCpu)
    }

    /// Speedup over the GPU-only baseline.
    pub fn speedup_over_gpu(&self) -> Option<f64> {
        self.speedup_over(PuClass::Gpu)
    }

    /// The extra speedup autotuning contributed beyond the predicted-best
    /// schedule (the paper measures 1.35× on sparse AlexNet / Pixel).
    pub fn autotuning_gain(&self) -> Option<f64> {
        Some(self.predicted_best_latency()? / self.best_latency()?)
    }
}

impl BetterTogether<SimBackend> {
    /// Binds the framework to a device model and an application model,
    /// measuring through the discrete-event simulator.
    pub fn new(soc: SocSpec, app: AppModel) -> BetterTogether<SimBackend> {
        BetterTogether::with_backend(SimBackend::new(soc, app))
    }

    /// The bound device.
    pub fn soc(&self) -> &SocSpec {
        self.backend.soc()
    }

    /// The bound application model.
    pub fn app(&self) -> &AppModel {
        self.backend.app()
    }
}

impl<B: ExecutionBackend> BetterTogether<B> {
    /// Binds the framework to an arbitrary execution backend.
    pub fn with_backend(backend: B) -> BetterTogether<B> {
        BetterTogether {
            backend,
            cfg: BtConfig::default(),
        }
    }

    /// Overrides the configuration.
    pub fn with_config(mut self, cfg: BtConfig) -> BetterTogether<B> {
        self.cfg = cfg;
        self
    }

    /// The execution backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// The active configuration.
    pub fn config(&self) -> &BtConfig {
        &self.cfg
    }

    /// Runs BT-Profiler (Fig. 2, step 3).
    pub fn profile(&self) -> ProfilingTable {
        self.backend.profile(self.cfg.profile_mode)
    }

    /// Runs levels 1–2 of BT-Optimizer (Fig. 2, step 4).
    ///
    /// # Errors
    ///
    /// Returns [`BtError`] when no candidate satisfies the constraints.
    pub fn plan(&self) -> Result<Plan, BtError> {
        let table = self.profile();
        let candidates =
            optimize_with(&table, &self.cfg.optimizer, |c| self.backend.schedulable(c))?;
        Ok(Plan { table, candidates })
    }

    /// Autotunes an existing plan (e.g. one deserialized from disk) and
    /// measures baselines, after validating the plan against the backend.
    ///
    /// Backends whose
    /// [`parallel_measure_hint`](ExecutionBackend::parallel_measure_hint)
    /// is set (the simulator by default) evaluate the candidate sweep and
    /// the baselines on concurrent worker threads; the deployment is
    /// byte-identical to a serial evaluation either way.
    ///
    /// # Errors
    ///
    /// Returns [`BtError`] if the plan fails validation or a measurement
    /// fails.
    pub fn deploy(&self, plan: Plan) -> Result<Deployment, BtError> {
        plan.validate(&self.backend)?;
        let outcome = autotune(&self.backend, &plan.candidates)?;
        let baselines = measure_baselines(&self.backend)?;
        Ok(Deployment {
            plan,
            outcome,
            baselines,
        })
    }

    /// Runs the full framework: profile → optimize → autotune → compare
    /// against the homogeneous baselines (Fig. 2, steps 3–5).
    ///
    /// # Errors
    ///
    /// Returns [`BtError`] on infeasible constraints or measurement
    /// errors.
    pub fn run(&self) -> Result<Deployment, BtError> {
        self.deploy(self.plan()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_kernels::apps;
    use bt_soc::devices;

    #[test]
    fn dag_schedule_validates_against_backend() {
        use bt_pipeline::DagSchedule;
        use bt_soc::PuClass;
        let app = apps::perception_app(apps::PerceptionConfig::default()).model();
        let graph = app.task_graph();
        let s = DagSchedule::new(
            vec![
                PuClass::LittleCpu,
                PuClass::Gpu,
                PuClass::Gpu,
                PuClass::BigCpu,
                PuClass::BigCpu,
                PuClass::MediumCpu,
                PuClass::MediumCpu,
            ],
            &graph,
        )
        .unwrap();
        let pixel = SimBackend::new(devices::pixel_7a(), app.clone());
        validate_dag_schedule(&s, &pixel).unwrap();
        // Wrong stage count.
        let other = SimBackend::new(
            devices::pixel_7a(),
            apps::alexnet_dense_app(apps::AlexNetConfig::default()).model(),
        );
        assert_ne!(other.stage_count(), s.stage_count());
        assert!(matches!(
            validate_dag_schedule(&s, &other),
            Err(BtError::PlanStageMismatch { .. })
        ));
        // OnePlus 11 cannot schedule little cores.
        let oneplus = SimBackend::new(devices::oneplus_11(), app);
        assert!(matches!(
            validate_dag_schedule(&s, &oneplus),
            Err(BtError::PlanClassUnavailable(PuClass::LittleCpu))
        ));
    }

    #[test]
    fn end_to_end_octree_on_pixel_beats_baselines() {
        let app = apps::octree_app(apps::OctreeConfig::default()).model();
        let bt = BetterTogether::new(devices::pixel_7a(), app);
        let d = bt.run().unwrap();
        let speedup = d.speedup_over_best_baseline().expect("measured");
        assert!(
            speedup > 1.5,
            "octree on Pixel should speed up well, got {speedup:.2}"
        );
        assert!(d.speedup_over_cpu().expect("cpu baseline") >= speedup);
        assert!(!d.best_schedule().expect("autotuned").is_homogeneous());
        assert!(d.autotuning_gain().expect("measured") >= 1.0 - 1e-9);
    }

    #[test]
    fn end_to_end_works_on_two_class_jetson() {
        let app = apps::alexnet_sparse_app(apps::AlexNetConfig::default()).model();
        let bt = BetterTogether::new(devices::jetson_orin_nano(), app);
        let d = bt.run().unwrap();
        // Modest gains expected on the homogeneous-CPU Jetson (paper §5.1).
        assert!(d.speedup_over_best_baseline().expect("measured") > 0.8);
        assert!(d.plan.candidates.len() <= 20);
    }

    #[test]
    fn plan_orders_candidates_by_prediction() {
        let app = apps::alexnet_dense_app(apps::AlexNetConfig::default()).model();
        let bt = BetterTogether::new(devices::oneplus_11(), app);
        let plan = bt.plan().unwrap();
        assert_eq!(
            plan.predicted_best().expect("non-empty plan").predicted,
            plan.candidates[0].predicted
        );
        for w in plan.candidates.windows(2) {
            assert!(w[0].predicted <= w[1].predicted);
        }
    }

    #[test]
    fn isolated_mode_produces_different_tables() {
        let app = apps::octree_app(apps::OctreeConfig::default()).model();
        let soc = devices::pixel_7a();
        let heavy = BetterTogether::new(soc.clone(), app.clone());
        let iso = BetterTogether::new(soc, app).with_config(BtConfig {
            profile_mode: ProfileMode::Isolated,
            ..BtConfig::default()
        });
        assert_ne!(heavy.profile(), iso.profile());
    }

    #[test]
    fn plan_round_trips_through_json() {
        let app = apps::octree_app(apps::OctreeConfig::default()).model();
        let plan = BetterTogether::new(devices::jetson_orin_nano(), app)
            .plan()
            .expect("plans");
        let json = serde_json::to_string(&plan).expect("serializes");
        let back: Plan = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back.candidates.len(), plan.candidates.len());
        assert_eq!(
            back.predicted_best().expect("non-empty plan").schedule,
            plan.predicted_best().expect("non-empty plan").schedule
        );
        // Floats survive JSON within a ULP; compare cell-wise.
        for s in 0..plan.table.stages().len() {
            for (&a, &b) in back.table.row(s).iter().zip(plan.table.row(s)) {
                assert!((a.as_f64() - b.as_f64()).abs() <= 1e-9 * b.as_f64().abs());
            }
        }
    }

    #[test]
    fn empty_deserialized_plan_has_no_predicted_best() {
        // A plan loaded from disk can have an empty candidate list; it
        // must degrade to `None`, not panic.
        let app = apps::octree_app(apps::OctreeConfig::default()).model();
        let mut plan = BetterTogether::new(devices::jetson_orin_nano(), app)
            .plan()
            .expect("plans");
        plan.candidates.clear();
        let json = serde_json::to_string(&plan).expect("serializes");
        let back: Plan = serde_json::from_str(&json).expect("deserializes");
        assert!(back.predicted_best().is_none());
    }

    #[test]
    fn stale_plan_is_rejected_before_execution() {
        // A plan cached for one app must not execute against a backend
        // whose app has a different stage count...
        let octree = apps::octree_app(apps::OctreeConfig::default()).model();
        let dense = apps::alexnet_dense_app(apps::AlexNetConfig::default()).model();
        let soc = devices::pixel_7a();
        let plan = BetterTogether::new(soc.clone(), octree)
            .plan()
            .expect("plans");
        let other = BetterTogether::new(soc, dense);
        assert!(matches!(
            other.deploy(plan.clone()),
            Err(BtError::PlanStageMismatch { .. })
        ));
        // ...nor against a device that cannot host a scheduled class.
        let uses_little = plan.candidates.iter().any(|c| {
            c.schedule
                .classes_used()
                .contains(&bt_soc::PuClass::LittleCpu)
        });
        if uses_little {
            let octree = apps::octree_app(apps::OctreeConfig::default()).model();
            let oneplus = BetterTogether::new(devices::oneplus_11(), octree);
            assert!(matches!(
                oneplus.deploy(plan),
                Err(BtError::PlanClassUnavailable(_))
            ));
        }
    }

    #[test]
    fn deterministic_given_config() {
        let app = apps::octree_app(apps::OctreeConfig::default()).model();
        let bt = BetterTogether::new(devices::jetson_orin_nano(), app);
        let a = bt.run().unwrap();
        let b = bt.run().unwrap();
        assert_eq!(a.best_schedule(), b.best_schedule());
        assert_eq!(
            a.best_latency().expect("measured").as_f64(),
            b.best_latency().expect("measured").as_f64()
        );
    }

    #[test]
    fn inconsistent_deployment_degrades_to_none() {
        let app = apps::octree_app(apps::OctreeConfig::default()).model();
        let bt = BetterTogether::new(devices::jetson_orin_nano(), app);
        let mut d = bt.run().unwrap();
        d.outcome.best_index = d.plan.candidates.len() + 5;
        assert!(d.best_schedule().is_none());
        assert!(d.best_latency().is_none());
        assert!(d.speedup_over_best_baseline().is_none());
        assert!(d.autotuning_gain().is_none());
    }
}
