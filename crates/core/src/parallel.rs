//! Scoped-thread fan-out for independent backend measurements.
//!
//! The Fig. 2 loop repeatedly evaluates *independent* runs — 𝒦 autotuning
//! candidates, the homogeneous baselines, the energy comparison set. When a
//! backend's [`parallel_measure_hint`][hint] says runs cannot perturb each
//! other (the simulator: every run is a pure function of its config and
//! run-index-decorrelated seed), those evaluations spread over scoped
//! worker threads. Results are merged **in input-index order**, so the
//! output is byte-identical to the serial sweep; wall-clock backends keep
//! the hint off and take the serial path below untouched.
//!
//! [hint]: crate::ExecutionBackend::parallel_measure_hint

use std::sync::atomic::{AtomicUsize, Ordering};

/// Evaluates `f(0..n)` and collects the results in index order.
///
/// With `parallel` set (and more than one core), indices are pulled from a
/// shared counter by scoped workers; otherwise the map is a plain serial
/// loop. On failure the error for the *smallest* failing index is
/// returned — the same error the serial loop would surface first.
pub(crate) fn fan_out<T, E, F>(n: usize, parallel: bool, f: F) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if !parallel || workers <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let per_worker: Vec<Vec<(usize, Result<T, E>)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(i)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("measurement worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<Result<T, E>>> = (0..n).map(|_| None).collect();
    for chunk in per_worker {
        for (i, r) in chunk {
            slots[i] = Some(r);
        }
    }
    slots
        .into_iter()
        .map(|r| r.expect("work counter covers every index"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_index_order() {
        let serial: Result<Vec<usize>, ()> = fan_out(100, false, |i| Ok(i * 3));
        let parallel: Result<Vec<usize>, ()> = fan_out(100, true, |i| Ok(i * 3));
        assert_eq!(serial, parallel);
        assert_eq!(parallel.unwrap()[7], 21);
    }

    #[test]
    fn returns_error_of_smallest_failing_index() {
        for parallel in [false, true] {
            let r: Result<Vec<usize>, usize> =
                fan_out(50, parallel, |i| if i % 17 == 13 { Err(i) } else { Ok(i) });
            assert_eq!(r, Err(13), "parallel={parallel}");
        }
    }

    #[test]
    fn empty_input_yields_empty_vec() {
        let r: Result<Vec<u8>, ()> = fan_out(0, true, |_| unreachable!());
        assert_eq!(r, Ok(Vec::new()));
    }
}
