//! # bt-core — the BetterTogether framework
//!
//! The end-to-end system of the paper (Fig. 2): given a device model and an
//! application expressed as a stage sequence, BetterTogether
//!
//! 1. profiles every stage on every PU under representative
//!    intra-application interference (BT-Profiler, `bt-profiler`),
//! 2. solves for candidate pipeline schedules that minimize latency while
//!    maintaining utilization (BT-Optimizer, three levels, backed by the
//!    `bt-solver` constraint engine),
//! 3. executes and autotunes the top candidates (BT-Implementer, via the
//!    `bt-pipeline` executors), and
//! 4. reports speedups over homogeneous CPU-only / GPU-only baselines.
//!
//! # Example
//!
//! ```
//! use bt_core::BetterTogether;
//! use bt_kernels::apps;
//! use bt_soc::devices;
//!
//! let app = apps::octree_app(apps::OctreeConfig::default()).model();
//! let deployment = BetterTogether::new(devices::pixel_7a(), app).run()?;
//! println!(
//!     "best schedule {} → {} ({}× vs best homogeneous baseline)",
//!     deployment.best_schedule(),
//!     deployment.best_latency(),
//!     deployment.speedup_over_best_baseline(),
//! );
//! # Ok::<(), bt_core::BtError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod baseline;
pub mod energy;
mod error;
mod framework;
pub mod host;
pub mod metrics;
mod optimizer;
pub mod predict;

pub use baseline::{measure_baselines, BaselinePair};
pub use error::BtError;
pub use framework::{BetterTogether, BtConfig, Deployment, Plan};
pub use optimizer::{
    autotune, build_problem, build_problem_with, min_gapness, optimize, AutotuneOutcome, Candidate,
    Objective, OptimizerConfig, SolverEngine,
};
