//! # bt-core — the BetterTogether framework
//!
//! The end-to-end system of the paper (Fig. 2): given a device model and an
//! application expressed as a stage sequence, BetterTogether
//!
//! 1. profiles every stage on every PU under representative
//!    intra-application interference (BT-Profiler, `bt-profiler`),
//! 2. solves for candidate pipeline schedules that minimize latency while
//!    maintaining utilization (BT-Optimizer, three levels, backed by the
//!    `bt-solver` constraint engine),
//! 3. executes and autotunes the top candidates (BT-Implementer, via the
//!    `bt-pipeline` executors), and
//! 4. reports speedups over homogeneous CPU-only / GPU-only baselines.
//!
//! # Example
//!
//! ```
//! use bt_core::BetterTogether;
//! use bt_kernels::apps;
//! use bt_soc::devices;
//!
//! let app = apps::octree_app(apps::OctreeConfig::default()).model();
//! let deployment = BetterTogether::new(devices::pixel_7a(), app).run()?;
//! println!(
//!     "best schedule {} → {} ({}× vs best homogeneous baseline)",
//!     deployment.best_schedule().expect("autotuned"),
//!     deployment.best_latency().expect("measured"),
//!     deployment.speedup_over_best_baseline().expect("measured"),
//! );
//! # Ok::<(), bt_core::BtError>(())
//! ```
//!
//! The same loop runs on real silicon by swapping the backend: bind a
//! [`HostBackend`] (real kernels, wall-clock profiling, dispatcher-thread
//! execution) via [`BetterTogether::with_backend`] and call the identical
//! `run()`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod backend;
mod baseline;
pub mod energy;
mod error;
mod framework;
pub mod metrics;
mod optimizer;
mod parallel;
pub mod predict;
mod resilience;

pub use backend::{CoTenant, ExecutionBackend, HostBackend, McuBackend, SimBackend};
pub use baseline::{measure_baselines, BaselineEntry, Baselines};
pub use error::BtError;
pub use framework::{validate_dag_schedule, BetterTogether, BtConfig, Deployment, Plan};
pub use optimizer::{
    autotune, build_dag_problem, build_problem, build_problem_masked, build_problem_with,
    min_gapness, optimize, optimize_dag, optimize_replicated, optimize_with, AutotuneOutcome,
    Candidate, CandidateMeasurement, DagCandidate, Objective, OptimizerConfig, SolverEngine,
};
pub use resilience::{DriftConfig, RescheduleEvent, ResilientRun};
