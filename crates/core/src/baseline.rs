//! The paper's homogeneous baselines (§5.1): the whole application on the
//! big CPU cluster (DOALL parallelism) or entirely offloaded to the GPU,
//! with per-stage synchronization — the accelerator-oriented pattern.

use bt_kernels::AppModel;
use bt_pipeline::simulate_baseline;
use bt_soc::des::DesConfig;
use bt_soc::{Micros, PuClass, SocError, SocSpec};

/// Measured latencies of both homogeneous baselines for one
/// (device, application) pair — one row of the paper's Table 3.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BaselinePair {
    /// CPU-only (big cores), per-task latency.
    pub cpu: Micros,
    /// GPU-only, per-task latency.
    pub gpu: Micros,
}

impl BaselinePair {
    /// The faster of the two — the reference the paper's speedups use.
    pub fn best(&self) -> Micros {
        self.cpu.min(self.gpu)
    }

    /// Which PU wins.
    pub fn winner(&self) -> PuClass {
        if self.cpu <= self.gpu {
            PuClass::BigCpu
        } else {
            PuClass::Gpu
        }
    }
}

/// Runs both homogeneous baselines in the simulator.
///
/// The CPU baseline uses only the big cores, as in the paper ("they
/// consistently deliver the best performance; mixing big and little cores
/// led to degraded performance due to load imbalance").
///
/// # Errors
///
/// Propagates [`SocError`] (e.g. a device without a GPU).
pub fn measure_baselines(
    soc: &SocSpec,
    app: &AppModel,
    cfg: &DesConfig,
) -> Result<BaselinePair, SocError> {
    let cpu = simulate_baseline(soc, app, PuClass::BigCpu, cfg)?.time_per_task;
    let gpu = simulate_baseline(soc, app, PuClass::Gpu, cfg)?.time_per_task;
    Ok(BaselinePair { cpu, gpu })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_kernels::apps;
    use bt_soc::devices;

    fn des() -> DesConfig {
        DesConfig {
            noise_sigma: 0.0,
            ..DesConfig::default()
        }
    }

    #[test]
    fn gpu_wins_dense_cpu_wins_octree_on_pixel() {
        let soc = devices::pixel_7a();
        let dense = apps::alexnet_dense_app(apps::AlexNetConfig::default()).model();
        let octree = apps::octree_app(apps::OctreeConfig::default()).model();
        let d = measure_baselines(&soc, &dense, &des()).unwrap();
        let o = measure_baselines(&soc, &octree, &des()).unwrap();
        assert_eq!(d.winner(), PuClass::Gpu, "Table 3: GPU wins dense");
        assert_eq!(
            o.winner(),
            PuClass::BigCpu,
            "Table 3: CPU wins octree on phones"
        );
        assert_eq!(d.best(), d.gpu);
        assert_eq!(o.best(), o.cpu);
    }

    #[test]
    fn gpu_wins_octree_on_jetson() {
        let soc = devices::jetson_orin_nano();
        let octree = apps::octree_app(apps::OctreeConfig::default()).model();
        let o = measure_baselines(&soc, &octree, &des()).unwrap();
        assert_eq!(o.winner(), PuClass::Gpu, "Table 3: Ampere wins octree");
    }

    #[test]
    fn baselines_are_deterministic_without_noise() {
        let soc = devices::oneplus_11();
        let app = apps::alexnet_sparse_app(apps::AlexNetConfig::default()).model();
        let a = measure_baselines(&soc, &app, &des()).unwrap();
        let b = measure_baselines(&soc, &app, &des()).unwrap();
        assert_eq!(a, b);
    }
}
