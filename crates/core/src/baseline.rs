//! The paper's homogeneous baselines (§5.1): the whole application on one
//! PU class — big-CPU DOALL parallelism or full GPU offload with per-stage
//! synchronization on the simulator, one-tier execution on the host. The
//! backend decides which classes constitute meaningful baselines.

use bt_soc::{Micros, PuClass};
use serde::{Deserialize, Serialize};

use crate::backend::ExecutionBackend;
use crate::BtError;

/// One homogeneous baseline: the class and its measured per-task latency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BaselineEntry {
    /// The PU class hosting the whole application.
    pub class: PuClass,
    /// Measured per-task latency.
    pub latency: Micros,
}

/// Measured homogeneous baselines for one (backend, application) pair —
/// one row of the paper's Table 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Baselines {
    entries: Vec<BaselineEntry>,
}

impl Baselines {
    /// Builds from explicit entries (normally produced by
    /// [`measure_baselines`]).
    pub fn new(entries: Vec<BaselineEntry>) -> Baselines {
        Baselines { entries }
    }

    /// All entries, in the backend's baseline-class order.
    pub fn entries(&self) -> &[BaselineEntry] {
        &self.entries
    }

    /// The fastest baseline latency — the reference the paper's speedups
    /// use. `None` if no baseline was measured.
    pub fn best(&self) -> Option<Micros> {
        self.entries.iter().map(|e| e.latency).reduce(Micros::min)
    }

    /// Which class wins, if any baseline was measured.
    pub fn winner(&self) -> Option<PuClass> {
        self.entries
            .iter()
            .min_by(|a, b| a.latency.partial_cmp(&b.latency).expect("finite latencies"))
            .map(|e| e.class)
    }

    /// The measured latency of `class`'s baseline, if it was measured.
    pub fn latency_of(&self, class: PuClass) -> Option<Micros> {
        self.entries
            .iter()
            .find(|e| e.class == class)
            .map(|e| e.latency)
    }

    /// The CPU-only (big cores) baseline, if measured.
    pub fn cpu(&self) -> Option<Micros> {
        self.latency_of(PuClass::BigCpu)
    }

    /// The GPU-only baseline, if measured.
    pub fn gpu(&self) -> Option<Micros> {
        self.latency_of(PuClass::Gpu)
    }
}

/// Measures every homogeneous baseline the backend declares meaningful
/// (Fig. 2, step 5's comparison set).
///
/// On the simulator that is the paper's pair — big-CPU only ("they
/// consistently deliver the best performance; mixing big and little cores
/// led to degraded performance due to load imbalance") and GPU-only; on
/// the host, every configured tier.
///
/// When the backend's
/// [`parallel_measure_hint`](ExecutionBackend::parallel_measure_hint) is
/// set, the baseline classes are measured concurrently and merged in class
/// order — byte-identical to the serial sweep.
///
/// # Errors
///
/// Propagates backend errors (e.g. a device without a GPU).
pub fn measure_baselines<B: ExecutionBackend>(backend: &B) -> Result<Baselines, BtError> {
    let classes = backend.baseline_classes();
    let runs = crate::parallel::fan_out(classes.len(), backend.parallel_measure_hint(), |i| {
        backend.measure_baseline(classes[i])
    })?;
    let entries = classes
        .into_iter()
        .zip(runs)
        .map(|(class, m)| BaselineEntry {
            class,
            latency: m.latency,
        })
        .collect();
    Ok(Baselines { entries })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SimBackend;
    use bt_kernels::apps;
    use bt_soc::devices;
    use bt_soc::RunConfig;

    fn noiseless(soc: bt_soc::SocSpec, app: bt_kernels::AppModel) -> SimBackend {
        SimBackend::new(soc, app).with_run(RunConfig {
            noise_sigma: 0.0,
            ..RunConfig::default()
        })
    }

    #[test]
    fn gpu_wins_dense_cpu_wins_octree_on_pixel() {
        let dense = apps::alexnet_dense_app(apps::AlexNetConfig::default()).model();
        let octree = apps::octree_app(apps::OctreeConfig::default()).model();
        let d = measure_baselines(&noiseless(devices::pixel_7a(), dense)).unwrap();
        let o = measure_baselines(&noiseless(devices::pixel_7a(), octree)).unwrap();
        assert_eq!(d.winner(), Some(PuClass::Gpu), "Table 3: GPU wins dense");
        assert_eq!(
            o.winner(),
            Some(PuClass::BigCpu),
            "Table 3: CPU wins octree on phones"
        );
        assert_eq!(d.best(), d.gpu());
        assert_eq!(o.best(), o.cpu());
        assert_eq!(d.entries().len(), 2);
    }

    #[test]
    fn gpu_wins_octree_on_jetson() {
        let octree = apps::octree_app(apps::OctreeConfig::default()).model();
        let o = measure_baselines(&noiseless(devices::jetson_orin_nano(), octree)).unwrap();
        assert_eq!(
            o.winner(),
            Some(PuClass::Gpu),
            "Table 3: Ampere wins octree"
        );
    }

    #[test]
    fn baselines_are_deterministic_without_noise() {
        let app = apps::alexnet_sparse_app(apps::AlexNetConfig::default()).model();
        let backend = noiseless(devices::oneplus_11(), app);
        let a = measure_baselines(&backend).unwrap();
        let b = measure_baselines(&backend).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_baselines_degrade_to_none() {
        let b = Baselines::new(Vec::new());
        assert_eq!(b.best(), None);
        assert_eq!(b.winner(), None);
        assert_eq!(b.cpu(), None);
    }
}
