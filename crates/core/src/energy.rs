//! Energy evaluation of schedules — the edge-computing motivation of §1
//! quantified: compare a BetterTogether pipeline against the homogeneous
//! baselines on energy per task and energy-delay product.

use bt_kernels::AppModel;
use bt_pipeline::{simulate_baseline, simulate_schedule, Schedule};
use bt_soc::des::DesConfig;
use bt_soc::power::{energy_of_run, EnergyReport, PowerModel};
use bt_soc::{PuClass, SocSpec};

use crate::BtError;

/// Simulates `schedule` and returns its energy accounting under `model`.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn measure_energy(
    soc: &SocSpec,
    app: &AppModel,
    schedule: &Schedule,
    model: &PowerModel,
    des: &DesConfig,
) -> Result<EnergyReport, BtError> {
    let report = simulate_schedule(soc, app, schedule, des)?;
    let classes: Vec<PuClass> = schedule.chunks().iter().map(|c| c.pu).collect();
    Ok(energy_of_run(soc, model, &report, &classes))
}

/// Simulates the homogeneous baseline on `class` and returns its energy.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn measure_baseline_energy(
    soc: &SocSpec,
    app: &AppModel,
    class: PuClass,
    model: &PowerModel,
    des: &DesConfig,
) -> Result<EnergyReport, BtError> {
    let report = simulate_baseline(soc, app, class, des)?;
    Ok(energy_of_run(soc, model, &report, &[class]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BetterTogether;
    use bt_kernels::apps;
    use bt_soc::devices;

    #[test]
    fn pipeline_beats_cpu_baseline_on_edp() {
        // Pipelining keeps more silicon busy (higher power) but finishes
        // tasks much faster; on energy-delay product it must win against
        // the CPU baseline for the octree workload on the Pixel.
        let soc = devices::pixel_7a();
        let app = apps::octree_app(apps::OctreeConfig::default()).model();
        let d = BetterTogether::new(soc.clone(), app.clone())
            .run()
            .expect("runs");
        let model = PowerModel::default_for(&soc);
        let des = DesConfig::default();
        let bt = measure_energy(&soc, &app, d.best_schedule(), &model, &des).expect("energy");
        let cpu =
            measure_baseline_energy(&soc, &app, PuClass::BigCpu, &model, &des).expect("energy");
        assert!(
            bt.edp_mj_ms < cpu.edp_mj_ms,
            "pipeline EDP {:.2} should beat CPU baseline {:.2}",
            bt.edp_mj_ms,
            cpu.edp_mj_ms
        );
    }

    #[test]
    fn gpu_baseline_energy_reflects_runtime() {
        // On the Pixel the GPU octree baseline runs ~4x longer than the
        // CPU baseline, so its energy per task must be higher even though
        // the busy cluster differs.
        let soc = devices::pixel_7a();
        let app = apps::octree_app(apps::OctreeConfig::default()).model();
        let model = PowerModel::default_for(&soc);
        let des = DesConfig::default();
        let gpu = measure_baseline_energy(&soc, &app, PuClass::Gpu, &model, &des).expect("energy");
        let cpu =
            measure_baseline_energy(&soc, &app, PuClass::BigCpu, &model, &des).expect("energy");
        assert!(gpu.per_task_mj > cpu.per_task_mj);
    }
}
