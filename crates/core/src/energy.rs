//! Energy evaluation of schedules — the edge-computing motivation of §1
//! quantified: compare a BetterTogether pipeline against the homogeneous
//! baselines on energy per task and energy-delay product. Generic over the
//! execution backend: simulated windows and wall-clock host windows are
//! priced by the same two-state power model.

use bt_pipeline::Schedule;
use bt_soc::power::{energy_of_window, EnergyReport, PowerModel};
use bt_soc::PuClass;

use crate::backend::ExecutionBackend;
use crate::BtError;

/// Measures `schedule` on the backend and returns its energy accounting
/// under `model`. Every class the backend reports powered draws at least
/// idle power for the whole window.
///
/// # Errors
///
/// Propagates backend measurement errors.
pub fn measure_energy<B: ExecutionBackend>(
    backend: &B,
    schedule: &Schedule,
    model: &PowerModel,
) -> Result<EnergyReport, BtError> {
    let m = backend.measure(schedule, 0)?;
    let classes: Vec<PuClass> = schedule.chunks().iter().map(|c| c.pu).collect();
    Ok(energy_of_window(
        model,
        m.makespan,
        &m.chunk_utilization,
        m.tasks,
        &classes,
        &backend.classes(),
    ))
}

/// Measures the homogeneous baseline on `class` and returns its energy.
///
/// # Errors
///
/// Propagates backend measurement errors.
pub fn measure_baseline_energy<B: ExecutionBackend>(
    backend: &B,
    class: PuClass,
    model: &PowerModel,
) -> Result<EnergyReport, BtError> {
    let m = backend.measure_baseline(class)?;
    Ok(energy_of_window(
        model,
        m.makespan,
        &m.chunk_utilization,
        m.tasks,
        &[class],
        &backend.classes(),
    ))
}

/// A pipeline schedule's energy accounting next to every baseline class
/// the backend declares, from one evaluation sweep.
#[derive(Debug, Clone)]
pub struct EnergyComparison {
    /// The pipeline schedule's energy.
    pub schedule: EnergyReport,
    /// Each baseline class with its energy, in the backend's
    /// baseline-class order.
    pub baselines: Vec<(PuClass, EnergyReport)>,
}

impl EnergyComparison {
    /// The lowest baseline energy-per-task, for speedup-style ratios.
    pub fn best_baseline_per_task_mj(&self) -> Option<f64> {
        self.baselines
            .iter()
            .map(|(_, e)| e.per_task_mj)
            .min_by(|a, b| a.partial_cmp(b).expect("finite energy"))
    }
}

/// Prices `schedule` against every baseline class in one sweep. When the
/// backend's
/// [`parallel_measure_hint`](ExecutionBackend::parallel_measure_hint) is
/// set, the schedule run and all baseline runs execute concurrently;
/// results merge in declaration order (schedule first, then
/// [`baseline_classes`](ExecutionBackend::baseline_classes)), so reports
/// are byte-identical to calling [`measure_energy`] and
/// [`measure_baseline_energy`] serially.
///
/// # Errors
///
/// Propagates backend measurement errors.
pub fn energy_comparison<B: ExecutionBackend>(
    backend: &B,
    schedule: &Schedule,
    model: &PowerModel,
) -> Result<EnergyComparison, BtError> {
    let classes = backend.baseline_classes();
    let mut runs =
        crate::parallel::fan_out(classes.len() + 1, backend.parallel_measure_hint(), |i| {
            if i == 0 {
                backend.measure(schedule, 0)
            } else {
                backend.measure_baseline(classes[i - 1])
            }
        })?
        .into_iter();
    let powered = backend.classes();
    let m = runs.next().expect("schedule run present");
    let schedule_classes: Vec<PuClass> = schedule.chunks().iter().map(|c| c.pu).collect();
    let schedule_energy = energy_of_window(
        model,
        m.makespan,
        &m.chunk_utilization,
        m.tasks,
        &schedule_classes,
        &powered,
    );
    let baselines = classes
        .into_iter()
        .zip(runs)
        .map(|(class, m)| {
            let e = energy_of_window(
                model,
                m.makespan,
                &m.chunk_utilization,
                m.tasks,
                &[class],
                &powered,
            );
            (class, e)
        })
        .collect();
    Ok(EnergyComparison {
        schedule: schedule_energy,
        baselines,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SimBackend;
    use crate::BetterTogether;
    use bt_kernels::apps;
    use bt_soc::devices;

    #[test]
    fn pipeline_beats_cpu_baseline_on_edp() {
        // Pipelining keeps more silicon busy (higher power) but finishes
        // tasks much faster; on energy-delay product it must win against
        // the CPU baseline for the octree workload on the Pixel.
        let soc = devices::pixel_7a();
        let app = apps::octree_app(apps::OctreeConfig::default()).model();
        let d = BetterTogether::new(soc.clone(), app.clone())
            .run()
            .expect("runs");
        let model = PowerModel::default_for(&soc);
        let backend = SimBackend::new(soc, app);
        let best = d.best_schedule().expect("autotuned");
        let bt = measure_energy(&backend, best, &model).expect("energy");
        let cpu = measure_baseline_energy(&backend, PuClass::BigCpu, &model).expect("energy");
        assert!(
            bt.edp_mj_ms < cpu.edp_mj_ms,
            "pipeline EDP {:.2} should beat CPU baseline {:.2}",
            bt.edp_mj_ms,
            cpu.edp_mj_ms
        );
    }

    #[test]
    fn comparison_sweep_matches_individual_measurements() {
        let soc = devices::pixel_7a();
        let app = apps::octree_app(apps::OctreeConfig::default()).model();
        let model = PowerModel::default_for(&soc);
        let backend = SimBackend::new(soc, app);
        let d = BetterTogether::with_backend(backend.clone())
            .run()
            .expect("runs");
        let best = d.best_schedule().expect("autotuned");
        let cmp = energy_comparison(&backend, best, &model).expect("sweep");
        let solo = measure_energy(&backend, best, &model).expect("energy");
        assert_eq!(cmp.schedule.per_task_mj, solo.per_task_mj);
        assert_eq!(cmp.baselines.len(), backend.baseline_classes().len());
        for (class, e) in &cmp.baselines {
            let solo = measure_baseline_energy(&backend, *class, &model).expect("energy");
            assert_eq!(e.per_task_mj, solo.per_task_mj, "baseline {class}");
            assert_eq!(e.edp_mj_ms, solo.edp_mj_ms, "baseline {class}");
        }
        assert!(cmp.best_baseline_per_task_mj().is_some());
    }

    #[test]
    fn gpu_baseline_energy_reflects_runtime() {
        // On the Pixel the GPU octree baseline runs ~4x longer than the
        // CPU baseline, so its energy per task must be higher even though
        // the busy cluster differs.
        let soc = devices::pixel_7a();
        let app = apps::octree_app(apps::OctreeConfig::default()).model();
        let model = PowerModel::default_for(&soc);
        let backend = SimBackend::new(soc, app);
        let gpu = measure_baseline_energy(&backend, PuClass::Gpu, &model).expect("energy");
        let cpu = measure_baseline_energy(&backend, PuClass::BigCpu, &model).expect("energy");
        assert!(gpu.per_task_mj > cpu.per_task_mj);
    }
}
