//! The execution-backend seam of the framework: one trait abstracting
//! *where* schedules run, so the Fig. 2 loop (profile → three-level
//! optimize → autotune → baseline comparison) exists exactly once and is
//! generic over the measurement substrate.
//!
//! Two implementations ship:
//!
//! - [`SimBackend`] — the discrete-event simulator of `bt-soc`, modeling
//!   the paper's four devices (the default; fast and deterministic).
//! - [`HostBackend`] — the real dispatcher-thread runtime of
//!   `bt-pipeline` plus wall-clock profiling from `bt-profiler`, running
//!   actual kernels on the development machine.
//!
//! Any future substrate (remote device, process-isolated runner, batched
//! measurement service) is a third `impl`, not a third copy of the loop.

use bt_kernels::{AppModel, Application};
use bt_pipeline::{
    run_host, run_host_dag, simulate_baseline, simulate_dag_schedule, simulate_schedule,
    simulate_schedule_batch, to_chunk_specs, DagSchedule, Measurement, PuThreads, Schedule,
};
use bt_profiler::host::{profile_host, HostClasses, HostProfilerConfig};
use bt_profiler::{profile, ProfileMode, ProfilerConfig, ProfilingTable};
use bt_soc::{simulate_multi, DesSeedSpec, FaultSpec, PuClass, RunConfig, SocSpec, TenantSpec};

use crate::BtError;

/// One tenant of a multi-tenant measurement: an application model under
/// a schedule, with its own run configuration. The co-run vocabulary of
/// [`ExecutionBackend::measure_multi`] and of the admission policies in
/// `bt-faults`.
#[derive(Debug, Clone)]
pub struct CoTenant {
    /// The tenant's application model.
    pub app: AppModel,
    /// Placement of the tenant's stages on the device.
    pub schedule: Schedule,
    /// The tenant's own run configuration (tasks, warmup, seed, …).
    pub run: RunConfig,
}

impl CoTenant {
    /// Convenience constructor.
    pub fn new(app: AppModel, schedule: Schedule, run: RunConfig) -> CoTenant {
        CoTenant { app, schedule, run }
    }
}

/// A substrate that can profile an application and measure schedules on
/// it — everything the BetterTogether loop needs from the outside world.
///
/// The framework calls [`profile`](ExecutionBackend::profile) once, feeds
/// the table through the optimizer (using
/// [`schedulable`](ExecutionBackend::schedulable) as the class mask), then
/// [`measure`](ExecutionBackend::measure)s each candidate during
/// autotuning and each class in
/// [`baseline_classes`](ExecutionBackend::baseline_classes) via
/// [`measure_baseline`](ExecutionBackend::measure_baseline).
///
/// Backends are `Sync` so the framework can fan independent measurements
/// out over scoped worker threads when
/// [`parallel_measure_hint`](ExecutionBackend::parallel_measure_hint)
/// allows it.
pub trait ExecutionBackend: Sync {
    /// Short identifier for reports ("sim", "host", …).
    fn name(&self) -> &str;

    /// Whether independent measurements may run concurrently.
    ///
    /// `true` means [`measure`](ExecutionBackend::measure) and
    /// [`measure_baseline`](ExecutionBackend::measure_baseline) calls are
    /// pure functions of their arguments (virtual-time backends): the
    /// framework then spreads autotuning candidates, baselines, and energy
    /// measurements over scoped threads, merging results in input order so
    /// the outcome is byte-identical to a serial sweep. The default is
    /// `false` — correct for any wall-clock backend, where concurrent runs
    /// would contend for the machine and corrupt the very latencies being
    /// ranked.
    fn parallel_measure_hint(&self) -> bool {
        false
    }

    /// Stage count of the bound application — the validation reference
    /// for schedules and cached [`crate::Plan`]s.
    fn stage_count(&self) -> usize;

    /// Every PU class powered on this substrate (idle clusters still draw
    /// power in the energy model).
    fn classes(&self) -> Vec<PuClass>;

    /// Whether chunks may be placed on `class` — the optimizer's allowed
    /// mask (e.g. unpinnable clusters are present but unschedulable).
    fn schedulable(&self, class: PuClass) -> bool;

    /// The homogeneous baselines meaningful on this substrate.
    fn baseline_classes(&self) -> Vec<PuClass>;

    /// Runs BT-Profiler: per-(stage, class) latencies under `mode`.
    fn profile(&self, mode: ProfileMode) -> ProfilingTable;

    /// Executes `schedule` and reports its steady-state measurement.
    ///
    /// `run_index` distinguishes repeated measurements in one autotuning
    /// sweep; deterministic backends decorrelate their noise with it,
    /// wall-clock backends may ignore it.
    ///
    /// # Errors
    ///
    /// Returns [`BtError`] when the substrate rejects the schedule
    /// (stage mismatch, missing PU, failed run).
    fn measure(&self, schedule: &Schedule, run_index: u64) -> Result<Measurement, BtError>;

    /// Executes `schedule` once per entry of `run_indices` and reports the
    /// measurements in input order — the sweep-scale counterpart of
    /// [`measure`](ExecutionBackend::measure). Each element must equal
    /// what `measure(schedule, run_indices[i])` would return.
    ///
    /// The default implementation is that serial loop. Backends with a
    /// genuinely batched substrate (the simulator's structure-of-arrays
    /// engine) override it to price all runs in one pass.
    ///
    /// # Errors
    ///
    /// Returns [`BtError`] when the substrate rejects the schedule or any
    /// run degrades; the whole batch fails as a unit.
    fn measure_batch(
        &self,
        schedule: &Schedule,
        run_indices: &[u64],
    ) -> Result<Vec<Measurement>, BtError> {
        run_indices
            .iter()
            .map(|&i| self.measure(schedule, i))
            .collect()
    }

    /// Executes a fork/join `schedule` and reports its steady-state
    /// measurement — the DAG counterpart of
    /// [`measure`](ExecutionBackend::measure). Chain-shaped DAG schedules
    /// must price identically to their linear form.
    ///
    /// # Errors
    ///
    /// The default implementation returns [`BtError::DagUnsupported`];
    /// substrates with a fork/join engine override it and return the
    /// usual configuration errors (stage/graph mismatch, missing PU,
    /// failed run).
    fn measure_dag(&self, schedule: &DagSchedule, run_index: u64) -> Result<Measurement, BtError> {
        let _ = (schedule, run_index);
        Err(BtError::DagUnsupported {
            backend: self.name().to_string(),
        })
    }

    /// Measures the homogeneous baseline on `class`.
    ///
    /// # Errors
    ///
    /// Returns [`BtError`] when the class cannot host the whole
    /// application on this substrate.
    fn measure_baseline(&self, class: PuClass) -> Result<Measurement, BtError>;

    /// Co-runs `tenants` on this substrate's shared device, returning one
    /// steady-state measurement per tenant in input order.
    ///
    /// Unlike [`measure`](ExecutionBackend::measure), this ignores the
    /// backend's bound application: each [`CoTenant`] carries its own
    /// model, schedule, and run configuration, and the substrate prices
    /// cross-tenant interference between them.
    ///
    /// # Errors
    ///
    /// The default implementation returns
    /// [`BtError::MultiTenantUnsupported`] — only virtual-time backends
    /// can co-schedule tenant timelines. Supporting backends return the
    /// usual configuration errors (stage mismatch, missing PU) or
    /// [`BtError::RunDegraded`] when a tenant completes no tasks.
    fn measure_multi(&self, tenants: &[CoTenant]) -> Result<Vec<Measurement>, BtError> {
        let _ = tenants;
        Err(BtError::MultiTenantUnsupported {
            backend: self.name().to_string(),
        })
    }
}

/// The simulated backend: profiles and executes against the
/// discrete-event model of one of the paper's devices.
#[derive(Debug, Clone)]
pub struct SimBackend {
    soc: SocSpec,
    app: AppModel,
    profiler: ProfilerConfig,
    run: RunConfig,
    parallel: bool,
    faults: FaultSpec,
}

impl SimBackend {
    /// Binds the simulator to a device model and an application model.
    pub fn new(soc: SocSpec, app: AppModel) -> SimBackend {
        SimBackend {
            soc,
            app,
            profiler: ProfilerConfig::default(),
            run: RunConfig::default(),
            parallel: true,
            faults: FaultSpec::none(),
        }
    }

    /// Injects a fault specification into every subsequent
    /// [`measure`](ExecutionBackend::measure) call: schedules run under
    /// the perturbed simulator (`simulate_schedule` with `Some(faults)`)
    /// instead of the clean one. Profiling and baselines stay unfaulted —
    /// the fault model perturbs *execution*, not the knowledge the
    /// optimizer starts from.
    pub fn with_faults(mut self, faults: FaultSpec) -> SimBackend {
        self.faults = faults;
        self
    }

    /// The active fault specification (empty by default).
    pub fn faults(&self) -> &FaultSpec {
        &self.faults
    }

    /// Overrides the profiler configuration.
    pub fn with_profiler(mut self, profiler: ProfilerConfig) -> SimBackend {
        self.profiler = profiler;
        self
    }

    /// Enables or disables concurrent measurement/profiling (on by
    /// default). Simulated runs are pure functions of `(config, seed)`, so
    /// parallel sweeps return byte-identical results; turning this off
    /// forces the reference serial path (used by the determinism tests and
    /// the perf-trajectory bench).
    pub fn with_parallel(mut self, parallel: bool) -> SimBackend {
        self.parallel = parallel;
        self.profiler.parallel = parallel;
        self
    }

    /// Overrides the run configuration used for measurements.
    pub fn with_run(mut self, run: RunConfig) -> SimBackend {
        self.run = run;
        self
    }

    /// Overrides the run configuration used for measurements.
    #[deprecated(since = "0.2.0", note = "use with_run")]
    pub fn with_des(self, des: RunConfig) -> SimBackend {
        self.with_run(des)
    }

    /// The bound device model.
    pub fn soc(&self) -> &SocSpec {
        &self.soc
    }

    /// The bound application model.
    pub fn app(&self) -> &AppModel {
        &self.app
    }

    /// The measurement configuration.
    pub fn run(&self) -> &RunConfig {
        &self.run
    }

    /// The measurement configuration.
    #[deprecated(since = "0.2.0", note = "use run")]
    pub fn des(&self) -> &RunConfig {
        &self.run
    }
}

impl ExecutionBackend for SimBackend {
    fn name(&self) -> &str {
        "sim"
    }

    fn parallel_measure_hint(&self) -> bool {
        // DES runs are independent and seed-decorrelated by run index;
        // concurrent evaluation cannot perturb them.
        self.parallel
    }

    fn stage_count(&self) -> usize {
        self.app.stage_count()
    }

    fn classes(&self) -> Vec<PuClass> {
        self.soc.classes()
    }

    fn schedulable(&self, class: PuClass) -> bool {
        self.soc.pu(class).map(|p| p.schedulable()).unwrap_or(false)
    }

    fn baseline_classes(&self) -> Vec<PuClass> {
        // The paper's Table 3 pair: CPU-only on the big cores, GPU-only.
        vec![PuClass::BigCpu, PuClass::Gpu]
    }

    fn profile(&self, mode: ProfileMode) -> ProfilingTable {
        profile(&self.soc, &self.app, mode, &self.profiler)
    }

    fn measure(&self, schedule: &Schedule, run_index: u64) -> Result<Measurement, BtError> {
        // Decorrelate simulator noise across autotuning runs while staying
        // deterministic for a fixed (config, run_index) pair.
        let cfg = RunConfig {
            seed: self.run.seed.wrapping_add(run_index),
            ..self.run.clone()
        };
        let faults = (!self.faults.is_empty()).then_some(&self.faults);
        let report = simulate_schedule(&self.soc, &self.app, schedule, &cfg, faults)?;
        let (submitted, completed, dropped) = (report.submitted, report.completed, report.dropped);
        Measurement::from_run(report).ok_or(BtError::RunDegraded {
            submitted,
            completed,
            dropped,
        })
    }

    fn measure_batch(
        &self,
        schedule: &Schedule,
        run_indices: &[u64],
    ) -> Result<Vec<Measurement>, BtError> {
        if run_indices.is_empty() {
            return Ok(Vec::new());
        }
        // Same seed/fault derivation as `measure`, one lane per run index:
        // the batched engine guarantees per-lane bit-identity to the
        // scalar path, so this override is observationally equal to the
        // default loop — just priced in one structure-of-arrays pass.
        let faults = (!self.faults.is_empty()).then(|| self.faults.clone());
        let lanes: Vec<DesSeedSpec> = run_indices
            .iter()
            .map(|&i| DesSeedSpec {
                seed: self.run.seed.wrapping_add(i),
                faults: faults.clone(),
            })
            .collect();
        let reports = simulate_schedule_batch(&self.soc, &self.app, schedule, &self.run, &lanes)?;
        reports
            .into_iter()
            .map(|report| {
                let (submitted, completed, dropped) =
                    (report.submitted, report.completed, report.dropped);
                Measurement::from_run(report).ok_or(BtError::RunDegraded {
                    submitted,
                    completed,
                    dropped,
                })
            })
            .collect()
    }

    fn measure_dag(&self, schedule: &DagSchedule, run_index: u64) -> Result<Measurement, BtError> {
        let cfg = RunConfig {
            seed: self.run.seed.wrapping_add(run_index),
            ..self.run.clone()
        };
        let faults = (!self.faults.is_empty()).then_some(&self.faults);
        let report = simulate_dag_schedule(&self.soc, &self.app, schedule, &cfg, faults)?;
        let (submitted, completed, dropped) = (report.submitted, report.completed, report.dropped);
        Measurement::from_run(report).ok_or(BtError::RunDegraded {
            submitted,
            completed,
            dropped,
        })
    }

    fn measure_baseline(&self, class: PuClass) -> Result<Measurement, BtError> {
        let report = simulate_baseline(&self.soc, &self.app, class, &self.run)?;
        Ok(Measurement::from_run(report).expect("clean baseline runs complete every task"))
    }

    fn measure_multi(&self, tenants: &[CoTenant]) -> Result<Vec<Measurement>, BtError> {
        let specs = tenants
            .iter()
            .map(|t| {
                Ok(TenantSpec::new(
                    t.app.name.clone(),
                    to_chunk_specs(&t.app, &t.schedule)?,
                    t.run.clone(),
                ))
            })
            .collect::<Result<Vec<_>, BtError>>()?;
        let faults = (!self.faults.is_empty()).then_some(&self.faults);
        let multi = simulate_multi(&self.soc, &specs, faults)?;
        multi
            .tenants
            .into_iter()
            .map(|report| {
                let (submitted, completed, dropped) =
                    (report.submitted, report.completed, report.dropped);
                Measurement::from_run(report).ok_or(BtError::RunDegraded {
                    submitted,
                    completed,
                    dropped,
                })
            })
            .collect()
    }
}

/// The host backend: profiles real kernels with wall-clock timing and
/// executes schedules through the real dispatcher-thread runtime. Host
/// "PU classes" are thread-count tiers standing in for big/little
/// clusters.
///
/// With the framework's default
/// [`ProfileMode::InterferenceHeavy`](bt_profiler::ProfileMode), profiling
/// runs real background co-runners on every other tier while each cell is
/// measured — genuinely contended execution, so expect host profiling to
/// take tiers × stages × reps kernel executions *plus* the co-runner load,
/// and prefer small `reps` on a shared machine.
pub struct HostBackend<P: Send + 'static> {
    app: Application<P>,
    classes: HostClasses,
    threads: PuThreads,
    profiler: HostProfilerConfig,
    run: RunConfig,
}

impl<P: Send + 'static> std::fmt::Debug for HostBackend<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostBackend")
            .field("app", &self.app.name())
            .field("classes", &self.classes)
            .field("threads", &self.threads)
            .field("profiler", &self.profiler)
            .field("run", &self.run)
            .finish()
    }
}

impl<P: Send + 'static> HostBackend<P> {
    /// Binds the host runtime to a real application, with the default
    /// two-tier class layout for this machine.
    pub fn new(app: Application<P>) -> HostBackend<P> {
        HostBackend::with_classes(app, HostClasses::default_for_host())
    }

    /// Binds with an explicit tier layout; dispatcher worker counts are
    /// derived from the tiers (override with
    /// [`with_threads`](HostBackend::with_threads)).
    pub fn with_classes(app: Application<P>, classes: HostClasses) -> HostBackend<P> {
        let mut threads = PuThreads::uniform(1);
        for &(class, n) in classes.tiers() {
            threads = threads.with_class(class, n);
        }
        HostBackend {
            app,
            classes,
            threads,
            profiler: HostProfilerConfig::default(),
            run: RunConfig::default(),
        }
    }

    /// Overrides the per-class dispatcher worker counts.
    pub fn with_threads(mut self, threads: PuThreads) -> HostBackend<P> {
        self.threads = threads;
        self
    }

    /// Overrides the profiler configuration.
    pub fn with_profiler(mut self, profiler: HostProfilerConfig) -> HostBackend<P> {
        self.profiler = profiler;
        self
    }

    /// Overrides the per-measurement pipeline run configuration.
    pub fn with_run(mut self, run: RunConfig) -> HostBackend<P> {
        self.run = run;
        self
    }

    /// The bound application.
    pub fn app(&self) -> &Application<P> {
        &self.app
    }

    /// The tier layout.
    pub fn host_classes(&self) -> &HostClasses {
        &self.classes
    }
}

impl<P: Send + 'static> ExecutionBackend for HostBackend<P> {
    fn name(&self) -> &str {
        "host"
    }

    // `parallel_measure_hint` stays at the default `false`: host
    // measurements are wall-clock pipeline runs that own the machine's
    // cores. Running two candidates concurrently would make them contend
    // for CPUs and memory bandwidth, corrupting exactly the latencies
    // autotuning is trying to rank — the host sweep must stay serial.

    fn stage_count(&self) -> usize {
        self.app.stage_count()
    }

    fn classes(&self) -> Vec<PuClass> {
        self.classes.tiers().iter().map(|&(c, _)| c).collect()
    }

    fn schedulable(&self, class: PuClass) -> bool {
        self.classes.threads(class).is_some()
    }

    fn baseline_classes(&self) -> Vec<PuClass> {
        // Every tier is a meaningful homogeneous deployment on the host.
        self.classes()
    }

    fn profile(&self, mode: ProfileMode) -> ProfilingTable {
        profile_host(&self.app, &self.classes, mode, &self.profiler)
    }

    fn measure(&self, schedule: &Schedule, _run_index: u64) -> Result<Measurement, BtError> {
        // Wall-clock runs are naturally decorrelated; run_index is unused.
        let report = run_host(&self.app, schedule, &self.threads, &self.run, None)?;
        Ok(Measurement::from_run(report).expect("fail-fast host runs always measure"))
    }

    fn measure_dag(&self, schedule: &DagSchedule, _run_index: u64) -> Result<Measurement, BtError> {
        // Fail-fast only: the DAG relay has no resilient mode yet.
        let report = run_host_dag(&self.app, schedule, &self.threads, &self.run, None)?;
        Ok(Measurement::from_run(report).expect("fail-fast host runs always measure"))
    }

    fn measure_baseline(&self, class: PuClass) -> Result<Measurement, BtError> {
        // The host baseline is the whole application as one chunk on the
        // tier (the real runtime has no per-stage-sync dispatch mode; a
        // single dispatcher already serializes stages per task).
        let schedule = Schedule::homogeneous(self.app.stage_count(), class);
        let report = run_host(&self.app, &schedule, &self.threads, &self.run, None)?;
        Ok(Measurement::from_run(report).expect("fail-fast host runs always measure"))
    }
}

/// The MCU-class edge backend: the simulator bound to a
/// microcontroller-shaped device model
/// ([`devices::mcu_m7`](bt_soc::devices::mcu_m7)) —
/// single-issue in-order cores, kilobytes of SRAM against slow flash/SDRAM
/// standing in for the DRAM-contention analogue, and a DMA engine as the
/// async accelerator class.
///
/// Semantically this is [`SimBackend`] with two MCU-specific policies:
///
/// - its report name is `"mcu"`, so deployments and bench rows are
///   attributable to the edge substrate; and
/// - [`baseline_classes`](ExecutionBackend::baseline_classes) is only
///   `BigCpu` (the M7): a DMA engine cannot host whole applications, so
///   the paper's GPU-only baseline is meaningless here and the speedup
///   denominator is the realistic "everything on the big core" firmware.
#[derive(Debug, Clone)]
pub struct McuBackend {
    inner: SimBackend,
}

impl McuBackend {
    /// Binds the MCU simulator to a device model and an application model.
    pub fn new(soc: SocSpec, app: AppModel) -> McuBackend {
        McuBackend {
            inner: SimBackend::new(soc, app),
        }
    }

    /// Overrides the run configuration used for measurements.
    pub fn with_run(mut self, run: RunConfig) -> McuBackend {
        self.inner = self.inner.with_run(run);
        self
    }

    /// Overrides the profiler configuration.
    pub fn with_profiler(mut self, profiler: ProfilerConfig) -> McuBackend {
        self.inner = self.inner.with_profiler(profiler);
        self
    }

    /// Enables or disables concurrent measurement/profiling (on by
    /// default); see [`SimBackend::with_parallel`].
    pub fn with_parallel(mut self, parallel: bool) -> McuBackend {
        self.inner = self.inner.with_parallel(parallel);
        self
    }

    /// The bound device model.
    pub fn soc(&self) -> &SocSpec {
        self.inner.soc()
    }

    /// The bound application model.
    pub fn app(&self) -> &AppModel {
        self.inner.app()
    }
}

impl ExecutionBackend for McuBackend {
    fn name(&self) -> &str {
        "mcu"
    }

    fn parallel_measure_hint(&self) -> bool {
        self.inner.parallel_measure_hint()
    }

    fn stage_count(&self) -> usize {
        self.inner.stage_count()
    }

    fn classes(&self) -> Vec<PuClass> {
        self.inner.classes()
    }

    fn schedulable(&self, class: PuClass) -> bool {
        self.inner.schedulable(class)
    }

    fn baseline_classes(&self) -> Vec<PuClass> {
        // No GPU-only row: the DMA engine moves bytes, it cannot host
        // whole applications the way a mobile GPU can.
        vec![PuClass::BigCpu]
    }

    fn profile(&self, mode: ProfileMode) -> ProfilingTable {
        self.inner.profile(mode)
    }

    fn measure(&self, schedule: &Schedule, run_index: u64) -> Result<Measurement, BtError> {
        self.inner.measure(schedule, run_index)
    }

    fn measure_batch(
        &self,
        schedule: &Schedule,
        run_indices: &[u64],
    ) -> Result<Vec<Measurement>, BtError> {
        self.inner.measure_batch(schedule, run_indices)
    }

    fn measure_dag(&self, schedule: &DagSchedule, run_index: u64) -> Result<Measurement, BtError> {
        self.inner.measure_dag(schedule, run_index)
    }

    fn measure_baseline(&self, class: PuClass) -> Result<Measurement, BtError> {
        self.inner.measure_baseline(class)
    }

    fn measure_multi(&self, tenants: &[CoTenant]) -> Result<Vec<Measurement>, BtError> {
        self.inner.measure_multi(tenants)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_kernels::apps;
    use bt_soc::devices;

    fn sim() -> SimBackend {
        let app = apps::octree_app(apps::OctreeConfig::default()).model();
        SimBackend::new(devices::pixel_7a(), app)
    }

    #[test]
    fn sim_backend_reports_device_shape() {
        let b = sim();
        assert_eq!(b.name(), "sim");
        assert_eq!(b.stage_count(), 7);
        assert!(b.classes().contains(&PuClass::Gpu));
        assert!(b.schedulable(PuClass::BigCpu));
        assert_eq!(b.baseline_classes(), vec![PuClass::BigCpu, PuClass::Gpu]);
    }

    #[test]
    fn sim_measure_decorrelates_by_run_index_but_is_deterministic() {
        let b = sim();
        let s = Schedule::homogeneous(7, PuClass::BigCpu);
        let a0 = b.measure(&s, 0).unwrap();
        let a0_again = b.measure(&s, 0).unwrap();
        let a1 = b.measure(&s, 1).unwrap();
        assert_eq!(a0.latency.as_f64(), a0_again.latency.as_f64());
        assert_ne!(a0.latency.as_f64(), a1.latency.as_f64());
    }

    #[test]
    fn sim_measure_batch_matches_scalar_measures() {
        let b = sim();
        let s = Schedule::homogeneous(7, PuClass::BigCpu);
        let indices = [0u64, 3, 7, 3];
        let batch = b.measure_batch(&s, &indices).unwrap();
        assert_eq!(batch.len(), indices.len());
        for (&i, got) in indices.iter().zip(&batch) {
            let want = b.measure(&s, i).unwrap();
            assert_eq!(format!("{want:?}"), format!("{got:?}"));
        }
    }

    #[test]
    fn sim_measure_batch_carries_backend_faults() {
        let faults = bt_soc::FaultSpec {
            stragglers: vec![bt_soc::Straggler {
                chunk: 0,
                task: 2,
                factor: 3.0,
            }],
            ..bt_soc::FaultSpec::default()
        };
        let b = sim().with_faults(faults);
        let s = Schedule::homogeneous(7, PuClass::BigCpu);
        let batch = b.measure_batch(&s, &[0, 5]).unwrap();
        for (i, got) in [0u64, 5].into_iter().zip(&batch) {
            let want = b.measure(&s, i).unwrap();
            assert_eq!(format!("{want:?}"), format!("{got:?}"));
        }
    }

    #[test]
    fn sim_measure_batch_empty_is_empty() {
        let b = sim();
        let s = Schedule::homogeneous(7, PuClass::BigCpu);
        assert!(b.measure_batch(&s, &[]).unwrap().is_empty());
    }

    #[test]
    fn sim_measure_rejects_stage_mismatch() {
        let b = sim();
        let s = Schedule::homogeneous(3, PuClass::BigCpu);
        assert!(matches!(
            b.measure(&s, 0),
            Err(BtError::Pipeline(
                bt_pipeline::PipelineError::StageMismatch {
                    app: 7,
                    schedule: 3
                }
            ))
        ));
    }

    #[test]
    fn unpinnable_class_is_unschedulable_on_sim() {
        let app = apps::octree_app(apps::OctreeConfig::default()).model();
        let b = SimBackend::new(devices::oneplus_11(), app);
        assert!(!b.schedulable(PuClass::LittleCpu), "OnePlus little cores");
        assert!(b.schedulable(PuClass::BigCpu));
    }

    #[test]
    fn sim_parallel_hint_defaults_on_and_toggles() {
        let b = sim();
        assert!(b.parallel_measure_hint());
        assert!(!b.with_parallel(false).parallel_measure_hint());
    }

    #[test]
    fn sim_measure_dag_matches_linear_on_chain_schedules() {
        let b = sim();
        let s = Schedule::new(vec![
            PuClass::BigCpu,
            PuClass::BigCpu,
            PuClass::MediumCpu,
            PuClass::Gpu,
            PuClass::Gpu,
            PuClass::Gpu,
            PuClass::LittleCpu,
        ])
        .unwrap();
        let dag = DagSchedule::from_schedule(&s);
        let linear = b.measure(&s, 3).unwrap();
        let via_dag = b.measure_dag(&dag, 3).unwrap();
        assert_eq!(linear.latency.as_f64(), via_dag.latency.as_f64());
        assert_eq!(linear.throughput_hz, via_dag.throughput_hz);
    }

    #[test]
    fn sim_measure_dag_prices_branching_schedules() {
        let app = apps::perception_app(apps::PerceptionConfig::default()).model();
        let b = SimBackend::new(devices::pixel_7a(), app.clone());
        let s = DagSchedule::new(
            vec![
                PuClass::LittleCpu,
                PuClass::Gpu,
                PuClass::Gpu,
                PuClass::BigCpu,
                PuClass::BigCpu,
                PuClass::MediumCpu,
                PuClass::MediumCpu,
            ],
            &app.task_graph(),
        )
        .unwrap();
        let m0 = b.measure_dag(&s, 0).unwrap();
        let m0_again = b.measure_dag(&s, 0).unwrap();
        let m1 = b.measure_dag(&s, 1).unwrap();
        assert_eq!(m0.latency.as_f64(), m0_again.latency.as_f64());
        assert_ne!(m0.latency.as_f64(), m1.latency.as_f64());
    }

    #[test]
    fn sim_measure_dag_rejects_wrong_graph() {
        // Octree-bound backend, perception-graph schedule: typed error.
        let b = sim();
        let perception = apps::perception_app(apps::PerceptionConfig::default()).model();
        let s = DagSchedule::new(vec![PuClass::BigCpu; 7], &perception.task_graph()).unwrap();
        assert!(matches!(
            b.measure_dag(&s, 0),
            Err(BtError::Pipeline(bt_pipeline::PipelineError::GraphMismatch))
        ));
    }

    #[test]
    fn mcu_backend_shape_and_baselines() {
        let app = apps::sensor_app(apps::SensorConfig::default()).model();
        let b = McuBackend::new(devices::mcu_m7(), app);
        assert_eq!(b.name(), "mcu");
        assert_eq!(b.stage_count(), 4);
        assert!(b.schedulable(PuClass::BigCpu), "M7");
        assert!(b.schedulable(PuClass::LittleCpu), "M4");
        assert!(b.schedulable(PuClass::Gpu), "DMA engine");
        assert_eq!(
            b.baseline_classes(),
            vec![PuClass::BigCpu],
            "no GPU-only baseline: the DMA engine cannot host whole apps"
        );
    }

    #[test]
    fn mcu_measure_delegates_to_simulator_and_is_deterministic() {
        let app = apps::sensor_app(apps::SensorConfig::default()).model();
        let b = McuBackend::new(devices::mcu_m7(), app.clone());
        let sim = SimBackend::new(devices::mcu_m7(), app);
        let s = Schedule::homogeneous(4, PuClass::BigCpu);
        let mcu0 = b.measure(&s, 0).unwrap();
        let sim0 = sim.measure(&s, 0).unwrap();
        assert_eq!(mcu0.latency.as_f64(), sim0.latency.as_f64());
        let batch = b.measure_batch(&s, &[0, 1]).unwrap();
        assert_eq!(batch[0].latency.as_f64(), mcu0.latency.as_f64());
        assert_ne!(batch[1].latency.as_f64(), mcu0.latency.as_f64());
        let baseline = b.measure_baseline(PuClass::BigCpu).unwrap();
        assert!(baseline.latency.as_f64() > 0.0);
    }

    #[test]
    fn host_backend_shape_matches_tiers() {
        let app = apps::octree_app(apps::OctreeConfig {
            points: 500,
            shape: bt_kernels::pointcloud::CloudShape::Uniform,
            max_depth: 4,
            seed: 1,
        });
        let b = HostBackend::with_classes(
            app,
            HostClasses::new(vec![(PuClass::BigCpu, 2), (PuClass::LittleCpu, 1)]),
        );
        assert_eq!(b.name(), "host");
        assert_eq!(b.stage_count(), 7);
        assert_eq!(b.classes(), vec![PuClass::BigCpu, PuClass::LittleCpu]);
        assert!(b.schedulable(PuClass::LittleCpu));
        assert!(!b.schedulable(PuClass::Gpu), "no GPU tier on the host");
        assert_eq!(b.baseline_classes(), b.classes());
        assert!(format!("{b:?}").contains("HostBackend"));
    }
}
