//! The full BetterTogether loop against *real* execution: wall-clock host
//! profiling, schedule optimization, and autotuning through the actual
//! dispatcher-thread runtime of `bt-pipeline`.
//!
//! This is the paper's deployment path with the simulator removed — the
//! same code a user would run on a physical UMA device, exercised here on
//! the development host (whose "clusters" are thread-count tiers).

use bt_kernels::Application;
use bt_pipeline::{run_host, HostReport, HostRunConfig, PuThreads, Schedule};
use bt_profiler::host::{profile_host, HostClasses, HostProfilerConfig};
use bt_profiler::{ProfileMode, ProfilingTable};
use bt_solver::enumerate::latency_candidates_exact;
use bt_solver::ScheduleProblem;

use crate::BtError;

/// Configuration of a host framework run.
#[derive(Debug, Clone)]
pub struct HostFrameworkConfig {
    /// Profiling mode (interference-heavy runs real background load).
    pub mode: ProfileMode,
    /// Profiler repetitions.
    pub profiler: HostProfilerConfig,
    /// Candidates to autotune (the paper's 𝒦; keep small on a host —
    /// every candidate executes for real).
    pub candidates: usize,
    /// Pipeline run configuration per candidate.
    pub run: HostRunConfig,
}

impl Default for HostFrameworkConfig {
    fn default() -> HostFrameworkConfig {
        HostFrameworkConfig {
            mode: ProfileMode::Isolated,
            profiler: HostProfilerConfig::default(),
            candidates: 4,
            run: HostRunConfig {
                tasks: 10,
                warmup: 2,
                ..HostRunConfig::default()
            },
        }
    }
}

/// Result of a host framework run.
#[derive(Debug)]
pub struct HostDeployment {
    /// The measured host profiling table.
    pub table: ProfilingTable,
    /// Candidate schedules in predicted order, with their real-execution
    /// reports.
    pub candidates: Vec<(Schedule, HostReport)>,
    /// Index of the measured-best candidate.
    pub best_index: usize,
}

impl HostDeployment {
    /// The measured-best schedule.
    pub fn best_schedule(&self) -> &Schedule {
        &self.candidates[self.best_index].0
    }

    /// The measured-best report.
    pub fn best_report(&self) -> &HostReport {
        &self.candidates[self.best_index].1
    }
}

/// Runs profile → optimize → autotune entirely on the host: the profiler
/// times the real kernels, the optimizer solves over the measured table,
/// and every candidate executes through the real dispatcher runtime.
///
/// # Errors
///
/// Returns [`BtError`] if the measured table yields no valid schedule or a
/// pipeline run fails.
pub fn run_host_framework<P: Send + 'static>(
    app: &Application<P>,
    classes: &HostClasses,
    threads: &PuThreads,
    cfg: &HostFrameworkConfig,
) -> Result<HostDeployment, BtError> {
    let table = profile_host(app, classes, cfg.mode, &cfg.profiler);
    let problem = ScheduleProblem::new(table.to_matrix())?;
    let ranked = latency_candidates_exact(&problem, cfg.candidates);
    if ranked.is_empty() {
        return Err(BtError::NoCandidates);
    }

    let mut candidates = Vec::with_capacity(ranked.len());
    for eval in &ranked {
        let schedule = Schedule::from_class_indices(&eval.assignment, table.classes())
            .expect("enumerator output satisfies contiguity");
        let report = run_host(app, &schedule, threads, &cfg.run)?;
        candidates.push((schedule, report));
    }
    let best_index = candidates
        .iter()
        .enumerate()
        .min_by(|a, b| {
            a.1 .1
                .time_per_task
                .partial_cmp(&b.1 .1.time_per_task)
                .expect("durations are comparable")
        })
        .map(|(i, _)| i)
        .expect("non-empty");
    Ok(HostDeployment {
        table,
        candidates,
        best_index,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_kernels::apps::{self, OctreeConfig};
    use bt_kernels::pointcloud::CloudShape;
    use bt_soc::PuClass;

    #[test]
    fn host_framework_end_to_end_on_real_kernels() {
        let app = apps::octree_app(OctreeConfig {
            points: 2_000,
            shape: CloudShape::Uniform,
            max_depth: 5,
            seed: 3,
        });
        let classes = HostClasses::new(vec![(PuClass::BigCpu, 2), (PuClass::LittleCpu, 1)]);
        let threads = PuThreads::uniform(2).with_class(PuClass::LittleCpu, 1);
        let cfg = HostFrameworkConfig {
            profiler: HostProfilerConfig { reps: 1, warmup: 0 },
            candidates: 3,
            run: HostRunConfig {
                tasks: 4,
                warmup: 1,
                ..HostRunConfig::default()
            },
            ..HostFrameworkConfig::default()
        };
        let d = run_host_framework(&app, &classes, &threads, &cfg).expect("runs");
        assert_eq!(d.table.stages().len(), 7);
        assert!(!d.candidates.is_empty() && d.candidates.len() <= 3);
        assert!(d.best_report().time_per_task.as_secs_f64() > 0.0);
        assert_eq!(d.best_schedule().stage_count(), 7);
        // The best index really is the measured minimum.
        for (_, r) in &d.candidates {
            assert!(d.best_report().time_per_task <= r.time_per_task);
        }
    }
}
