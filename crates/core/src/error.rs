use std::error::Error;
use std::fmt;

/// Errors produced by the BetterTogether framework.
#[derive(Debug)]
#[non_exhaustive]
pub enum BtError {
    /// The schedule optimizer could not be constructed.
    Problem(bt_solver::ProblemError),
    /// The DAG schedule optimizer could not be constructed.
    Dag(bt_solver::DagError),
    /// A DAG-solver assignment could not be realized as an executable
    /// pipeline schedule.
    DagSchedule(bt_pipeline::DagScheduleError),
    /// The simulator rejected a configuration.
    Soc(bt_soc::SocError),
    /// The host pipeline rejected a configuration.
    Pipeline(bt_pipeline::PipelineError),
    /// No schedule survived optimization / filtering.
    NoCandidates,
    /// A (possibly cached) plan disagrees with the backend on stage count.
    PlanStageMismatch {
        /// Stages the plan was built for.
        plan: usize,
        /// Stages of the backend's bound application.
        backend: usize,
    },
    /// A (possibly cached) plan schedules a class the backend cannot host.
    PlanClassUnavailable(bt_soc::PuClass),
    /// A faulted run degraded so far that no steady-state measurement
    /// exists (every measured-window task was dropped).
    RunDegraded {
        /// Tasks admitted into the pipeline.
        submitted: u64,
        /// Tasks that completed.
        completed: u64,
        /// Tasks lost to injected faults.
        dropped: u64,
    },
    /// A fault-injection wrapper deliberately failed this measurement.
    InjectedFault {
        /// The autotuning run index the fault was armed for.
        run_index: u64,
    },
    /// The backend cannot execute fork/join (DAG) schedules (see
    /// [`crate::ExecutionBackend::measure_dag`]).
    DagUnsupported {
        /// Name of the refusing backend.
        backend: String,
    },
    /// The backend cannot co-run multiple tenants (only virtual-time
    /// substrates co-schedule tenant timelines; see
    /// [`crate::ExecutionBackend::measure_multi`]).
    MultiTenantUnsupported {
        /// Name of the refusing backend.
        backend: String,
    },
}

impl fmt::Display for BtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BtError::Problem(e) => write!(f, "schedule problem: {e}"),
            BtError::Dag(e) => write!(f, "DAG schedule problem: {e}"),
            BtError::DagSchedule(e) => write!(f, "DAG schedule: {e}"),
            BtError::Soc(e) => write!(f, "device model: {e}"),
            BtError::Pipeline(e) => write!(f, "pipeline: {e}"),
            BtError::NoCandidates => f.write_str("no candidate schedule satisfies the constraints"),
            BtError::PlanStageMismatch { plan, backend } => write!(
                f,
                "plan was built for {plan} stages but the backend's application has {backend}"
            ),
            BtError::PlanClassUnavailable(class) => {
                write!(
                    f,
                    "plan schedules PU class {class} which the backend cannot host"
                )
            }
            BtError::RunDegraded {
                submitted,
                completed,
                dropped,
            } => write!(
                f,
                "faulted run degraded past measurement: {completed}/{submitted} tasks completed, {dropped} dropped"
            ),
            BtError::InjectedFault { run_index } => {
                write!(f, "fault injected into measurement run {run_index}")
            }
            BtError::DagUnsupported { backend } => {
                write!(f, "backend '{backend}' cannot execute fork/join schedules")
            }
            BtError::MultiTenantUnsupported { backend } => {
                write!(f, "backend '{backend}' cannot measure multi-tenant co-runs")
            }
        }
    }
}

impl Error for BtError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BtError::Problem(e) => Some(e),
            BtError::Dag(e) => Some(e),
            BtError::DagSchedule(e) => Some(e),
            BtError::Soc(e) => Some(e),
            BtError::Pipeline(e) => Some(e),
            _ => None,
        }
    }
}

impl From<bt_solver::ProblemError> for BtError {
    fn from(e: bt_solver::ProblemError) -> BtError {
        BtError::Problem(e)
    }
}

impl From<bt_solver::DagError> for BtError {
    fn from(e: bt_solver::DagError) -> BtError {
        BtError::Dag(e)
    }
}

impl From<bt_pipeline::DagScheduleError> for BtError {
    fn from(e: bt_pipeline::DagScheduleError) -> BtError {
        BtError::DagSchedule(e)
    }
}

impl From<bt_soc::SocError> for BtError {
    fn from(e: bt_soc::SocError) -> BtError {
        BtError::Soc(e)
    }
}

impl From<bt_pipeline::PipelineError> for BtError {
    fn from(e: bt_pipeline::PipelineError) -> BtError {
        BtError::Pipeline(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = BtError::from(bt_soc::SocError::EmptyDevice);
        assert!(e.to_string().contains("device model"));
        assert!(e.source().is_some());
        assert!(BtError::NoCandidates.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BtError>();
    }
}
