//! Nightly fault-matrix harness: random fault plans against one
//! (device, app) cell, checking the simulator's resilience invariants.
//!
//! For every seed the harness generates a [`FaultPlan`], runs both the
//! static pipeline simulator and the dynamic scheduler under it, and
//! checks:
//!
//! 1. **Termination** — the run returns instead of deadlocking (enforced
//!    by reaching the assertions at all).
//! 2. **Conservation** — `completed + dropped == submitted`.
//! 3. **Determinism** — replaying the same plan yields a bit-identical
//!    outcome (`Debug`-representation equality).
//!
//! Chain-shaped cells price all static runs through the batched
//! structure-of-arrays engine: every seed's fault plan becomes one lane of
//! a single `simulate_schedule_batch` pass, replayed as a second batched
//! pass (determinism) and cross-checked lane-by-lane against the scalar
//! engine (batch parity — a fourth invariant the per-seed sweep could not
//! express). The harness prints the batched-vs-scalar static wall-clock so
//! the nightly workflow can surface the reduction.
//!
//! A violated invariant writes the failing plan to `--out` as JSON (the
//! CI workflow uploads these as artifacts for local replay) and flips the
//! exit code to 1 after the sweep completes.
//!
//! ```text
//! fault_matrix --device pixel_7a --app octree --seeds 10 --out target/fault-matrix
//! ```

use std::path::PathBuf;
use std::time::{Duration, Instant};

use bt_core::{optimize_dag, BetterTogether, OptimizerConfig};
use bt_faults::{FaultDomain, FaultPlan};
use bt_kernels::{apps, AppModel};
use bt_pipeline::{
    simulate_dag_schedule, simulate_schedule, simulate_schedule_batch, DagSchedule, Schedule,
};
use bt_soc::des_dynamic::{simulate_dynamic, simulate_dynamic_dag, DynamicPolicy};
use bt_soc::{devices, DesSeedSpec, RunConfig, RunReport, SocError, SocSpec};

#[derive(serde::Serialize)]
struct Failure {
    device: String,
    app: String,
    seed: u64,
    invariant: String,
    detail: String,
    plan: FaultPlan,
}

fn device_by_name(name: &str) -> Option<SocSpec> {
    match name {
        "pixel_7a" => Some(devices::pixel_7a()),
        "oneplus_11" => Some(devices::oneplus_11()),
        "jetson_orin_nano" => Some(devices::jetson_orin_nano()),
        "jetson_orin_nano_lp" => Some(devices::jetson_orin_nano_lp()),
        _ => None,
    }
}

fn app_by_name(name: &str) -> Option<AppModel> {
    match name {
        "octree" => Some(apps::octree_app(apps::OctreeConfig::default()).model()),
        "alexnet_dense" => Some(apps::alexnet_dense_app(apps::AlexNetConfig::default()).model()),
        "alexnet_sparse" => Some(apps::alexnet_sparse_app(apps::AlexNetConfig::default()).model()),
        "perception" => Some(apps::perception_app(apps::PerceptionConfig::default()).model()),
        _ => None,
    }
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// The static pipeline under test: a chain schedule through the chain
/// engine, or — for branching apps — a fork/join schedule through the DAG
/// engine.
enum StaticPipeline {
    Chain(Schedule),
    Dag(DagSchedule),
}

impl StaticPipeline {
    fn chunk_count(&self) -> usize {
        match self {
            StaticPipeline::Chain(s) => s.chunks().len(),
            StaticPipeline::Dag(s) => s.chunks().len(),
        }
    }
}

struct Cell {
    soc: SocSpec,
    app: AppModel,
    pipeline: StaticPipeline,
    cfg: RunConfig,
    domain: FaultDomain,
}

impl Cell {
    fn run_static(
        &self,
        faults: Option<&bt_soc::FaultSpec>,
    ) -> Result<RunReport, bt_pipeline::PipelineError> {
        match &self.pipeline {
            StaticPipeline::Chain(s) => {
                simulate_schedule(&self.soc, &self.app, s, &self.cfg, faults)
            }
            StaticPipeline::Dag(s) => {
                simulate_dag_schedule(&self.soc, &self.app, s, &self.cfg, faults)
            }
        }
    }

    fn run_dynamic(
        &self,
        policy: DynamicPolicy,
        faults: Option<&bt_soc::FaultSpec>,
    ) -> Result<RunReport, SocError> {
        let works = self.app.works();
        let graph = self.app.task_graph();
        if graph.is_chain() {
            simulate_dynamic(&self.soc, &works, &self.cfg, policy, faults)
        } else {
            simulate_dynamic_dag(&self.soc, &works, graph.deps(), &self.cfg, policy, faults)
        }
    }
}

fn build_cell(device: &str, app_name: &str) -> Result<Cell, String> {
    let soc = device_by_name(device).ok_or_else(|| format!("unknown device '{device}'"))?;
    let app = app_by_name(app_name).ok_or_else(|| format!("unknown app '{app_name}'"))?;
    // Chain apps go through the proven chain planner; branching apps take
    // the DAG optimizer's predicted best so the sweep exercises the
    // fork/join engine.
    let pipeline = if app.task_graph().is_chain() {
        let plan = BetterTogether::new(soc.clone(), app.clone())
            .plan()
            .map_err(|e| format!("planning failed: {e}"))?;
        StaticPipeline::Chain(
            plan.predicted_best()
                .ok_or("empty candidate list")?
                .schedule
                .clone(),
        )
    } else {
        let table = BetterTogether::new(soc.clone(), app.clone()).profile();
        let cands = optimize_dag(
            &soc,
            &table,
            &app.task_graph(),
            &OptimizerConfig::with_threshold(0.0),
        )
        .map_err(|e| format!("DAG planning failed: {e}"))?;
        StaticPipeline::Dag(cands[0].schedule.clone())
    };
    let cfg = RunConfig::default();
    // Size the fault domain from an unfaulted reference run so onsets land
    // inside (and shortly after) the real execution window.
    let cell = Cell {
        soc,
        app,
        pipeline,
        cfg,
        domain: FaultDomain::default(),
    };
    let reference = cell
        .run_static(None)
        .map_err(|e| format!("reference run failed: {e}"))?;
    let domain = FaultDomain {
        classes: cell.soc.schedulable_classes(),
        chunks: cell.pipeline.chunk_count(),
        stages: cell.app.stage_count(),
        tasks: cell.cfg.tasks + cell.cfg.warmup,
        horizon_us: reference.expect_stats().makespan.as_f64() * 1.5,
        ..FaultDomain::default()
    };
    Ok(Cell { domain, ..cell })
}

/// The static runs of every seed in one batched sweep: the first pass, a
/// bit-identical replay pass, and the scalar engine's per-seed reference
/// (timed for the wall-clock comparison the workflow surfaces).
struct StaticBatch {
    first: Vec<RunReport>,
    replay: Vec<RunReport>,
    scalar: Vec<Result<RunReport, String>>,
    batched_elapsed: Duration,
    scalar_elapsed: Duration,
}

/// Prices the static arm of all `seeds` in one structure-of-arrays pass
/// (chain cells only — the batch engine has no fork/join mode yet).
fn run_static_batch(cell: &Cell, seeds: u64) -> Option<Result<StaticBatch, String>> {
    let StaticPipeline::Chain(schedule) = &cell.pipeline else {
        return None;
    };
    let lanes: Vec<DesSeedSpec> = (0..seeds)
        .map(|seed| DesSeedSpec {
            seed: cell.cfg.seed,
            faults: Some(FaultPlan::random(seed, &cell.domain).to_spec()),
        })
        .collect();
    let batch = |lanes: &[DesSeedSpec]| {
        simulate_schedule_batch(&cell.soc, &cell.app, schedule, &cell.cfg, lanes)
            .map_err(|e| format!("batched static pass failed: {e}"))
    };
    let t0 = Instant::now();
    let first = match batch(&lanes) {
        Ok(r) => r,
        Err(e) => return Some(Err(e)),
    };
    let batched_elapsed = t0.elapsed();
    let replay = match batch(&lanes) {
        Ok(r) => r,
        Err(e) => return Some(Err(e)),
    };
    let t1 = Instant::now();
    let scalar = lanes
        .iter()
        .map(|lane| {
            simulate_schedule(
                &cell.soc,
                &cell.app,
                schedule,
                &cell.cfg,
                lane.faults.as_ref(),
            )
            .map_err(|e| e.to_string())
        })
        .collect();
    let scalar_elapsed = t1.elapsed();
    Some(Ok(StaticBatch {
        first,
        replay,
        scalar,
        batched_elapsed,
        scalar_elapsed,
    }))
}

fn check_static(a: &RunReport, replay: &RunReport) -> Result<(), (String, String)> {
    if a.completed + a.dropped != a.submitted {
        return Err((
            "static-conservation".into(),
            format!(
                "completed {} + dropped {} != submitted {}",
                a.completed, a.dropped, a.submitted
            ),
        ));
    }
    if format!("{a:?}") != format!("{replay:?}") {
        return Err(("static-determinism".into(), "replay diverged".into()));
    }
    Ok(())
}

fn check_seed(cell: &Cell, seed: u64, batch: Option<&StaticBatch>) -> Result<(), (String, String)> {
    let plan = FaultPlan::random(seed, &cell.domain);
    let spec = plan.to_spec();

    match batch {
        Some(b) => {
            let i = seed as usize;
            check_static(&b.first[i], &b.replay[i])?;
            let scalar = b.scalar[i]
                .as_ref()
                .map_err(|e| ("static-run".to_string(), e.clone()))?;
            if format!("{:?}", b.first[i]) != format!("{scalar:?}") {
                return Err((
                    "static-batch-parity".into(),
                    "batched lane diverged from the scalar engine".into(),
                ));
            }
        }
        None => {
            let a = cell
                .run_static(Some(&spec))
                .map_err(|e| ("static-run".into(), e.to_string()))?;
            let b = cell
                .run_static(Some(&spec))
                .map_err(|e| ("static-run".into(), e.to_string()))?;
            check_static(&a, &b)?;
        }
    }

    for policy in [DynamicPolicy::Fifo, DynamicPolicy::BestFit] {
        let run_dyn = || cell.run_dynamic(policy, Some(&spec));
        let a = run_dyn().map_err(|e| ("dynamic-run".into(), e.to_string()))?;
        let b = run_dyn().map_err(|e| ("dynamic-run".into(), e.to_string()))?;
        if a.completed + a.dropped != a.submitted {
            return Err((
                format!("dynamic-conservation-{policy:?}"),
                format!(
                    "completed {} + dropped {} != submitted {}",
                    a.completed, a.dropped, a.submitted
                ),
            ));
        }
        if format!("{a:?}") != format!("{b:?}") {
            return Err((
                format!("dynamic-determinism-{policy:?}"),
                "replay diverged".into(),
            ));
        }
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let device = arg_value(&args, "--device").unwrap_or_else(|| "pixel_7a".into());
    let app_name = arg_value(&args, "--app").unwrap_or_else(|| "octree".into());
    let seeds: u64 = arg_value(&args, "--seeds")
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let out: PathBuf = arg_value(&args, "--out")
        .unwrap_or_else(|| "target/fault-matrix".into())
        .into();

    let cell = match build_cell(&device, &app_name) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("fault_matrix: {e}");
            std::process::exit(2);
        }
    };
    std::fs::create_dir_all(&out).expect("create output directory");

    let static_batch = match run_static_batch(&cell, seeds) {
        Some(Ok(b)) => {
            let batched = b.batched_elapsed.as_secs_f64() * 1e3;
            let scalar = b.scalar_elapsed.as_secs_f64() * 1e3;
            let speedup = if batched > 0.0 { scalar / batched } else { 0.0 };
            println!(
                "static-batch {device}/{app_name}: {seeds} lanes in one pass: \
                 {batched:.1} ms batched vs {scalar:.1} ms scalar ({speedup:.2}x)"
            );
            Some(b)
        }
        Some(Err(e)) => {
            eprintln!("fault_matrix: {e}");
            std::process::exit(2);
        }
        None => {
            println!("static-batch {device}/{app_name}: n/a (fork/join cell, scalar static path)");
            None
        }
    };

    let mut failures = 0u32;
    for seed in 0..seeds {
        match check_seed(&cell, seed, static_batch.as_ref()) {
            Ok(()) => println!("ok   {device}/{app_name} seed {seed}"),
            Err((invariant, detail)) => {
                failures += 1;
                println!("FAIL {device}/{app_name} seed {seed}: {invariant}: {detail}");
                let failure = Failure {
                    device: device.clone(),
                    app: app_name.clone(),
                    seed,
                    invariant,
                    detail,
                    plan: FaultPlan::random(seed, &cell.domain),
                };
                let path = out.join(format!("fault-{device}-{app_name}-seed{seed}.json"));
                let json = serde_json::to_string_pretty(&failure).expect("serializable failure");
                std::fs::write(&path, json).expect("write failing plan");
                eprintln!("     failing plan written to {}", path.display());
            }
        }
    }
    println!(
        "fault_matrix: {device}/{app_name}: {}/{seeds} seeds passed",
        seeds - u64::from(failures)
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
