//! Nightly fault-matrix harness: random fault plans against one
//! (device, app) cell, checking the simulator's resilience invariants.
//!
//! For every seed the harness generates a [`FaultPlan`], runs both the
//! static pipeline simulator and the dynamic scheduler under it, and
//! checks:
//!
//! 1. **Termination** — the run returns instead of deadlocking (enforced
//!    by reaching the assertions at all).
//! 2. **Conservation** — `completed + dropped == submitted`.
//! 3. **Determinism** — replaying the same plan yields a bit-identical
//!    outcome (`Debug`-representation equality).
//!
//! A violated invariant writes the failing plan to `--out` as JSON (the
//! CI workflow uploads these as artifacts for local replay) and flips the
//! exit code to 1 after the sweep completes.
//!
//! ```text
//! fault_matrix --device pixel_7a --app octree --seeds 10 --out target/fault-matrix
//! ```

use std::path::PathBuf;

use bt_core::BetterTogether;
use bt_faults::{FaultDomain, FaultPlan};
use bt_kernels::{apps, AppModel};
use bt_pipeline::{simulate_schedule, Schedule};
use bt_soc::des_dynamic::{simulate_dynamic, DynamicPolicy};
use bt_soc::{devices, RunConfig, SocSpec};

#[derive(serde::Serialize)]
struct Failure {
    device: String,
    app: String,
    seed: u64,
    invariant: String,
    detail: String,
    plan: FaultPlan,
}

fn device_by_name(name: &str) -> Option<SocSpec> {
    match name {
        "pixel_7a" => Some(devices::pixel_7a()),
        "oneplus_11" => Some(devices::oneplus_11()),
        "jetson_orin_nano" => Some(devices::jetson_orin_nano()),
        "jetson_orin_nano_lp" => Some(devices::jetson_orin_nano_lp()),
        _ => None,
    }
}

fn app_by_name(name: &str) -> Option<AppModel> {
    match name {
        "octree" => Some(apps::octree_app(apps::OctreeConfig::default()).model()),
        "alexnet_dense" => Some(apps::alexnet_dense_app(apps::AlexNetConfig::default()).model()),
        "alexnet_sparse" => Some(apps::alexnet_sparse_app(apps::AlexNetConfig::default()).model()),
        _ => None,
    }
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

struct Cell {
    soc: SocSpec,
    app: AppModel,
    schedule: Schedule,
    cfg: RunConfig,
    domain: FaultDomain,
}

fn build_cell(device: &str, app_name: &str) -> Result<Cell, String> {
    let soc = device_by_name(device).ok_or_else(|| format!("unknown device '{device}'"))?;
    let app = app_by_name(app_name).ok_or_else(|| format!("unknown app '{app_name}'"))?;
    let plan = BetterTogether::new(soc.clone(), app.clone())
        .plan()
        .map_err(|e| format!("planning failed: {e}"))?;
    let schedule = plan
        .predicted_best()
        .ok_or("empty candidate list")?
        .schedule
        .clone();
    let cfg = RunConfig::default();
    // Size the fault domain from an unfaulted reference run so onsets land
    // inside (and shortly after) the real execution window.
    let reference = simulate_schedule(&soc, &app, &schedule, &cfg, None)
        .map_err(|e| format!("reference run failed: {e}"))?;
    let domain = FaultDomain {
        classes: soc.schedulable_classes(),
        chunks: schedule.chunks().len(),
        stages: app.stage_count(),
        tasks: cfg.tasks + cfg.warmup,
        horizon_us: reference.expect_stats().makespan.as_f64() * 1.5,
        ..FaultDomain::default()
    };
    Ok(Cell {
        soc,
        app,
        schedule,
        cfg,
        domain,
    })
}

fn check_seed(cell: &Cell, seed: u64) -> Result<(), (String, String)> {
    let plan = FaultPlan::random(seed, &cell.domain);
    let spec = plan.to_spec();

    let run_static =
        || simulate_schedule(&cell.soc, &cell.app, &cell.schedule, &cell.cfg, Some(&spec));
    let a = run_static().map_err(|e| ("static-run".into(), e.to_string()))?;
    let b = run_static().map_err(|e| ("static-run".into(), e.to_string()))?;
    if a.completed + a.dropped != a.submitted {
        return Err((
            "static-conservation".into(),
            format!(
                "completed {} + dropped {} != submitted {}",
                a.completed, a.dropped, a.submitted
            ),
        ));
    }
    if format!("{a:?}") != format!("{b:?}") {
        return Err(("static-determinism".into(), "replay diverged".into()));
    }

    let works = cell.app.works();
    for policy in [DynamicPolicy::Fifo, DynamicPolicy::BestFit] {
        let run_dyn = || simulate_dynamic(&cell.soc, &works, &cell.cfg, policy, Some(&spec));
        let a = run_dyn().map_err(|e| ("dynamic-run".into(), e.to_string()))?;
        let b = run_dyn().map_err(|e| ("dynamic-run".into(), e.to_string()))?;
        if a.completed + a.dropped != a.submitted {
            return Err((
                format!("dynamic-conservation-{policy:?}"),
                format!(
                    "completed {} + dropped {} != submitted {}",
                    a.completed, a.dropped, a.submitted
                ),
            ));
        }
        if format!("{a:?}") != format!("{b:?}") {
            return Err((
                format!("dynamic-determinism-{policy:?}"),
                "replay diverged".into(),
            ));
        }
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let device = arg_value(&args, "--device").unwrap_or_else(|| "pixel_7a".into());
    let app_name = arg_value(&args, "--app").unwrap_or_else(|| "octree".into());
    let seeds: u64 = arg_value(&args, "--seeds")
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let out: PathBuf = arg_value(&args, "--out")
        .unwrap_or_else(|| "target/fault-matrix".into())
        .into();

    let cell = match build_cell(&device, &app_name) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("fault_matrix: {e}");
            std::process::exit(2);
        }
    };
    std::fs::create_dir_all(&out).expect("create output directory");

    let mut failures = 0u32;
    for seed in 0..seeds {
        match check_seed(&cell, seed) {
            Ok(()) => println!("ok   {device}/{app_name} seed {seed}"),
            Err((invariant, detail)) => {
                failures += 1;
                println!("FAIL {device}/{app_name} seed {seed}: {invariant}: {detail}");
                let failure = Failure {
                    device: device.clone(),
                    app: app_name.clone(),
                    seed,
                    invariant,
                    detail,
                    plan: FaultPlan::random(seed, &cell.domain),
                };
                let path = out.join(format!("fault-{device}-{app_name}-seed{seed}.json"));
                let json = serde_json::to_string_pretty(&failure).expect("serializable failure");
                std::fs::write(&path, json).expect("write failing plan");
                eprintln!("     failing plan written to {}", path.display());
            }
        }
    }
    println!(
        "fault_matrix: {device}/{app_name}: {}/{seeds} seeds passed",
        seeds - u64::from(failures)
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
