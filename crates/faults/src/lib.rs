//! # bt-faults — fault injection and runtime resilience
//!
//! The perturbation layer of the reproduction: deterministic, seedable
//! fault plans ([`FaultPlan`]) that compile down to the simulator's
//! [`FaultSpec`] vocabulary, plus a wrapping execution backend
//! ([`FaultyBackend`]) that delays or fails `measure` calls on any
//! substrate — the knobs the nightly fault matrix and the resilience
//! end-to-end tests turn.
//!
//! Everything here is a pure function of `(plan, seed)`: the same plan
//! replayed against the same simulator configuration produces bit-identical
//! outcomes, which is what lets CI upload a failing plan as an artifact and
//! a developer replay it locally.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod admission;

pub use admission::{admit_greedy, AdmissionConfig, AdmissionDecision, AdmissionPolicy, Rejection};

use std::time::Duration;

use bt_core::{BtError, CoTenant, ExecutionBackend};
use bt_pipeline::{Measurement, Schedule};
use bt_profiler::{ProfileMode, ProfilingTable};
use bt_soc::{FaultSpec, PuClass, PuLoss, SlowdownRamp, StageFault, StageFaultKind, Straggler};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The sampling domain of [`FaultPlan::random`]: what a generated plan is
/// allowed to perturb, expressed in the target workload's terms.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct FaultDomain {
    /// PU classes faults may target (slowdowns and losses).
    pub classes: Vec<PuClass>,
    /// Pipeline chunk count (stragglers and stage faults address chunks).
    pub chunks: usize,
    /// Stages per chunk upper bound (stage faults address a stage index).
    pub stages: usize,
    /// Task count of a run (stragglers and stage faults address a task).
    pub tasks: u32,
    /// Virtual-time horizon of a run, µs (onsets are drawn within it).
    pub horizon_us: f64,
    /// Upper bound on slowdown/straggler factors.
    pub max_factor: f64,
    /// Probability that a generated plan includes a PU loss.
    pub loss_probability: f64,
}

impl Default for FaultDomain {
    fn default() -> FaultDomain {
        FaultDomain {
            classes: vec![PuClass::BigCpu, PuClass::MediumCpu, PuClass::Gpu],
            chunks: 4,
            stages: 4,
            tasks: 33,
            horizon_us: 5.0e5,
            max_factor: 4.0,
            loss_probability: 0.15,
        }
    }
}

/// A deterministic, seedable fault scenario: the policy layer over the
/// simulator's mechanism-level [`FaultSpec`]. Serializable so failing
/// scenarios can be uploaded as CI artifacts and replayed verbatim.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FaultPlan {
    /// The seed this plan was generated from (0 for hand-written plans).
    pub seed: u64,
    /// The perturbations, in the simulator's vocabulary.
    pub spec: FaultSpec,
}

impl FaultPlan {
    /// The empty plan: injecting it leaves every run bit-identical to an
    /// unfaulted one.
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            spec: FaultSpec::none(),
        }
    }

    /// Generates a random plan from `seed`, sampling within `domain`.
    /// Pure: the same `(seed, domain)` always yields the same plan.
    pub fn random(seed: u64, domain: &FaultDomain) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6661_756c_7473_2121);
        let mut spec = FaultSpec::none();
        let classes = &domain.classes;
        if classes.is_empty() || domain.chunks == 0 || domain.tasks == 0 {
            return FaultPlan { seed, spec };
        }

        for _ in 0..rng.gen_range(0usize..=2) {
            let start_us = rng.gen_range(0.0..domain.horizon_us);
            spec.slowdowns.push(SlowdownRamp {
                class: classes[rng.gen_range(0..classes.len())],
                start_us,
                ramp_us: rng.gen_range(0.0..domain.horizon_us / 4.0),
                factor: rng.gen_range(1.1..domain.max_factor.max(1.2)),
            });
        }
        for _ in 0..rng.gen_range(0usize..=2) {
            spec.stragglers.push(Straggler {
                chunk: rng.gen_range(0..domain.chunks),
                task: rng.gen_range(0..domain.tasks as usize),
                factor: rng.gen_range(1.5..2.0 * domain.max_factor.max(1.0)),
            });
        }
        for _ in 0..rng.gen_range(0usize..=2) {
            let kind = if rng.gen_bool(0.5) {
                StageFaultKind::Error
            } else {
                StageFaultKind::Timeout {
                    extra_us: rng.gen_range(domain.horizon_us / 100.0..domain.horizon_us / 10.0),
                }
            };
            spec.stage_faults.push(StageFault {
                chunk: rng.gen_range(0..domain.chunks),
                task: rng.gen_range(0..domain.tasks as usize),
                stage: rng.gen_range(0..domain.stages.max(1)),
                kind,
            });
        }
        if rng.gen_bool(domain.loss_probability.clamp(0.0, 1.0)) {
            // Losses start no earlier than a quarter of the horizon so a
            // random plan usually leaves a measurable prefix.
            spec.losses.push(PuLoss {
                class: classes[rng.gen_range(0..classes.len())],
                at_us: rng.gen_range(domain.horizon_us / 4.0..domain.horizon_us),
            });
        }
        FaultPlan { seed, spec }
    }

    /// The mechanism-level spec to hand to the simulator or a backend.
    pub fn to_spec(&self) -> FaultSpec {
        self.spec.clone()
    }

    /// Whether the plan perturbs anything at all.
    pub fn is_empty(&self) -> bool {
        self.spec.is_empty()
    }
}

/// An [`ExecutionBackend`] decorator that perturbs `measure` calls:
/// deliberate failures on chosen autotuning run indices
/// ([`BtError::InjectedFault`]) and/or a wall-clock delay before each
/// measurement (modeling a slow or flaky measurement channel). Profiling
/// and baselines pass through untouched.
///
/// Works over any inner backend — the host runtime included — which is
/// what makes the resilience tests substrate-agnostic.
#[derive(Debug, Clone)]
pub struct FaultyBackend<B> {
    inner: B,
    fail_runs: Vec<u64>,
    delay: Option<Duration>,
}

impl<B: ExecutionBackend> FaultyBackend<B> {
    /// Wraps `inner` with no perturbations armed.
    pub fn new(inner: B) -> FaultyBackend<B> {
        FaultyBackend {
            inner,
            fail_runs: Vec::new(),
            delay: None,
        }
    }

    /// Arms deliberate measurement failures on the given run indices.
    pub fn fail_on_runs(mut self, runs: Vec<u64>) -> FaultyBackend<B> {
        self.fail_runs = runs;
        self
    }

    /// Injects a wall-clock delay before every measurement.
    pub fn with_delay(mut self, delay: Duration) -> FaultyBackend<B> {
        self.delay = Some(delay);
        self
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }
}

impl<B: ExecutionBackend> ExecutionBackend for FaultyBackend<B> {
    fn name(&self) -> &str {
        "faulty"
    }

    fn parallel_measure_hint(&self) -> bool {
        self.inner.parallel_measure_hint()
    }

    fn stage_count(&self) -> usize {
        self.inner.stage_count()
    }

    fn classes(&self) -> Vec<PuClass> {
        self.inner.classes()
    }

    fn schedulable(&self, class: PuClass) -> bool {
        self.inner.schedulable(class)
    }

    fn baseline_classes(&self) -> Vec<PuClass> {
        self.inner.baseline_classes()
    }

    fn profile(&self, mode: ProfileMode) -> ProfilingTable {
        self.inner.profile(mode)
    }

    fn measure(&self, schedule: &Schedule, run_index: u64) -> Result<Measurement, BtError> {
        if self.fail_runs.contains(&run_index) {
            return Err(BtError::InjectedFault { run_index });
        }
        if let Some(d) = self.delay {
            std::thread::sleep(d);
        }
        self.inner.measure(schedule, run_index)
    }

    fn measure_batch(
        &self,
        schedule: &Schedule,
        run_indices: &[u64],
    ) -> Result<Vec<Measurement>, BtError> {
        // An armed failure anywhere in the batch fails the whole batch —
        // the batched contract ("all measurements or a typed error"), with
        // the lowest armed index reported.
        if let Some(&run_index) = run_indices.iter().find(|i| self.fail_runs.contains(i)) {
            return Err(BtError::InjectedFault { run_index });
        }
        if let Some(d) = self.delay {
            std::thread::sleep(d);
        }
        self.inner.measure_batch(schedule, run_indices)
    }

    fn measure_baseline(&self, class: PuClass) -> Result<Measurement, BtError> {
        self.inner.measure_baseline(class)
    }

    fn measure_multi(&self, tenants: &[CoTenant]) -> Result<Vec<Measurement>, BtError> {
        // Co-run measurements share the measurement channel, so the
        // armed delay applies; run-indexed failures do not (there is no
        // run index to arm against).
        if let Some(d) = self.delay {
            std::thread::sleep(d);
        }
        self.inner.measure_multi(tenants)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_core::SimBackend;
    use bt_kernels::apps;
    use bt_soc::devices;

    fn sim() -> SimBackend {
        let app = apps::octree_app(apps::OctreeConfig::default()).model();
        SimBackend::new(devices::pixel_7a(), app)
    }

    #[test]
    fn random_plans_are_seed_deterministic() {
        let d = FaultDomain::default();
        let a = FaultPlan::random(17, &d);
        let b = FaultPlan::random(17, &d);
        assert_eq!(a, b);
        let c = FaultPlan::random(18, &d);
        assert_ne!(a, c, "different seeds should differ (overwhelmingly)");
    }

    #[test]
    fn plan_round_trips_through_json() {
        let plan = FaultPlan::random(42, &FaultDomain::default());
        let json = serde_json::to_string(&plan).expect("serializes");
        let back: FaultPlan = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(plan, back);
    }

    #[test]
    fn degenerate_domain_yields_empty_plan() {
        let d = FaultDomain {
            classes: Vec::new(),
            ..FaultDomain::default()
        };
        assert!(FaultPlan::random(7, &d).is_empty());
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn faulty_backend_fails_armed_runs_only() {
        let b = FaultyBackend::new(sim()).fail_on_runs(vec![1]);
        let s = Schedule::homogeneous(7, PuClass::BigCpu);
        assert!(b.measure(&s, 0).is_ok());
        assert!(matches!(
            b.measure(&s, 1),
            Err(BtError::InjectedFault { run_index: 1 })
        ));
        assert!(b.measure(&s, 2).is_ok());
    }

    #[test]
    fn faulty_backend_batch_fails_as_a_unit() {
        let b = FaultyBackend::new(sim()).fail_on_runs(vec![2]);
        let s = Schedule::homogeneous(7, PuClass::BigCpu);
        assert_eq!(b.measure_batch(&s, &[0, 1]).unwrap().len(), 2);
        assert!(matches!(
            b.measure_batch(&s, &[0, 2, 3]),
            Err(BtError::InjectedFault { run_index: 2 })
        ));
    }

    #[test]
    fn faulty_backend_delegates_shape_and_delays() {
        let inner = sim();
        let stages = inner.stage_count();
        let b = FaultyBackend::new(inner).with_delay(Duration::from_millis(1));
        assert_eq!(b.name(), "faulty");
        assert_eq!(b.stage_count(), stages);
        assert!(b.schedulable(PuClass::BigCpu));
        let s = Schedule::homogeneous(7, PuClass::BigCpu);
        let t0 = std::time::Instant::now();
        assert!(b.measure(&s, 0).is_ok());
        assert!(t0.elapsed() >= Duration::from_millis(1));
        assert!(b.measure_baseline(PuClass::Gpu).is_ok());
    }
}
