//! Admission control for multi-tenant co-runs.
//!
//! Deciding whether one more application may join a shared SoC is a
//! *what-if* question, and the multi-tenant simulator answers it exactly:
//! [`admit_greedy`] trial-co-schedules each candidate against the tenants
//! admitted so far ([`bt_soc::simulate_multi`]) and admits it only when
//! the resulting mix satisfies the configured policy — the fair-share vs
//! latency-target split of the multi-criteria pipeline-scheduling
//! literature.
//!
//! The trial runs reuse this crate's failure-budget machinery: an optional
//! [`FaultPlan`] stresses every trial mix, and a per-tenant **drop
//! budget** (maximum tolerated `dropped / submitted` fraction) rejects
//! candidates whose admission would push any tenant past its failure
//! budget under that stress — the same conservation accounting the
//! resilience tests pin.

use bt_core::{BtError, CoTenant};
use bt_pipeline::to_chunk_specs;
use bt_soc::{simulate_multi, RunReport, SocSpec, TenantSpec};

use crate::FaultPlan;

/// The admission criterion applied to every trial mix.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionPolicy {
    /// Equal-steady-state-throughput fairness: every tenant in the mix
    /// must retain a comparable fraction of its *solo* throughput. A
    /// candidate is admitted only if
    /// `min(retention) >= tolerance * max(retention)` across the trial
    /// mix, where `retention = co-run throughput / solo throughput`.
    /// `tolerance` is in `(0, 1]`; 1.0 demands exactly equal retention.
    FairShare {
        /// Minimum allowed ratio between the worst and best per-tenant
        /// throughput retention.
        tolerance: f64,
    },
    /// Latency SLO: a candidate is rejected when its admission would push
    /// any tenant in the mix — itself included — past the target mean
    /// task latency (µs).
    LatencyTarget {
        /// The shared mean-task-latency SLO in microseconds.
        slo_us: f64,
    },
}

/// Configuration for [`admit_greedy`]: the policy plus the
/// failure-budget stress applied to every trial mix.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// The admission criterion.
    pub policy: AdmissionPolicy,
    /// Maximum tolerated per-tenant `dropped / submitted` fraction under
    /// the stress plan (the failure budget). 0.0 demands lossless
    /// co-runs.
    pub max_drop_fraction: f64,
    /// Fault stress applied to every trial mix. Chunk-addressed faults
    /// use the trial mix's *global* (flattened) chunk indices, so a plan
    /// written for a full mix exercises earlier, smaller trials only
    /// partially. [`FaultPlan::none`] leaves trials clean.
    pub stress: FaultPlan,
}

impl AdmissionConfig {
    /// A clean-trial configuration (no stress, zero drop budget).
    ///
    /// # Panics
    ///
    /// Panics when the policy's parameter is out of range:
    /// `FairShare.tolerance` outside `(0, 1]`, or a non-positive /
    /// non-finite `LatencyTarget.slo_us`.
    pub fn new(policy: AdmissionPolicy) -> AdmissionConfig {
        match &policy {
            AdmissionPolicy::FairShare { tolerance } => assert!(
                *tolerance > 0.0 && *tolerance <= 1.0,
                "fair-share tolerance must be in (0, 1]"
            ),
            AdmissionPolicy::LatencyTarget { slo_us } => assert!(
                slo_us.is_finite() && *slo_us > 0.0,
                "latency SLO must be finite and positive"
            ),
        }
        AdmissionConfig {
            policy,
            max_drop_fraction: 0.0,
            stress: FaultPlan::none(),
        }
    }

    /// Stresses every trial mix with `plan`.
    pub fn with_stress(mut self, plan: FaultPlan) -> AdmissionConfig {
        self.stress = plan;
        self
    }

    /// Sets the per-tenant failure budget (clamped to `[0, 1]`).
    pub fn with_drop_budget(mut self, max_drop_fraction: f64) -> AdmissionConfig {
        self.max_drop_fraction = max_drop_fraction.clamp(0.0, 1.0);
        self
    }
}

/// A rejected candidate and the reason the trial mix failed.
#[derive(Debug, Clone)]
pub struct Rejection {
    /// Index into the candidate list handed to [`admit_greedy`].
    pub candidate: usize,
    /// Human-readable policy violation.
    pub reason: String,
}

/// The outcome of a greedy admission sweep.
#[derive(Debug)]
pub struct AdmissionDecision {
    /// Indices of admitted candidates, in admission order.
    pub admitted: Vec<usize>,
    /// Rejected candidates with reasons, in rejection order.
    pub rejected: Vec<Rejection>,
    /// Per-tenant reports of the final admitted mix (parallel to
    /// `admitted`); empty when nothing was admitted.
    pub reports: Vec<RunReport>,
}

/// Greedily admits `candidates` in order onto `soc`: each candidate is
/// trial-co-scheduled with the already-admitted tenants under
/// `cfg.stress`, and joins the mix only if every tenant stays within the
/// failure budget and the mix satisfies `cfg.policy`.
///
/// Greedy order matters — an early heavyweight can crowd out later
/// lightweights — which mirrors online admission, where requests arrive
/// one at a time.
///
/// # Errors
///
/// Configuration errors from the simulator (stage mismatch, missing PU)
/// abort the sweep; policy violations do not — they land in
/// [`AdmissionDecision::rejected`].
pub fn admit_greedy(
    soc: &SocSpec,
    candidates: &[CoTenant],
    cfg: &AdmissionConfig,
) -> Result<AdmissionDecision, BtError> {
    let spec_of = |t: &CoTenant| -> Result<TenantSpec, BtError> {
        Ok(TenantSpec::new(
            t.app.name.clone(),
            to_chunk_specs(&t.app, &t.schedule)?,
            t.run.clone(),
        ))
    };
    let stress = cfg.stress.to_spec();
    let stress_opt = (!stress.is_empty()).then_some(&stress);

    // Solo throughputs, needed for fair-share retention; measured clean
    // so the retention denominator is the tenant's undisturbed capacity.
    let solo_thpt: Vec<Option<f64>> = match cfg.policy {
        AdmissionPolicy::FairShare { .. } => candidates
            .iter()
            .map(|t| {
                let solo = simulate_multi(soc, &[spec_of(t)?], None)?;
                Ok(solo.tenants[0].stats.as_ref().map(|s| s.throughput_hz))
            })
            .collect::<Result<_, BtError>>()?,
        AdmissionPolicy::LatencyTarget { .. } => vec![None; candidates.len()],
    };

    let mut admitted: Vec<usize> = Vec::new();
    let mut admitted_specs: Vec<TenantSpec> = Vec::new();
    let mut rejected: Vec<Rejection> = Vec::new();
    let mut reports: Vec<RunReport> = Vec::new();

    for (i, candidate) in candidates.iter().enumerate() {
        let mut trial = admitted_specs.clone();
        trial.push(spec_of(candidate)?);
        let multi = simulate_multi(soc, &trial, stress_opt)?;

        let mut violation: Option<String> = None;
        for (pos, report) in multi.tenants.iter().enumerate() {
            let member = admitted.get(pos).copied().unwrap_or(i);
            let drop_frac = if report.submitted == 0 {
                0.0
            } else {
                report.dropped as f64 / report.submitted as f64
            };
            if drop_frac > cfg.max_drop_fraction {
                violation = Some(format!(
                    "tenant #{member} exceeds failure budget: dropped {:.1}% > {:.1}%",
                    drop_frac * 100.0,
                    cfg.max_drop_fraction * 100.0
                ));
                break;
            }
            if report.stats.is_none() {
                violation = Some(format!("tenant #{member} measured no steady state"));
                break;
            }
        }

        if violation.is_none() {
            violation = match cfg.policy {
                AdmissionPolicy::FairShare { tolerance } => {
                    let retention: Vec<f64> = multi
                        .tenants
                        .iter()
                        .enumerate()
                        .map(|(pos, r)| {
                            let member = admitted.get(pos).copied().unwrap_or(i);
                            let solo = solo_thpt[member].unwrap_or(f64::NAN);
                            r.stats.as_ref().map_or(0.0, |s| s.throughput_hz) / solo
                        })
                        .collect();
                    let min = retention.iter().copied().fold(f64::INFINITY, f64::min);
                    let max = retention.iter().copied().fold(0.0f64, f64::max);
                    (!(min.is_finite() && max > 0.0) || min < tolerance * max).then(|| {
                        format!(
                            "unfair mix: worst retention {min:.3} < {tolerance} × best {max:.3}"
                        )
                    })
                }
                AdmissionPolicy::LatencyTarget { slo_us } => multi
                    .tenants
                    .iter()
                    .enumerate()
                    .find_map(|(pos, r)| {
                        let member = admitted.get(pos).copied().unwrap_or(i);
                        let lat = r
                            .stats
                            .as_ref()
                            .map_or(f64::INFINITY, |s| s.mean_task_latency.as_f64());
                        (lat > slo_us).then(|| {
                            format!(
                                "tenant #{member} mean task latency {lat:.0}µs exceeds SLO {slo_us:.0}µs"
                            )
                        })
                    }),
            };
        }

        match violation {
            None => {
                admitted.push(i);
                admitted_specs = trial;
                reports = multi.tenants;
            }
            Some(reason) => rejected.push(Rejection {
                candidate: i,
                reason,
            }),
        }
    }

    Ok(AdmissionDecision {
        admitted,
        rejected,
        reports,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_kernels::apps;
    use bt_soc::{devices, PuClass, PuLoss, RunConfig};

    use bt_pipeline::Schedule;

    fn octree(seed: u64) -> CoTenant {
        let app = apps::octree_app(apps::OctreeConfig::default()).model();
        let schedule = Schedule::new(vec![
            PuClass::BigCpu,
            PuClass::BigCpu,
            PuClass::MediumCpu,
            PuClass::Gpu,
            PuClass::Gpu,
            PuClass::Gpu,
            PuClass::LittleCpu,
        ])
        .unwrap();
        CoTenant::new(
            app,
            schedule,
            RunConfig {
                tasks: 20,
                warmup: 4,
                seed,
                ..RunConfig::default()
            },
        )
    }

    fn alexnet(seed: u64) -> CoTenant {
        let app = apps::alexnet_dense_app(apps::AlexNetConfig::default()).model();
        let k = app.stage_count();
        CoTenant::new(
            app,
            Schedule::homogeneous(k, PuClass::Gpu),
            RunConfig {
                tasks: 20,
                warmup: 4,
                seed,
                ..RunConfig::default()
            },
        )
    }

    #[test]
    fn compatible_tenants_are_both_admitted() {
        let soc = devices::pixel_7a();
        let cands = [octree(1), alexnet(2)];
        let cfg = AdmissionConfig::new(AdmissionPolicy::FairShare { tolerance: 0.05 });
        let d = admit_greedy(&soc, &cands, &cfg).unwrap();
        assert_eq!(d.admitted, vec![0, 1]);
        assert!(d.rejected.is_empty());
        assert_eq!(d.reports.len(), 2);
        for r in &d.reports {
            assert_eq!(r.completed + r.dropped, r.submitted);
        }
    }

    #[test]
    fn latency_target_rejects_the_tenant_that_breaks_the_slo() {
        let soc = devices::pixel_7a();
        let first = octree(1);
        // Solo latency of the first tenant defines a just-met SLO; the
        // co-runner's interference must then push it past the target.
        let solo = admit_greedy(
            &soc,
            std::slice::from_ref(&first),
            &AdmissionConfig::new(AdmissionPolicy::LatencyTarget { slo_us: f64::MAX }),
        )
        .unwrap();
        let solo_lat = solo.reports[0].expect_stats().mean_task_latency.as_f64();
        let cfg = AdmissionConfig::new(AdmissionPolicy::LatencyTarget {
            slo_us: solo_lat * 1.001,
        });
        let d = admit_greedy(&soc, &[first, octree(2), octree(3)], &cfg).unwrap();
        assert_eq!(d.admitted, vec![0], "co-runners must violate the tight SLO");
        assert_eq!(d.rejected.len(), 2);
        assert!(d.rejected[0].reason.contains("SLO"));
        assert_eq!(d.reports.len(), 1);
    }

    #[test]
    fn exact_fair_share_rejects_an_asymmetric_mix() {
        let soc = devices::pixel_7a();
        // tolerance 1.0 demands byte-equal retention, which an
        // octree/alexnet mix cannot hit.
        let cfg = AdmissionConfig::new(AdmissionPolicy::FairShare { tolerance: 1.0 });
        let d = admit_greedy(&soc, &[octree(1), alexnet(2)], &cfg).unwrap();
        assert_eq!(d.admitted, vec![0], "first tenant alone is trivially fair");
        assert_eq!(d.rejected.len(), 1);
        assert!(d.rejected[0].reason.contains("unfair"));
    }

    #[test]
    fn failure_budget_rejects_lossy_trials() {
        let soc = devices::pixel_7a();
        // Lose the GPU early: most octree tasks drop, blowing any budget.
        let mut plan = FaultPlan::none();
        plan.spec.losses.push(PuLoss {
            class: PuClass::Gpu,
            at_us: 10.0,
        });
        let cfg = AdmissionConfig::new(AdmissionPolicy::LatencyTarget { slo_us: f64::MAX })
            .with_stress(plan)
            .with_drop_budget(0.1);
        let d = admit_greedy(&soc, &[octree(1)], &cfg).unwrap();
        assert!(d.admitted.is_empty());
        assert!(d.rejected[0].reason.contains("failure budget"));
    }

    #[test]
    fn empty_candidate_list_is_an_empty_decision() {
        let soc = devices::pixel_7a();
        let cfg = AdmissionConfig::new(AdmissionPolicy::FairShare { tolerance: 0.5 });
        let d = admit_greedy(&soc, &[], &cfg).unwrap();
        assert!(d.admitted.is_empty() && d.rejected.is_empty() && d.reports.is_empty());
    }

    #[test]
    #[should_panic(expected = "tolerance")]
    fn out_of_range_tolerance_panics() {
        let _ = AdmissionConfig::new(AdmissionPolicy::FairShare { tolerance: 0.0 });
    }
}
