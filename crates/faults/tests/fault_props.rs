//! Property tests of the fault-injection layer: random fault plans must
//! never deadlock the simulators, must conserve tasks
//! (`completed + dropped == submitted`), and must replay bit-identically.

use bt_faults::{FaultDomain, FaultPlan};
use bt_soc::des::{simulate, ChunkSpec};
use bt_soc::des_dynamic::{simulate_dynamic, DynamicPolicy};
use bt_soc::{devices, PuClass, RunConfig, WorkProfile};
use proptest::prelude::*;

fn pipeline_chunks() -> Vec<ChunkSpec> {
    vec![
        ChunkSpec::new(
            PuClass::BigCpu,
            vec![
                WorkProfile::new(4.0e6, 1.0e6),
                WorkProfile::new(2.0e6, 5.0e5),
            ],
        ),
        ChunkSpec::new(PuClass::MediumCpu, vec![WorkProfile::new(3.0e6, 8.0e5)]),
        ChunkSpec::new(PuClass::Gpu, vec![WorkProfile::new(8.0e6, 2.0e6)]),
    ]
}

fn cfg() -> RunConfig {
    RunConfig {
        tasks: 25,
        warmup: 3,
        noise_sigma: 0.02,
        seed: 11,
        ..RunConfig::default()
    }
}

fn domain() -> FaultDomain {
    let soc = devices::pixel_7a();
    let reference = simulate(&soc, &pipeline_chunks(), &cfg(), None).expect("reference run");
    FaultDomain {
        classes: soc.schedulable_classes(),
        chunks: 3,
        stages: 2,
        tasks: 28,
        horizon_us: reference.expect_stats().makespan.as_f64() * 1.5,
        ..FaultDomain::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The static engine under arbitrary plans terminates (reaching the
    /// assertions proves no deadlock) and conserves tasks.
    #[test]
    fn static_engine_conserves_tasks(seed in any::<u64>()) {
        let plan = FaultPlan::random(seed, &domain());
        let soc = devices::pixel_7a();
        let r = simulate(&soc, &pipeline_chunks(), &cfg(), Some(&plan.to_spec()))
            .expect("valid configuration");
        prop_assert_eq!(r.completed + r.dropped, r.submitted);
        if let Some(report) = &r.stats {
            prop_assert!(report.makespan.as_f64() > 0.0);
            prop_assert!(report.tasks > 0);
        } else {
            prop_assert_eq!(r.completed, 0, "no report only when nothing completed");
        }
    }

    /// Same plan, same seed ⇒ bit-identical outcome (the artifact-replay
    /// guarantee of the nightly fault matrix).
    #[test]
    fn static_engine_replays_bit_identically(seed in any::<u64>()) {
        let plan = FaultPlan::random(seed, &domain());
        let soc = devices::pixel_7a();
        let a = simulate(&soc, &pipeline_chunks(), &cfg(), Some(&plan.to_spec()))
            .expect("valid configuration");
        let b = simulate(&soc, &pipeline_chunks(), &cfg(), Some(&plan.to_spec()))
            .expect("valid configuration");
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    /// The dynamic scheduler under arbitrary plans terminates, conserves
    /// tasks, and replays bit-identically under both placement policies.
    #[test]
    fn dynamic_engine_conserves_and_replays(seed in any::<u64>()) {
        let plan = FaultPlan::random(seed, &domain());
        let soc = devices::pixel_7a();
        let stages = [
            WorkProfile::new(4.0e6, 1.0e6),
            WorkProfile::new(3.0e6, 8.0e5),
            WorkProfile::new(8.0e6, 2.0e6),
        ];
        for policy in [DynamicPolicy::Fifo, DynamicPolicy::BestFit] {
            let a = simulate_dynamic(&soc, &stages, &cfg(), policy, Some(&plan.to_spec()))
                .expect("valid configuration");
            prop_assert_eq!(a.completed + a.dropped, a.submitted);
            let b = simulate_dynamic(&soc, &stages, &cfg(), policy, Some(&plan.to_spec()))
                .expect("valid configuration");
            prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
    }

    /// Plans survive a JSON round trip unchanged — what makes a CI
    /// artifact replayable.
    #[test]
    fn plans_round_trip_through_json(seed in any::<u64>()) {
        let plan = FaultPlan::random(seed, &domain());
        let json = serde_json::to_string(&plan).expect("serializes");
        let back: FaultPlan = serde_json::from_str(&json).expect("deserializes");
        prop_assert_eq!(plan, back);
    }
}
