//! End-to-end resilience: a mid-run DVFS throttle on the big cluster must
//! trip drift detection, trigger a re-solve on the rescaled cost table,
//! and produce a schedule that strictly beats the stale one in the DES —
//! the acceptance scenario of the fault subsystem.

use bt_core::{BetterTogether, BtError, DriftConfig, ExecutionBackend, SimBackend};
use bt_faults::{FaultPlan, FaultyBackend};
use bt_kernels::apps;
use bt_soc::{devices, FaultSpec, PuClass, SlowdownRamp};

fn pixel_octree() -> BetterTogether<SimBackend> {
    let app = apps::octree_app(apps::OctreeConfig::default()).model();
    BetterTogether::new(devices::pixel_7a(), app)
}

fn big_cluster_throttle() -> FaultPlan {
    FaultPlan {
        seed: 0,
        spec: FaultSpec {
            slowdowns: vec![SlowdownRamp {
                class: PuClass::BigCpu,
                start_us: 2_000.0,
                ramp_us: 0.0,
                factor: 2.0,
            }],
            ..FaultSpec::none()
        },
    }
}

#[test]
fn midrun_throttle_reschedule_beats_stale_schedule() {
    let bt = pixel_octree();
    let plan = big_cluster_throttle();
    let run = bt
        .run_resilient(&plan.to_spec(), &DriftConfig::default())
        .expect("resilient run");

    // Drift detection fired and produced a reschedule event.
    assert!(run.rescheduled(), "2× throttle must trip drift detection");
    let ev = &run.events[0];
    assert!(
        ev.factors
            .iter()
            .any(|&(c, f)| c == PuClass::BigCpu && f > 1.3),
        "cost table must be rescaled on the throttled class: {:?}",
        ev.factors
    );
    assert!(ev.improved(), "the reschedule must measure faster");

    // The acceptance bar: re-optimized strictly beats stale, both measured
    // in the DES under the same live fault.
    let improvement = run.improvement().expect("both measurable");
    assert!(
        improvement > 1.0,
        "re-optimized schedule must strictly beat the stale one under the \
         throttle (stale/new latency ratio {improvement:.3})"
    );
}

#[test]
fn resilient_outcome_is_deterministic_for_a_plan() {
    let bt = pixel_octree();
    let plan = big_cluster_throttle();
    let a = bt
        .run_resilient(&plan.to_spec(), &DriftConfig::default())
        .expect("resilient run");
    let b = bt
        .run_resilient(&plan.to_spec(), &DriftConfig::default())
        .expect("resilient run");
    assert_eq!(a.schedule, b.schedule);
    assert_eq!(a.events.len(), b.events.len());
    assert_eq!(
        a.under_fault.expect("measured").latency.as_f64(),
        b.under_fault.expect("measured").latency.as_f64()
    );
}

#[test]
fn injected_measurement_failure_surfaces_as_typed_error() {
    let app = apps::octree_app(apps::OctreeConfig::default()).model();
    let backend =
        FaultyBackend::new(SimBackend::new(devices::pixel_7a(), app)).fail_on_runs(vec![0]);
    // Run 0 is the predicted-best candidate's measurement: the whole
    // autotuning sweep must fail loudly with the injected fault, not hang
    // or silently skip the candidate.
    let err = BetterTogether::with_backend(backend)
        .run()
        .expect_err("armed fault must surface");
    assert!(
        matches!(err, BtError::InjectedFault { run_index: 0 }),
        "{err}"
    );
}

#[test]
fn unarmed_faulty_backend_is_transparent() {
    let app = apps::octree_app(apps::OctreeConfig::default()).model();
    let plain = SimBackend::new(devices::pixel_7a(), app.clone());
    let wrapped = FaultyBackend::new(SimBackend::new(devices::pixel_7a(), app));
    let d_plain = BetterTogether::with_backend(plain).run().expect("runs");
    let d_wrapped = BetterTogether::with_backend(wrapped).run().expect("runs");
    assert_eq!(d_plain.best_schedule(), d_wrapped.best_schedule());
    assert_eq!(
        d_plain.best_latency().expect("measured").as_f64(),
        d_wrapped.best_latency().expect("measured").as_f64()
    );
}

#[test]
fn rescheduling_event_serializes_for_artifacts() {
    let bt = pixel_octree();
    let run = bt
        .run_resilient(&big_cluster_throttle().to_spec(), &DriftConfig::default())
        .expect("resilient run");
    let json = serde_json::to_string(&run.events).expect("events serialize");
    assert!(json.contains("new_schedule"));
}

#[test]
fn faulty_backend_exposes_inner() {
    let app = apps::octree_app(apps::OctreeConfig::default()).model();
    let wrapped = FaultyBackend::new(SimBackend::new(devices::pixel_7a(), app));
    assert_eq!(wrapped.inner().name(), "sim");
    assert_eq!(wrapped.stage_count(), wrapped.inner().stage_count());
}
