//! The BetterTogether schedule-optimization encoding (§3.3 of the paper).
//!
//! Decision variables `x[i][c]` assign stage `i` to PU class `c`, under:
//!
//! - **C1** — exactly one PU per stage;
//! - **C2** — contiguity: stages mapped to the same PU form a single chunk;
//! - **C3a/C3b** — every maximal chunk's summed latency lies in a window
//!   `[T_min, T_max]`;
//! - **C5ℓ** — blocking clauses excluding previously found schedules.
//!
//! Objectives (gapness **O1** and latency) are minimized by binary search
//! over the discrete set of achievable chunk sums, each probe being one SAT
//! call — the role z3's `Optimize` plays in the paper.

use crate::{Engine, Model, SolveResult, Solver, Var};

/// A schedule: for each stage, the index of its assigned PU class.
pub type Assignment = Vec<usize>;

/// Errors constructing a [`ScheduleProblem`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProblemError {
    /// The latency table is empty or ragged.
    BadShape,
    /// A latency entry is non-positive or non-finite.
    BadLatency {
        /// Stage row.
        stage: usize,
        /// Class column.
        class: usize,
    },
    /// No PU class is allowed.
    NoAllowedClass,
}

impl std::fmt::Display for ProblemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProblemError::BadShape => {
                f.write_str("latency table must be non-empty and rectangular")
            }
            ProblemError::BadLatency { stage, class } => {
                write!(
                    f,
                    "latency for stage {stage} on class {class} must be positive and finite"
                )
            }
            ProblemError::NoAllowedClass => f.write_str("at least one PU class must be allowed"),
        }
    }
}

impl std::error::Error for ProblemError {}

/// A schedule-optimization instance: the profiling table restricted to the
/// classes the device can schedule.
#[derive(Debug, Clone)]
pub struct ScheduleProblem {
    /// `latency[i][c]`: profiled latency of stage `i` on class `c` (µs).
    latency: Vec<Vec<f64>>,
    /// `prefix[c][i]`: Σ `latency[0..i][c]` — every chunk sum `[i, j]` on
    /// class `c` is the O(1) difference `prefix[c][j+1] − prefix[c][i]`.
    /// All chunk-sum consumers (candidate `T_max` prediction, the window
    /// encoding, assignment evaluation) read these same differences, so a
    /// chunk's value is bit-identical everywhere it appears.
    prefix: Vec<Vec<f64>>,
    allowed: Vec<bool>,
    /// Maximum number of chunks (dispatcher threads) a schedule may use;
    /// `None` means only the PU count limits it.
    max_chunks: Option<usize>,
    /// Which SAT engine window probes run on.
    engine: Engine,
}

impl ScheduleProblem {
    /// Creates a problem from a `stages × classes` latency table, with all
    /// classes allowed.
    ///
    /// # Errors
    ///
    /// Returns [`ProblemError`] if the table is empty, ragged, or contains
    /// non-positive/non-finite entries.
    pub fn new(latency: Vec<Vec<f64>>) -> Result<ScheduleProblem, ProblemError> {
        if latency.is_empty() || latency[0].is_empty() {
            return Err(ProblemError::BadShape);
        }
        let classes = latency[0].len();
        for (i, row) in latency.iter().enumerate() {
            if row.len() != classes {
                return Err(ProblemError::BadShape);
            }
            for (c, &t) in row.iter().enumerate() {
                if !(t > 0.0 && t.is_finite()) {
                    return Err(ProblemError::BadLatency { stage: i, class: c });
                }
            }
        }
        let allowed = vec![true; classes];
        let prefix: Vec<Vec<f64>> = (0..classes)
            .map(|c| {
                let mut acc = 0.0;
                let mut p = Vec::with_capacity(latency.len() + 1);
                p.push(0.0);
                for row in &latency {
                    acc += row[c];
                    p.push(acc);
                }
                p
            })
            .collect();
        Ok(ScheduleProblem {
            latency,
            prefix,
            allowed,
            max_chunks: None,
            engine: Engine::default(),
        })
    }

    /// Selects the SAT engine every window probe runs on (default
    /// [`Engine::Cdcl`]; [`Engine::Dpll`] keeps the pre-clause-learning
    /// decision procedure for oracle comparisons and benches).
    pub fn with_engine(mut self, engine: Engine) -> ScheduleProblem {
        self.engine = engine;
        self
    }

    /// The SAT engine window probes run on.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Restricts which classes may host chunks (e.g. unpinnable clusters).
    ///
    /// # Errors
    ///
    /// Returns [`ProblemError::NoAllowedClass`] if everything is disallowed,
    /// or [`ProblemError::BadShape`] on length mismatch.
    pub fn with_allowed(mut self, allowed: Vec<bool>) -> Result<ScheduleProblem, ProblemError> {
        if allowed.len() != self.classes() {
            return Err(ProblemError::BadShape);
        }
        if !allowed.iter().any(|&a| a) {
            return Err(ProblemError::NoAllowedClass);
        }
        self.allowed = allowed;
        Ok(self)
    }

    /// Caps the number of chunks (one dispatcher thread each, §3.4) a
    /// schedule may use — e.g. to bound thread count or keep clusters
    /// powered down. Encoded with a pseudo-boolean constraint over
    /// chunk-boundary indicator variables in the SAT engine.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn with_max_chunks(mut self, k: usize) -> ScheduleProblem {
        assert!(k >= 1, "at least one chunk is required");
        self.max_chunks = Some(k);
        self
    }

    /// The configured chunk cap, if any.
    pub fn max_chunks(&self) -> Option<usize> {
        self.max_chunks
    }

    /// Number of pipeline stages.
    pub fn stages(&self) -> usize {
        self.latency.len()
    }

    /// Number of PU classes (columns).
    pub fn classes(&self) -> usize {
        self.latency[0].len()
    }

    /// Whether class `c` may host chunks.
    pub fn is_allowed(&self, c: usize) -> bool {
        self.allowed[c]
    }

    /// Profiled latency of stage `i` on class `c`.
    pub fn latency(&self, i: usize, c: usize) -> f64 {
        self.latency[i][c]
    }

    /// Latency of the contiguous chunk `[i, j]` on class `c` — an O(1)
    /// per-stage prefix-sum difference.
    pub fn chunk_sum(&self, i: usize, j: usize, c: usize) -> f64 {
        self.prefix[c][j + 1] - self.prefix[c][i]
    }

    /// All achievable maximal-chunk sums over allowed classes, sorted and
    /// deduplicated — the discrete search space for window bounds.
    pub fn chunk_sums(&self) -> Vec<f64> {
        let n = self.stages();
        let mut sums = Vec::new();
        for c in 0..self.classes() {
            if !self.allowed[c] {
                continue;
            }
            for i in 0..n {
                for j in i..n {
                    sums.push(self.chunk_sum(i, j, c));
                }
            }
        }
        sums.sort_by(f64::total_cmp);
        sums.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        sums
    }

    /// Whether `assignment` satisfies C1 (length/range), contiguity (C2),
    /// and class permissions.
    pub fn is_valid(&self, assignment: &[usize]) -> bool {
        if assignment.len() != self.stages() {
            return false;
        }
        if assignment
            .iter()
            .any(|&c| c >= self.classes() || !self.allowed[c])
        {
            return false;
        }
        // Contiguity: a class never reappears after a different class.
        let mut seen_closed = vec![false; self.classes()];
        let mut prev = usize::MAX;
        let mut chunks = 0usize;
        for &c in assignment {
            if c != prev {
                if seen_closed[c] {
                    return false;
                }
                if prev != usize::MAX {
                    seen_closed[prev] = true;
                }
                prev = c;
                chunks += 1;
            }
        }
        if let Some(k) = self.max_chunks {
            if chunks > k {
                return false;
            }
        }
        true
    }

    /// The maximal-chunk sums of a valid assignment, in pipeline order.
    ///
    /// # Panics
    ///
    /// Panics if the assignment is invalid.
    pub fn chunk_sums_of(&self, assignment: &[usize]) -> Vec<f64> {
        assert!(self.is_valid(assignment), "invalid assignment");
        let mut sums = Vec::new();
        let mut start = 0;
        for i in 1..=assignment.len() {
            if i == assignment.len() || assignment[i] != assignment[start] {
                sums.push(self.chunk_sum(start, i - 1, assignment[start]));
                start = i;
            }
        }
        sums
    }

    /// Builds the SAT encoding for the window decision problem
    /// `D(lo, hi)`: does a schedule exist whose every maximal chunk sum
    /// lies in `[lo, hi]`, differing from every `blocked` schedule?
    fn encode(&self, lo: f64, hi: f64, blocked: &[Assignment]) -> (Solver, Vec<Vec<Var>>) {
        let n = self.stages();
        let m = self.classes();
        let mut solver = Solver::with_engine(self.engine);
        let x: Vec<Vec<Var>> = (0..n)
            .map(|_| (0..m).map(|_| solver.new_var()).collect())
            .collect();

        // Disallowed classes.
        for (c, &ok) in self.allowed.iter().enumerate() {
            if !ok {
                for row in &x {
                    solver.add_clause(&[row[c].neg()]);
                }
            }
        }

        // C1: exactly one class per stage.
        for row in &x {
            let lits: Vec<_> = row.iter().map(|v| v.pos()).collect();
            solver.add_exactly_one(&lits);
        }

        // C2: contiguity. (x[i][c] ∧ x[k][c]) → x[i+1][c] for i+1 < k;
        // induction extends this to all middle stages.
        for c in 0..m {
            for (i, row_i) in x.iter().enumerate() {
                for row_k in x.iter().skip(i + 2) {
                    let (xi, xk, xmid) = (row_i[c], row_k[c], x[i + 1][c]);
                    solver.add_clause(&[xi.neg(), xk.neg(), xmid.pos()]);
                }
            }
        }

        // C3: forbid any maximal chunk whose sum falls outside [lo, hi].
        // Sums come from the same prefix differences the candidate `T_max`
        // predictions use, so the window test and the reported optimum agree
        // bit-for-bit.
        let eps = 1e-9;
        for c in 0..m {
            if !self.allowed[c] {
                continue;
            }
            for i in 0..n {
                for j in i..n {
                    let acc = self.chunk_sum(i, j, c);
                    if acc < lo - eps || acc > hi + eps {
                        let mut clause = Vec::with_capacity(j - i + 3);
                        if i > 0 {
                            clause.push(x[i - 1][c].pos());
                        }
                        if j + 1 < n {
                            clause.push(x[j + 1][c].pos());
                        }
                        for row in x.iter().take(j + 1).skip(i) {
                            clause.push(row[c].neg());
                        }
                        solver.add_clause(&clause);
                    }
                }
            }
        }

        // Chunk cap: boundary indicator b_i is forced true whenever stages
        // i and i+1 run on different classes; Σ bᵢ ≤ max_chunks − 1 via the
        // pseudo-boolean layer.
        if let Some(k) = self.max_chunks {
            if n > 1 {
                let boundaries: Vec<Var> = (0..n - 1).map(|_| solver.new_var()).collect();
                for (i, &b) in boundaries.iter().enumerate() {
                    for (xi, xnext) in x[i].iter().zip(&x[i + 1]) {
                        // (x[i][c] ∧ ¬x[i+1][c]) → b
                        solver.add_clause(&[xi.neg(), xnext.pos(), b.pos()]);
                    }
                }
                let terms: Vec<(crate::Lit, u64)> =
                    boundaries.iter().map(|&b| (b.pos(), 1)).collect();
                solver.add_pb_le(&terms, (k - 1) as u64);
            }
        }

        // C5: block prior schedules (at least one stage must differ).
        for sched in blocked {
            let clause: Vec<_> = sched
                .iter()
                .enumerate()
                .map(|(i, &c)| x[i][c].neg())
                .collect();
            solver.add_clause(&clause);
        }

        (solver, x)
    }

    /// Decodes a satisfying model of the window encoding into a
    /// stage → class assignment.
    fn decode(&self, x: &[Vec<Var>], model: &Model) -> Assignment {
        let assignment: Assignment = x
            .iter()
            .map(|row| {
                row.iter()
                    .position(|v| model.value(*v))
                    .expect("C1 guarantees one class per stage")
            })
            .collect();
        debug_assert!(self.is_valid(&assignment));
        assignment
    }

    /// Solves the window decision problem `D(lo, hi)`, excluding `blocked`
    /// schedules. Returns a satisfying assignment if one exists.
    pub fn solve_window(&self, lo: f64, hi: f64, blocked: &[Assignment]) -> Option<Assignment> {
        let (mut solver, x) = self.encode(lo, hi, blocked);
        match solver.solve() {
            SolveResult::Sat(model) => Some(self.decode(&x, &model)),
            SolveResult::Unsat => None,
        }
    }

    /// Minimizes predicted pipeline latency (the bottleneck `T_max`) by
    /// binary search over achievable chunk sums, excluding `blocked`
    /// schedules. Returns `(T_max, schedule)`.
    pub fn min_latency(&self, blocked: &[Assignment]) -> Option<(f64, Assignment)> {
        let sums = self.chunk_sums();
        let feasible = |u: f64| self.solve_window(0.0, u, blocked);
        // Binary search the smallest feasible upper bound.
        let mut lo = 0usize;
        let mut hi = sums.len();
        let mut best: Option<(f64, Assignment)> = None;
        while lo < hi {
            let mid = (lo + hi) / 2;
            match feasible(sums[mid]) {
                Some(a) => {
                    best = Some((sums[mid], a));
                    hi = mid;
                }
                None => lo = mid + 1,
            }
        }
        best
    }

    /// Minimizes gapness (`T_max − T_min`, objective O1) by binary search
    /// over achievable gaps; the inner feasibility test slides the window
    /// over achievable lower bounds. Returns `(gapness, schedule)`.
    ///
    /// This is the paper-faithful counterpart of z3's `minimize`; the exact
    /// enumerator in [`crate::enumerate`] is cross-checked against it.
    pub fn min_gapness(&self) -> Option<(f64, Assignment)> {
        let sums = self.chunk_sums();
        let try_gap = |g: f64| -> Option<Assignment> {
            for &l in &sums {
                if let Some(a) = self.solve_window(l, l + g + 1e-9, &[]) {
                    return Some(a);
                }
            }
            None
        };
        // Candidate gaps: all pairwise differences (including 0).
        let mut gaps: Vec<f64> = vec![0.0];
        for (ai, &a) in sums.iter().enumerate() {
            for &b in &sums[ai + 1..] {
                gaps.push(b - a);
            }
        }
        gaps.sort_by(f64::total_cmp);
        gaps.dedup_by(|a, b| (*a - *b).abs() < 1e-9);

        let mut lo = 0usize;
        let mut hi = gaps.len();
        let mut best = None;
        while lo < hi {
            let mid = (lo + hi) / 2;
            match try_gap(gaps[mid]) {
                Some(a) => {
                    best = Some((gaps[mid], a));
                    hi = mid;
                }
                None => lo = mid + 1,
            }
        }
        best
    }

    /// Enumerates up to `k` distinct schedules in non-decreasing predicted
    /// latency order via blocking clauses (the paper's candidate set, 𝒦=20).
    pub fn latency_candidates(&self, k: usize) -> Vec<(f64, Assignment)> {
        let mut e = self.latency_enumerator();
        let mut found: Vec<(f64, Assignment)> = Vec::with_capacity(k);
        while found.len() < k {
            match e.next_candidate() {
                Some(ta) => found.push(ta),
                None => break,
            }
        }
        found
    }

    /// Creates an incremental enumerator over distinct schedules in
    /// non-decreasing predicted-latency order (what
    /// [`ScheduleProblem::latency_candidates`] drives).
    pub fn latency_enumerator(&self) -> LatencyEnumerator<'_> {
        LatencyEnumerator {
            state: EnumState::new(self),
            problem: self,
        }
    }

    /// Consumes the problem into a self-contained enumeration session.
    ///
    /// Same incremental semantics as [`ScheduleProblem::latency_enumerator`],
    /// but owning the problem so the session can be stored in long-lived
    /// structures (e.g. a serving cell that keeps one solver session — with
    /// its learned clauses and blocking set — warm across requests).
    pub fn into_latency_enumerator(self) -> OwnedLatencyEnumerator {
        OwnedLatencyEnumerator {
            state: EnumState::new(&self),
            problem: self,
        }
    }
}

/// Incremental blocking-clause enumeration of schedules in non-decreasing
/// predicted-latency (`T_max`) order.
///
/// The naive enumeration re-encodes and re-binary-searches the whole
/// problem from scratch on every round — K rounds × O(log sums) probes,
/// each rebuilding the full clause database. This enumerator exploits two
/// monotonicity facts:
///
/// 1. Blocking clauses only shrink the solution set, so the minimal
///    feasible latency tier never *decreases* across rounds — the binary
///    search for the next tier starts at the current one instead of zero.
/// 2. [`Solver`] supports adding clauses between `solve()` calls, so while
///    consecutive candidates share a tier, one persistent solver instance
///    absorbs each new blocking clause and re-solves — no rebuild at all.
///
/// Every model found at tier `t` has its maximum chunk sum *exactly*
/// `sums[t]`: were it smaller it would have satisfied the window at a lower
/// tier already proven infeasible (blocking never removed it before it was
/// emitted), a contradiction. So reported latencies match the
/// re-encode-every-round path bit-for-bit.
#[derive(Debug)]
pub struct LatencyEnumerator<'a> {
    problem: &'a ScheduleProblem,
    state: EnumState,
}

impl LatencyEnumerator<'_> {
    /// Returns the next-cheapest unseen schedule as `(T_max, assignment)`,
    /// or `None` once the schedule space is exhausted.
    pub fn next_candidate(&mut self) -> Option<(f64, Assignment)> {
        self.state.next_candidate(self.problem)
    }
}

/// A self-contained enumeration session: [`LatencyEnumerator`] semantics
/// without the borrow, so one incremental solver session (persistent
/// clause database, blocking set, learned clauses) can live inside a cache
/// cell or service and be resumed across many requests.
#[derive(Debug)]
pub struct OwnedLatencyEnumerator {
    problem: ScheduleProblem,
    state: EnumState,
}

impl OwnedLatencyEnumerator {
    /// Returns the next-cheapest unseen schedule as `(T_max, assignment)`,
    /// or `None` once the schedule space is exhausted.
    pub fn next_candidate(&mut self) -> Option<(f64, Assignment)> {
        self.state.next_candidate(&self.problem)
    }

    /// The underlying problem this session enumerates.
    pub fn problem(&self) -> &ScheduleProblem {
        &self.problem
    }

    /// Number of schedules emitted (and blocked) so far in this session.
    pub fn emitted(&self) -> usize {
        self.state.blocked.len()
    }
}

/// The borrow-free enumeration state both enumerator flavors share.
#[derive(Debug)]
struct EnumState {
    /// Sorted distinct achievable chunk sums — the latency tiers.
    sums: Vec<f64>,
    /// Lowest tier index not yet proven infeasible for the blocked set.
    tier: usize,
    /// Persistent solver at `sums[tier]`, with every blocking clause so far.
    solver: Option<(Solver, Vec<Vec<Var>>)>,
    blocked: Vec<Assignment>,
    exhausted: bool,
}

impl EnumState {
    fn new(problem: &ScheduleProblem) -> EnumState {
        EnumState {
            sums: problem.chunk_sums(),
            tier: 0,
            solver: None,
            blocked: Vec::new(),
            exhausted: false,
        }
    }

    fn next_candidate(&mut self, problem: &ScheduleProblem) -> Option<(f64, Assignment)> {
        while !self.exhausted {
            if let Some((solver, x)) = self.solver.as_mut() {
                match solver.solve() {
                    SolveResult::Sat(model) => {
                        let a = problem.decode(x, &model);
                        let clause: Vec<_> =
                            a.iter().enumerate().map(|(i, &c)| x[i][c].neg()).collect();
                        solver.add_clause(&clause);
                        self.blocked.push(a.clone());
                        return Some((self.sums[self.tier], a));
                    }
                    SolveResult::Unsat => {
                        // Tier drained; resume the search strictly above it.
                        self.solver = None;
                        self.tier += 1;
                    }
                }
            }
            // Binary search the smallest feasible tier in [tier, len).
            let (mut lo, mut hi) = (self.tier, self.sums.len());
            let mut found = None;
            while lo < hi {
                let mid = (lo + hi) / 2;
                if problem
                    .solve_window(0.0, self.sums[mid], &self.blocked)
                    .is_some()
                {
                    found = Some(mid);
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            match found {
                Some(t) => {
                    self.tier = t;
                    // Materialize the persistent solver at the new tier;
                    // the loop's next iteration pulls a model from it.
                    self.solver = Some(problem.encode(0.0, self.sums[t], &self.blocked));
                }
                None => self.exhausted = true,
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 3 stages × 2 classes with obvious structure.
    fn small() -> ScheduleProblem {
        ScheduleProblem::new(vec![
            vec![10.0, 100.0],
            vec![100.0, 10.0],
            vec![10.0, 100.0],
        ])
        .unwrap()
    }

    #[test]
    fn rejects_bad_tables() {
        assert!(matches!(
            ScheduleProblem::new(vec![]),
            Err(ProblemError::BadShape)
        ));
        assert!(matches!(
            ScheduleProblem::new(vec![vec![1.0], vec![1.0, 2.0]]),
            Err(ProblemError::BadShape)
        ));
        assert!(matches!(
            ScheduleProblem::new(vec![vec![1.0, -2.0]]),
            Err(ProblemError::BadLatency { stage: 0, class: 1 })
        ));
    }

    #[test]
    fn validity_checks_contiguity() {
        let p = small();
        assert!(p.is_valid(&[0, 0, 0]));
        assert!(p.is_valid(&[0, 1, 1]));
        assert!(!p.is_valid(&[0, 1, 0]), "class 0 reappears");
        assert!(!p.is_valid(&[0, 1]), "wrong length");
        assert!(!p.is_valid(&[0, 2, 2]), "class out of range");
    }

    #[test]
    fn chunk_sums_of_assignment() {
        let p = small();
        assert_eq!(p.chunk_sums_of(&[0, 0, 0]), vec![120.0]);
        assert_eq!(p.chunk_sums_of(&[0, 1, 1]), vec![10.0, 110.0]);
        assert_eq!(p.chunk_sums_of(&[0, 0, 1]), vec![110.0, 100.0]);
    }

    #[test]
    fn solve_window_respects_bounds() {
        let p = small();
        // Only the all-on-one-class schedules have a single chunk ≥ 120.
        let a = p.solve_window(115.0, 125.0, &[]).expect("feasible");
        assert_eq!(p.chunk_sums_of(&a), vec![120.0]);
        // Nothing has every chunk in [1, 5].
        assert!(p.solve_window(1.0, 5.0, &[]).is_none());
    }

    #[test]
    fn min_latency_finds_bottleneck_optimum() {
        let p = small();
        // Best split: [0] on 0 (10), [1,2] on 1 (110) → 110; or
        // [0,1] on 0 (110), [2] on 1 (100) → 110. Optimum T_max = 110.
        let (t, a) = p.min_latency(&[]).expect("feasible");
        assert!((t - 110.0).abs() < 1e-6, "got {t}");
        let sums = p.chunk_sums_of(&a);
        assert!(sums.iter().all(|&s| s <= 110.0 + 1e-6));
    }

    #[test]
    fn min_gapness_prefers_balanced_splits() {
        let p = ScheduleProblem::new(vec![
            vec![50.0, 500.0],
            vec![50.0, 500.0],
            vec![500.0, 100.0],
        ])
        .unwrap();
        // [0,1] on class 0 = 100, [2] on class 1 = 100 → gapness 0.
        let (g, a) = p.min_gapness().expect("feasible");
        assert!(g.abs() < 1e-6, "gapness {g}");
        assert_eq!(a, vec![0, 0, 1]);
    }

    #[test]
    fn blocking_yields_distinct_candidates() {
        let p = small();
        let cands = p.latency_candidates(10);
        assert!(cands.len() >= 4);
        for (i, (_, a)) in cands.iter().enumerate() {
            for (_, b) in &cands[i + 1..] {
                assert_ne!(a, b, "duplicate candidate");
            }
            assert!(p.is_valid(a));
        }
        // Non-decreasing latency.
        for w in cands.windows(2) {
            assert!(w[0].0 <= w[1].0 + 1e-9);
        }
    }

    #[test]
    fn disallowed_class_never_used() {
        let p = ScheduleProblem::new(vec![vec![10.0, 1.0, 20.0], vec![10.0, 1.0, 20.0]])
            .unwrap()
            .with_allowed(vec![true, false, true])
            .unwrap();
        for (_, a) in p.latency_candidates(20) {
            assert!(a.iter().all(|&c| c != 1), "used disallowed class: {a:?}");
        }
    }

    #[test]
    fn single_stage_problem() {
        let p = ScheduleProblem::new(vec![vec![5.0, 3.0]]).unwrap();
        let (t, a) = p.min_latency(&[]).unwrap();
        assert_eq!(a, vec![1]);
        assert!((t - 3.0).abs() < 1e-9);
        let (g, _) = p.min_gapness().unwrap();
        assert_eq!(g, 0.0);
    }

    #[test]
    fn candidate_count_bounded_by_schedule_space() {
        // 2 stages × 2 classes: schedules = {00, 01, 10, 11} minus
        // non-contiguous (none for n=2) = 4.
        let p = ScheduleProblem::new(vec![vec![1.0, 2.0], vec![1.0, 2.0]]).unwrap();
        let cands = p.latency_candidates(100);
        assert_eq!(cands.len(), 4);
    }

    #[test]
    fn owned_enumerator_matches_borrowed() {
        let p = small();
        let borrowed = p.latency_candidates(20);
        let mut session = p.clone().into_latency_enumerator();
        let mut owned = Vec::new();
        while let Some(ta) = session.next_candidate() {
            owned.push(ta);
        }
        assert_eq!(owned, borrowed);
        assert_eq!(session.emitted(), borrowed.len());
        assert_eq!(session.problem().stages(), p.stages());
        // A drained session stays drained.
        assert!(session.next_candidate().is_none());
    }
}
