//! DAG generalization of the schedule encoding (ROADMAP item 3).
//!
//! The chain encoding in [`crate::ScheduleProblem`] assumes stages form a
//! total order, which makes contiguity (C2) an interval condition. This
//! module lifts the model to fork/join DAGs:
//!
//! - **C1** is unchanged: exactly one PU class per stage (a *replicated*
//!   stage instead gets an exclusive class pair, below).
//! - **C2 → path-convexity**: the stages of one class must not leave a
//!   "hole" on any dependency path. For every dependency-ordered pair
//!   `(u, v)` on class `c`, every stage `w` with `u ⇝ w ⇝ v` must also be
//!   on `c`. On a chain this is exactly interval contiguity; on a DAG it
//!   still allows one class to pack *incomparable* stages from sibling
//!   branches — the packing freedom linearization destroys.
//! - **Chunk-graph acyclicity**: one PU serves all stages of a class
//!   run-to-completion per task, so the quotient graph over class chunks
//!   must be acyclic for tokens to flow forward. (Convexity alone does not
//!   imply this; see `chunk_graph_acyclic`.)
//! - **C3 windows and the chunk cap** are enforced lazily (CEGAR): the SAT
//!   core carries C1 + convexity + per-stage window prunes, and every
//!   decoded model is re-validated in full — invalid models are blocked
//!   and the solver re-queried. The exact enumerator
//!   ([`DagProblem::latency_candidates_exact`]) is the oracle the SAT path
//!   is property-tested against, mirroring the chain setup.
//! - **Replication**: one bottleneck stage may be split across an
//!   exclusive pair of classes; each replica serves every other task, so
//!   its chunk sum is half the stage latency on its class. Downstream, a
//!   deterministic round-robin merge restores task order.
//!
//! Chain-shaped DAGs reduce bit-for-bit to the chain encoding: convexity
//! degenerates to interval contiguity and every chunk sum is the same
//! prefix-difference the chain problem computes.

use crate::{Assignment, ProblemError, ScheduleProblem, SolveResult, Solver, Var};

/// Sentinel class index marking the replicated stage inside a
/// [`ReplicatedPlan`] assignment.
pub const REPLICA: usize = usize::MAX;

/// Errors constructing a [`StageDag`] or [`DagProblem`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DagError {
    /// An edge references a stage index out of range.
    EdgeOutOfRange {
        /// The offending edge.
        edge: (usize, usize),
    },
    /// The dependency graph contains a cycle.
    Cyclic,
    /// More stages than the 64 the reachability bitmasks support.
    TooManyStages {
        /// The offending stage count.
        stages: usize,
    },
    /// The latency table does not match the DAG's stage count, or is
    /// otherwise malformed.
    Base(ProblemError),
    /// Latency table rows differ from the DAG's stage count.
    StageMismatch {
        /// Rows in the latency table.
        table: usize,
        /// Stages in the DAG.
        dag: usize,
    },
}

impl std::fmt::Display for DagError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DagError::EdgeOutOfRange { edge } => {
                write!(
                    f,
                    "edge ({}, {}) references an unknown stage",
                    edge.0, edge.1
                )
            }
            DagError::Cyclic => f.write_str("stage dependency graph contains a cycle"),
            DagError::TooManyStages { stages } => {
                write!(f, "{stages} stages exceed the supported maximum of 64")
            }
            DagError::Base(e) => write!(f, "{e}"),
            DagError::StageMismatch { table, dag } => {
                write!(
                    f,
                    "latency table has {table} rows but the DAG has {dag} stages"
                )
            }
        }
    }
}

impl std::error::Error for DagError {}

impl From<ProblemError> for DagError {
    fn from(e: ProblemError) -> DagError {
        DagError::Base(e)
    }
}

/// A stage-dependency DAG with its reachability closure precomputed —
/// the solver-side mirror of `bt_kernels::TaskGraph` (kept dependency-free
/// on purpose: the solver only sees indices and latencies).
#[derive(Debug, Clone)]
pub struct StageDag {
    n: usize,
    deps: Vec<(usize, usize)>,
    /// Deterministic topological order (Kahn, lowest-index-first).
    topo: Vec<usize>,
    /// Bit `j` of `reach[i]`: a path with ≥ 1 edge leads from `i` to `j`.
    reach: Vec<u64>,
}

impl StageDag {
    /// Builds a DAG over `n` stages from dependency edges `(from, to)`.
    ///
    /// # Errors
    ///
    /// Returns [`DagError`] on out-of-range edges, cycles, or `n > 64`.
    pub fn new(n: usize, deps: Vec<(usize, usize)>) -> Result<StageDag, DagError> {
        if n > 64 {
            return Err(DagError::TooManyStages { stages: n });
        }
        for &edge in &deps {
            if edge.0 >= n || edge.1 >= n {
                return Err(DagError::EdgeOutOfRange { edge });
            }
        }
        // Kahn's algorithm with lowest-index-first tie-breaking, matching
        // TaskGraph::linearize.
        let mut indegree = vec![0usize; n];
        let mut out: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(from, to) in &deps {
            indegree[to] += 1;
            out[from].push(to);
        }
        let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..n)
            .filter(|&i| indegree[i] == 0)
            .map(std::cmp::Reverse)
            .collect();
        let mut topo = Vec::with_capacity(n);
        while let Some(std::cmp::Reverse(i)) = ready.pop() {
            topo.push(i);
            for &j in &out[i] {
                indegree[j] -= 1;
                if indegree[j] == 0 {
                    ready.push(std::cmp::Reverse(j));
                }
            }
        }
        if topo.len() != n {
            return Err(DagError::Cyclic);
        }
        let mut reach = vec![0u64; n];
        for &i in topo.iter().rev() {
            let mut m = 0u64;
            for &j in &out[i] {
                m |= (1u64 << j) | reach[j];
            }
            reach[i] = m;
        }
        Ok(StageDag {
            n,
            deps,
            topo,
            reach,
        })
    }

    /// The linear chain over `n` stages.
    pub fn chain(n: usize) -> StageDag {
        StageDag::new(n, (1..n).map(|i| (i - 1, i)).collect()).expect("chains are acyclic")
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the DAG has no stages.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The dependency edges.
    pub fn deps(&self) -> &[(usize, usize)] {
        &self.deps
    }

    /// The deterministic topological order.
    pub fn topo_order(&self) -> &[usize] {
        &self.topo
    }

    /// Whether a path with at least one edge leads from `u` to `v`.
    pub fn reaches(&self, u: usize, v: usize) -> bool {
        self.reach[u] >> v & 1 == 1
    }

    /// Whether the DAG is a chain up to relabeling — every consecutive
    /// pair of the topological order is dependency-ordered, so the chain
    /// encoding loses nothing.
    pub fn is_chain(&self) -> bool {
        self.topo.windows(2).all(|w| self.reaches(w[0], w[1]))
    }
}

/// One chunk of a DAG schedule: all stages one PU class hosts, served by a
/// single PU in topological order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DagChunk {
    /// Hosting class, or [`REPLICA`] for a replicated stage's chunks.
    pub class: usize,
    /// Member stages in topological order.
    pub stages: Vec<usize>,
}

/// Evaluation of a valid DAG assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct DagEval {
    /// Stage → class assignment.
    pub assignment: Assignment,
    /// Per-chunk latency sums, in chunk order ([`DagProblem::chunks_of`]).
    pub chunk_sums: Vec<f64>,
    /// Bottleneck chunk sum (predicted steady-state time per task).
    pub t_max: f64,
    /// Smallest chunk sum.
    pub t_min: f64,
}

impl DagEval {
    /// Gapness (`T_max − T_min`), the paper's O1 objective.
    pub fn gapness(&self) -> f64 {
        self.t_max - self.t_min
    }
}

/// A replicated schedule: `stage` runs on *both* classes of the exclusive
/// pair, each replica serving alternate tasks; every other stage keeps a
/// single class and none may use the pair's classes.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicatedPlan {
    /// The replicated stage.
    pub stage: usize,
    /// The exclusive class pair, ascending.
    pub classes: (usize, usize),
    /// Stage → class assignment with `assignment[stage] == REPLICA`.
    pub assignment: Assignment,
    /// Bottleneck chunk sum, replica chunks priced at half service.
    pub t_max: f64,
}

/// A schedule-optimization instance over a stage DAG: the chain problem's
/// latency table plus the dependency structure.
#[derive(Debug, Clone)]
pub struct DagProblem {
    base: ScheduleProblem,
    dag: StageDag,
}

impl DagProblem {
    /// Creates a DAG problem from a `stages × classes` latency table and
    /// the stage DAG.
    ///
    /// # Errors
    ///
    /// Returns [`DagError`] if the table is malformed or does not match
    /// the DAG.
    pub fn new(latency: Vec<Vec<f64>>, dag: StageDag) -> Result<DagProblem, DagError> {
        if latency.len() != dag.len() {
            return Err(DagError::StageMismatch {
                table: latency.len(),
                dag: dag.len(),
            });
        }
        let base = ScheduleProblem::new(latency)?;
        Ok(DagProblem { base, dag })
    }

    /// Restricts which classes may host chunks.
    ///
    /// # Errors
    ///
    /// Propagates [`ProblemError`] from the chain problem.
    pub fn with_allowed(mut self, allowed: Vec<bool>) -> Result<DagProblem, DagError> {
        self.base = self.base.with_allowed(allowed)?;
        Ok(self)
    }

    /// Caps the number of chunks (distinct classes used).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn with_max_chunks(mut self, k: usize) -> DagProblem {
        self.base = self.base.with_max_chunks(k);
        self
    }

    /// Selects the SAT engine CEGAR window probes run on (default
    /// [`crate::Engine::Cdcl`]).
    pub fn with_engine(mut self, engine: crate::Engine) -> DagProblem {
        self.base = self.base.with_engine(engine);
        self
    }

    /// The underlying chain problem (latency table + permissions).
    pub fn base(&self) -> &ScheduleProblem {
        &self.base
    }

    /// The stage DAG.
    pub fn dag(&self) -> &StageDag {
        &self.dag
    }

    /// Number of stages.
    pub fn stages(&self) -> usize {
        self.base.stages()
    }

    /// Number of PU classes.
    pub fn classes(&self) -> usize {
        self.base.classes()
    }

    /// Whether every path-ordered same-class pair has all its between
    /// stages on that class (the generalized C2). `REPLICA` entries count
    /// as their own exclusive pseudo-class, so a replicated stage is a
    /// convexity barrier.
    fn convex(&self, assignment: &[usize]) -> bool {
        let n = self.stages();
        for u in 0..n {
            for v in 0..n {
                if assignment[u] != assignment[v] || !self.dag.reaches(u, v) {
                    continue;
                }
                for w in 0..n {
                    if self.dag.reaches(u, w)
                        && self.dag.reaches(w, v)
                        && assignment[w] != assignment[u]
                    {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Whether the quotient graph over chunks is acyclic — required for
    /// run-to-completion chunk service. Convexity alone does not give
    /// this: with chunks A = {a1, a2}, B = {b1, b2} and edges a1→b1,
    /// b2→a2 (all four incomparable pairwise within their chunk), both
    /// chunks are convex yet A→B→A cycles.
    fn chunk_graph_acyclic(&self, assignment: &[usize], chunk_of: &[usize], chunks: usize) -> bool {
        let _ = assignment;
        let mut edges: Vec<(usize, usize)> = self
            .dag
            .deps()
            .iter()
            .filter_map(|&(u, v)| {
                let (cu, cv) = (chunk_of[u], chunk_of[v]);
                (cu != cv).then_some((cu, cv))
            })
            .collect();
        edges.sort_unstable();
        edges.dedup();
        let mut indegree = vec![0usize; chunks];
        let mut out: Vec<Vec<usize>> = vec![Vec::new(); chunks];
        for &(a, b) in &edges {
            indegree[b] += 1;
            out[a].push(b);
        }
        let mut ready: Vec<usize> = (0..chunks).filter(|&c| indegree[c] == 0).collect();
        let mut seen = 0;
        while let Some(c) = ready.pop() {
            seen += 1;
            for &d in &out[c] {
                indegree[d] -= 1;
                if indegree[d] == 0 {
                    ready.push(d);
                }
            }
        }
        seen == chunks
    }

    /// Maps each stage to its chunk id; chunk ids are assigned by first
    /// appearance in topological order (so chains get pipeline order).
    /// Stages share a chunk iff they share a class; each `REPLICA` stage
    /// is its own chunk.
    fn chunk_ids(&self, assignment: &[usize]) -> (Vec<usize>, usize) {
        let n = self.stages();
        let mut chunk_of = vec![usize::MAX; n];
        let mut class_chunk = vec![usize::MAX; self.classes()];
        let mut next = 0usize;
        for &s in self.dag.topo_order() {
            let c = assignment[s];
            if c == REPLICA {
                chunk_of[s] = next;
                next += 1;
            } else if class_chunk[c] == usize::MAX {
                class_chunk[c] = next;
                chunk_of[s] = next;
                next += 1;
            } else {
                chunk_of[s] = class_chunk[c];
            }
        }
        (chunk_of, next)
    }

    /// Core validity: C1 range/permissions, convexity, chunk cap, and
    /// chunk-graph acyclicity. `replica` marks the stage allowed to carry
    /// [`REPLICA`].
    fn validate(&self, assignment: &[usize], replica: Option<usize>) -> bool {
        if assignment.len() != self.stages() {
            return false;
        }
        for (s, &c) in assignment.iter().enumerate() {
            if c == REPLICA {
                if replica != Some(s) {
                    return false;
                }
            } else if c >= self.classes() || !self.base.is_allowed(c) {
                return false;
            }
        }
        if let Some(r) = replica {
            if assignment[r] != REPLICA {
                return false;
            }
        }
        if !self.convex(assignment) {
            return false;
        }
        let (chunk_of, chunks) = self.chunk_ids(assignment);
        if let Some(k) = self.base.max_chunks() {
            // A replicated stage occupies two PUs (two replica chunks).
            let weight = chunks + usize::from(replica.is_some());
            if weight > k {
                return false;
            }
        }
        self.chunk_graph_acyclic(assignment, &chunk_of, chunks)
    }

    /// Whether `assignment` is a valid (unreplicated) DAG schedule.
    pub fn is_valid(&self, assignment: &[usize]) -> bool {
        self.validate(assignment, None)
    }

    /// The chunks of a valid assignment, in chunk-id (first topological
    /// appearance) order — pipeline order on chains.
    ///
    /// # Panics
    ///
    /// Panics if the assignment is invalid.
    pub fn chunks_of(&self, assignment: &[usize]) -> Vec<DagChunk> {
        assert!(self.is_valid(assignment), "invalid DAG assignment");
        self.chunks_unchecked(assignment)
    }

    fn chunks_unchecked(&self, assignment: &[usize]) -> Vec<DagChunk> {
        let (chunk_of, chunks) = self.chunk_ids(assignment);
        let mut out = vec![
            DagChunk {
                class: usize::MAX,
                stages: Vec::new(),
            };
            chunks
        ];
        for &s in self.dag.topo_order() {
            let id = chunk_of[s];
            out[id].class = assignment[s];
            out[id].stages.push(s);
        }
        out
    }

    /// Evaluates a valid assignment: per-chunk sums and the bottleneck.
    ///
    /// # Panics
    ///
    /// Panics if the assignment is invalid.
    pub fn evaluate(&self, assignment: &[usize]) -> DagEval {
        assert!(self.is_valid(assignment), "invalid DAG assignment");
        let chunk_sums: Vec<f64> = self
            .chunks_unchecked(assignment)
            .iter()
            .map(|ch| {
                ch.stages
                    .iter()
                    .map(|&s| self.base.latency(s, ch.class))
                    .sum()
            })
            .collect();
        let t_max = chunk_sums.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let t_min = chunk_sums.iter().copied().fold(f64::INFINITY, f64::min);
        DagEval {
            assignment: assignment.to_vec(),
            chunk_sums,
            t_max,
            t_min,
        }
    }

    /// Calls `f` for every valid assignment (odometer over allowed
    /// classes, validity-filtered) — the exact enumerator and the oracle
    /// for the SAT path. Exponential in stages; paper pipelines are ≤ 9.
    pub fn for_each_valid<F: FnMut(&[usize])>(&self, mut f: F) {
        let n = self.stages();
        let allowed: Vec<usize> = (0..self.classes())
            .filter(|&c| self.base.is_allowed(c))
            .collect();
        if allowed.is_empty() || n == 0 {
            return;
        }
        let mut idx = vec![0usize; n];
        let mut assignment: Vec<usize> = vec![allowed[0]; n];
        loop {
            if self.is_valid(&assignment) {
                f(&assignment);
            }
            // Odometer increment.
            let mut s = 0;
            loop {
                if s == n {
                    return;
                }
                idx[s] += 1;
                if idx[s] < allowed.len() {
                    assignment[s] = allowed[idx[s]];
                    break;
                }
                idx[s] = 0;
                assignment[s] = allowed[0];
                s += 1;
            }
        }
    }

    /// Exact minimum-bottleneck schedule by enumeration; ties broken by
    /// gapness then lexicographic assignment (deterministic).
    pub fn min_latency_exact(&self) -> Option<(f64, Assignment)> {
        let mut best: Option<DagEval> = None;
        self.for_each_valid(|a| {
            let eval = self.evaluate(a);
            let better = match &best {
                None => true,
                Some(b) => {
                    (eval.t_max, eval.gapness(), &eval.assignment)
                        < (b.t_max, b.gapness(), &b.assignment)
                }
            };
            if better {
                best = Some(eval);
            }
        });
        best.map(|e| (e.t_max, e.assignment))
    }

    /// Up to `k` distinct schedules in non-decreasing `(T_max, gapness,
    /// lex)` order — the exact counterpart of the chain enumerator's
    /// candidate list.
    pub fn latency_candidates_exact(&self, k: usize) -> Vec<DagEval> {
        let mut all: Vec<DagEval> = Vec::new();
        self.for_each_valid(|a| all.push(self.evaluate(a)));
        all.sort_by(|x, y| {
            x.t_max
                .total_cmp(&y.t_max)
                .then(x.gapness().total_cmp(&y.gapness()))
                .then(x.assignment.cmp(&y.assignment))
        });
        all.truncate(k);
        all
    }

    /// Builds the SAT core for the DAG window problem: C1 + disallowed
    /// classes + path-convexity + per-stage window prunes + blocking
    /// clauses. Chunk-sum windows, the chunk cap, and chunk-graph
    /// acyclicity are enforced lazily by the CEGAR loop in
    /// [`DagProblem::solve_window`].
    fn encode(&self, hi: f64, blocked: &[Assignment]) -> (Solver, Vec<Vec<Var>>) {
        let n = self.stages();
        let m = self.classes();
        let mut solver = Solver::with_engine(self.base.engine());
        let x: Vec<Vec<Var>> = (0..n)
            .map(|_| (0..m).map(|_| solver.new_var()).collect())
            .collect();
        for c in 0..m {
            if !self.base.is_allowed(c) {
                for row in &x {
                    solver.add_clause(&[row[c].neg()]);
                }
            }
        }
        for row in &x {
            let lits: Vec<_> = row.iter().map(|v| v.pos()).collect();
            solver.add_exactly_one(&lits);
        }
        // Generalized C2: for each dependency-ordered pair (u, v) and each
        // stage w strictly between them on some path,
        // (x[u][c] ∧ x[v][c]) → x[w][c].
        for u in 0..n {
            for v in 0..n {
                if !self.dag.reaches(u, v) {
                    continue;
                }
                for w in 0..n {
                    if self.dag.reaches(u, w) && self.dag.reaches(w, v) {
                        for ((xu, xv), xw) in x[u].iter().zip(&x[v]).zip(&x[w]) {
                            solver.add_clause(&[xu.neg(), xv.neg(), xw.pos()]);
                        }
                    }
                }
            }
        }
        // Window prune: a chunk containing stage s on class c sums to at
        // least latency(s, c); above `hi` the assignment is hopeless.
        let eps = 1e-9;
        for (s, row) in x.iter().enumerate() {
            for (c, var) in row.iter().enumerate() {
                if self.base.is_allowed(c) && self.base.latency(s, c) > hi + eps {
                    solver.add_clause(&[var.neg()]);
                }
            }
        }
        for sched in blocked {
            let clause: Vec<_> = sched
                .iter()
                .enumerate()
                .map(|(i, &c)| x[i][c].neg())
                .collect();
            solver.add_clause(&clause);
        }
        (solver, x)
    }

    /// Solves the DAG window decision problem `D(lo, hi)` excluding
    /// `blocked` schedules: CEGAR over the SAT core, blocking every
    /// decoded model that fails full validation or the window until a
    /// genuine solution (or UNSAT) is reached. Exact because the
    /// assignment space is finite and each round removes one assignment.
    pub fn solve_window(&self, lo: f64, hi: f64, blocked: &[Assignment]) -> Option<Assignment> {
        let eps = 1e-9;
        let (mut solver, x) = self.encode(hi, blocked);
        loop {
            match solver.solve() {
                SolveResult::Unsat => return None,
                SolveResult::Sat(model) => {
                    let assignment: Assignment = x
                        .iter()
                        .map(|row| {
                            row.iter()
                                .position(|v| model.value(*v))
                                .expect("C1 guarantees one class per stage")
                        })
                        .collect();
                    let ok = self.is_valid(&assignment) && {
                        let eval = self.evaluate(&assignment);
                        eval.t_max <= hi + eps && eval.t_min >= lo - eps
                    };
                    if ok {
                        return Some(assignment);
                    }
                    let clause: Vec<_> = assignment
                        .iter()
                        .enumerate()
                        .map(|(i, &c)| x[i][c].neg())
                        .collect();
                    solver.add_clause(&clause);
                }
            }
        }
    }

    /// All candidate bottleneck values: per-class subset sums of allowed
    /// stages (a superset of achievable chunk sums), sorted and deduped.
    /// Exponential in stages — fine at pipeline scale, guarded at 20.
    ///
    /// # Panics
    ///
    /// Panics if the problem has more than 20 stages.
    fn tier_sums(&self) -> Vec<f64> {
        let n = self.stages();
        assert!(
            n <= 20,
            "SAT tier search supports up to 20 stages (paper pipelines are ≤ 9)"
        );
        let mut sums = Vec::new();
        for c in 0..self.classes() {
            if !self.base.is_allowed(c) {
                continue;
            }
            let lats: Vec<f64> = (0..n).map(|s| self.base.latency(s, c)).collect();
            let mut acc = vec![0.0f64];
            for &l in &lats {
                let with: Vec<f64> = acc.iter().map(|&a| a + l).collect();
                acc.extend(with);
            }
            sums.extend(acc.into_iter().filter(|&s| s > 0.0));
        }
        sums.sort_by(f64::total_cmp);
        sums.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        sums
    }

    /// Minimizes the bottleneck chunk sum via binary search over candidate
    /// tiers, each probe a CEGAR window solve — the SAT-engine optimum the
    /// exact enumerator is cross-checked against.
    pub fn min_latency(&self, blocked: &[Assignment]) -> Option<(f64, Assignment)> {
        let sums = self.tier_sums();
        let mut lo = 0usize;
        let mut hi = sums.len();
        let mut best: Option<(f64, Assignment)> = None;
        while lo < hi {
            let mid = (lo + hi) / 2;
            match self.solve_window(0.0, sums[mid], blocked) {
                Some(a) => {
                    let t = self.evaluate(&a).t_max;
                    best = Some((t, a));
                    hi = mid;
                }
                None => lo = mid + 1,
            }
        }
        best
    }

    /// Up to `k` distinct schedules in non-decreasing predicted-latency
    /// order via blocking clauses over repeated [`DagProblem::min_latency`]
    /// calls.
    pub fn latency_candidates(&self, k: usize) -> Vec<(f64, Assignment)> {
        let mut blocked: Vec<Assignment> = Vec::new();
        let mut found = Vec::with_capacity(k);
        while found.len() < k {
            match self.min_latency(&blocked) {
                Some((t, a)) => {
                    blocked.push(a.clone());
                    found.push((t, a));
                }
                None => break,
            }
        }
        found
    }

    /// Whether `plan`'s assignment (with its `REPLICA` marker) is a valid
    /// replicated schedule: the pair's classes are exclusive to the
    /// replicated stage, everything else is a valid DAG schedule with the
    /// replica as a convexity barrier.
    pub fn is_valid_replicated(&self, plan: &ReplicatedPlan) -> bool {
        let (c1, c2) = plan.classes;
        if c1 == c2
            || c1 >= self.classes()
            || c2 >= self.classes()
            || !self.base.is_allowed(c1)
            || !self.base.is_allowed(c2)
            || plan.stage >= self.stages()
        {
            return false;
        }
        if plan
            .assignment
            .iter()
            .enumerate()
            .any(|(s, &c)| s != plan.stage && (c == c1 || c == c2))
        {
            return false;
        }
        self.validate(&plan.assignment, Some(plan.stage))
    }

    /// Evaluates a valid replicated plan: real chunks at full service,
    /// each replica chunk at `latency(stage, class) / 2` (round-robin
    /// halves the per-replica arrival rate).
    ///
    /// # Panics
    ///
    /// Panics if the plan is invalid.
    pub fn evaluate_replicated(&self, plan: &ReplicatedPlan) -> DagEval {
        assert!(self.is_valid_replicated(plan), "invalid replicated plan");
        let mut chunk_sums = Vec::new();
        for ch in self.chunks_unchecked(&plan.assignment) {
            if ch.class == REPLICA {
                chunk_sums.push(self.base.latency(plan.stage, plan.classes.0) / 2.0);
                chunk_sums.push(self.base.latency(plan.stage, plan.classes.1) / 2.0);
            } else {
                chunk_sums.push(
                    ch.stages
                        .iter()
                        .map(|&s| self.base.latency(s, ch.class))
                        .sum(),
                );
            }
        }
        let t_max = chunk_sums.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let t_min = chunk_sums.iter().copied().fold(f64::INFINITY, f64::min);
        DagEval {
            assignment: plan.assignment.clone(),
            chunk_sums,
            t_max,
            t_min,
        }
    }

    /// Exhaustive search for the best replication of `stage`: every
    /// exclusive class pair × every valid assignment of the remaining
    /// stages. Returns the plan minimizing the bottleneck (ties broken
    /// deterministically), or `None` if no configuration is feasible.
    pub fn best_replication(&self, stage: usize) -> Option<ReplicatedPlan> {
        if stage >= self.stages() {
            return None;
        }
        let allowed: Vec<usize> = (0..self.classes())
            .filter(|&c| self.base.is_allowed(c))
            .collect();
        let mut best: Option<(f64, ReplicatedPlan)> = None;
        for (i, &c1) in allowed.iter().enumerate() {
            for &c2 in &allowed[i + 1..] {
                let rest: Vec<usize> = allowed
                    .iter()
                    .copied()
                    .filter(|&c| c != c1 && c != c2)
                    .collect();
                if rest.is_empty() && self.stages() > 1 {
                    continue;
                }
                self.for_each_replicated(stage, &rest, |assignment| {
                    let plan = ReplicatedPlan {
                        stage,
                        classes: (c1, c2),
                        assignment: assignment.to_vec(),
                        t_max: 0.0,
                    };
                    if !self.is_valid_replicated(&plan) {
                        return;
                    }
                    let eval = self.evaluate_replicated(&plan);
                    let key = (eval.t_max, eval.gapness());
                    let better = match &best {
                        None => true,
                        Some((bt, bp)) => {
                            key < (*bt, {
                                let be = self.evaluate_replicated(bp);
                                be.gapness()
                            }) || (key.0 == *bt && plan.assignment < bp.assignment)
                        }
                    };
                    if better {
                        best = Some((
                            eval.t_max,
                            ReplicatedPlan {
                                t_max: eval.t_max,
                                ..plan
                            },
                        ));
                    }
                });
            }
        }
        best.map(|(_, p)| p)
    }

    /// Odometer over assignments where `stage` is pinned to `REPLICA` and
    /// every other stage ranges over `rest`.
    fn for_each_replicated<F: FnMut(&[usize])>(&self, stage: usize, rest: &[usize], mut f: F) {
        let n = self.stages();
        if rest.is_empty() {
            if n == 1 {
                f(&[REPLICA]);
            }
            return;
        }
        let free: Vec<usize> = (0..n).filter(|&s| s != stage).collect();
        let mut idx = vec![0usize; free.len()];
        let mut assignment = vec![rest[0]; n];
        assignment[stage] = REPLICA;
        loop {
            f(&assignment);
            let mut k = 0;
            loop {
                if k == free.len() {
                    return;
                }
                idx[k] += 1;
                if idx[k] < rest.len() {
                    assignment[free[k]] = rest[idx[k]];
                    break;
                }
                idx[k] = 0;
                assignment[free[k]] = rest[0];
                k += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The perception-style fork/join: 0 → {1 → 2, 3 → 4} → 5 → 6.
    fn fork_join_dag() -> StageDag {
        StageDag::new(
            7,
            vec![(0, 1), (0, 3), (1, 2), (3, 4), (2, 5), (4, 5), (5, 6)],
        )
        .unwrap()
    }

    #[test]
    fn rejects_bad_dags() {
        assert!(matches!(
            StageDag::new(2, vec![(0, 2)]),
            Err(DagError::EdgeOutOfRange { edge: (0, 2) })
        ));
        assert!(matches!(
            StageDag::new(2, vec![(0, 1), (1, 0)]),
            Err(DagError::Cyclic)
        ));
        assert!(matches!(
            StageDag::new(65, vec![]),
            Err(DagError::TooManyStages { stages: 65 })
        ));
    }

    #[test]
    fn chain_recognition() {
        assert!(StageDag::chain(5).is_chain());
        assert!(!fork_join_dag().is_chain());
        // Octree-style total order: linear even with extra edges.
        let octree = StageDag::new(
            7,
            vec![
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (2, 6),
                (3, 6),
                (5, 6),
            ],
        )
        .unwrap();
        assert!(octree.is_chain());
    }

    #[test]
    fn chain_dag_matches_chain_problem_validity() {
        let lat = vec![vec![10.0, 100.0], vec![100.0, 10.0], vec![10.0, 100.0]];
        let chain = ScheduleProblem::new(lat.clone()).unwrap();
        let dag = DagProblem::new(lat, StageDag::chain(3)).unwrap();
        for a in [
            vec![0, 0, 0],
            vec![0, 1, 1],
            vec![0, 1, 0],
            vec![1, 0, 0],
            vec![1, 1, 0],
        ] {
            assert_eq!(chain.is_valid(&a), dag.is_valid(&a), "{a:?}");
        }
    }

    #[test]
    fn cross_branch_packing_is_valid_only_on_the_dag() {
        // Pack the two branch heads {1, 3} and the two branch tails
        // {2, 4} onto shared classes: under the chain order 0..=6 both
        // classes "reappear" and C2 rejects; the DAG knows sibling
        // branches are incomparable, so the packing is convex.
        let lat = vec![vec![1.0, 1.0, 1.0, 1.0]; 7];
        let dag = DagProblem::new(lat.clone(), fork_join_dag()).unwrap();
        let chain = ScheduleProblem::new(lat).unwrap();
        let packing = vec![0, 1, 2, 1, 2, 3, 3];
        assert!(!chain.is_valid(&packing), "chain C2 must reject");
        assert!(dag.is_valid(&packing), "DAG convexity must accept");
        // But a genuine path hole is still rejected: 0 and 2 on one class
        // with the between stage 1 elsewhere.
        assert!(!dag.is_valid(&[0, 1, 0, 1, 1, 1, 1]));
        // And a chunk spanning the fork/join must absorb *both* branches:
        // {0, 5} with any branch stage elsewhere is non-convex.
        assert!(!dag.is_valid(&[0, 1, 1, 2, 2, 0, 0]));
    }

    #[test]
    fn chunk_cycle_rejected() {
        // a1=0, b1=1, b2=2, a2=3; edges a1→b1, b2→a2 plus branch-internal
        // edges keep every same-chunk pair incomparable, yet chunks
        // A = {0, 3}, B = {1, 2} form a quotient cycle.
        let dag = StageDag::new(4, vec![(0, 1), (2, 3)]).unwrap();
        let p = DagProblem::new(vec![vec![1.0, 1.0]; 4], dag).unwrap();
        let a = vec![0, 1, 1, 0];
        // Convex (0 and 3 are incomparable, as are 1 and 2) …
        assert!(p.convex(&a));
        // … but the chunk graph cycles, so the schedule is invalid.
        assert!(!p.is_valid(&a));
    }

    #[test]
    fn chunks_of_chain_in_pipeline_order() {
        let p = DagProblem::new(vec![vec![1.0, 2.0]; 4], StageDag::chain(4)).unwrap();
        let chunks = p.chunks_of(&[0, 0, 1, 1]);
        assert_eq!(chunks.len(), 2);
        assert_eq!(
            chunks[0],
            DagChunk {
                class: 0,
                stages: vec![0, 1]
            }
        );
        assert_eq!(
            chunks[1],
            DagChunk {
                class: 1,
                stages: vec![2, 3]
            }
        );
    }

    #[test]
    fn dag_beats_best_chain_schedule_when_packing_matters() {
        // Branch stages 2 and 4 are cheap on class 2; the heavies want
        // dedicated PUs. The chain can't give {2, 4} a shared class
        // without also absorbing stage 3.
        let lat = vec![
            vec![4.0, 50.0, 50.0], // 0: cheap on 0
            vec![50.0, 5.0, 50.0], // 1: cheap on 1
            vec![50.0, 50.0, 3.0], // 2: cheap on 2
            vec![5.0, 50.0, 50.0], // 3: cheap on 0
            vec![50.0, 50.0, 3.0], // 4: cheap on 2
            vec![1.0, 1.0, 1.0],   // 5
            vec![1.0, 1.0, 1.0],   // 6
        ];
        let dag = DagProblem::new(lat.clone(), fork_join_dag()).unwrap();
        let chain = ScheduleProblem::new(lat).unwrap();
        let (dag_t, dag_a) = dag.min_latency_exact().expect("feasible");
        let (chain_t, _) = chain.min_latency(&[]).expect("feasible");
        assert!(
            dag_t < chain_t - 1e-9,
            "DAG {dag_t} should beat chain {chain_t}"
        );
        assert!(dag.is_valid(&dag_a));
    }

    #[test]
    fn sat_matches_exact_enumerator_on_fork_join() {
        let lat = vec![
            vec![4.0, 9.0, 7.0],
            vec![12.0, 3.0, 8.0],
            vec![6.0, 11.0, 2.0],
            vec![3.0, 7.0, 10.0],
            vec![9.0, 2.0, 5.0],
            vec![2.0, 4.0, 3.0],
            vec![5.0, 6.0, 1.0],
        ];
        let p = DagProblem::new(lat, fork_join_dag()).unwrap();
        let (t_sat, a_sat) = p.min_latency(&[]).expect("sat feasible");
        let (t_exact, _) = p.min_latency_exact().expect("exact feasible");
        assert!(
            (t_sat - t_exact).abs() < 1e-9,
            "sat {t_sat} vs exact {t_exact}"
        );
        assert!(p.is_valid(&a_sat));
    }

    #[test]
    fn candidates_distinct_valid_and_ordered() {
        let lat = vec![
            vec![3.0, 8.0],
            vec![7.0, 2.0],
            vec![4.0, 6.0],
            vec![5.0, 3.0],
        ];
        let dag = StageDag::new(4, vec![(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let p = DagProblem::new(lat, dag).unwrap();
        let cands = p.latency_candidates(8);
        assert!(cands.len() >= 4);
        for (i, (t, a)) in cands.iter().enumerate() {
            assert!(p.is_valid(a));
            assert!((p.evaluate(a).t_max - t).abs() < 1e-9);
            for (_, b) in &cands[i + 1..] {
                assert_ne!(a, b);
            }
        }
        for w in cands.windows(2) {
            assert!(w[0].0 <= w[1].0 + 1e-9);
        }
    }

    #[test]
    fn max_chunks_cap_respected() {
        let lat = vec![
            vec![1.0, 10.0, 10.0],
            vec![10.0, 1.0, 10.0],
            vec![10.0, 10.0, 1.0],
        ];
        let dag = StageDag::chain(3);
        let p = DagProblem::new(lat, dag).unwrap().with_max_chunks(2);
        p.for_each_valid(|a| {
            let distinct: std::collections::BTreeSet<_> = a.iter().collect();
            assert!(distinct.len() <= 2, "{a:?}");
        });
        let (_, a) = p.min_latency(&[]).unwrap();
        let distinct: std::collections::BTreeSet<_> = a.iter().collect();
        assert!(distinct.len() <= 2);
    }

    #[test]
    fn replication_halves_the_bottleneck() {
        // Stage 1 dominates everywhere; splitting it across any class pair
        // must beat every unreplicated schedule. Four classes, because the
        // replica is a convexity barrier: its chain neighbours need two
        // distinct classes on top of the exclusive pair.
        let lat = vec![
            vec![2.0, 20.0, 20.0, 20.0],
            vec![40.0, 40.0, 40.0, 40.0],
            vec![20.0, 20.0, 20.0, 2.0],
        ];
        let p = DagProblem::new(lat, StageDag::chain(3)).unwrap();
        let (t_plain, _) = p.min_latency_exact().expect("feasible");
        assert!((t_plain - 40.0).abs() < 1e-9, "stage 1 bottlenecks at 40");
        let plan = p.best_replication(1).expect("replication feasible");
        assert!(p.is_valid_replicated(&plan));
        let eval = p.evaluate_replicated(&plan);
        assert!((eval.t_max - plan.t_max).abs() < 1e-12);
        assert!(
            plan.t_max < t_plain - 1e-9,
            "replicated {} vs plain {t_plain}",
            plan.t_max
        );
        // Replica chunks priced at half service: 40 / 2 per replica.
        assert_eq!(plan.stage, 1);
        assert!((plan.t_max - 20.0).abs() < 1e-9);
        assert!(eval.chunk_sums.contains(&20.0));
    }

    #[test]
    fn replication_respects_exclusivity() {
        let lat = vec![vec![5.0, 5.0]; 3];
        let p = DagProblem::new(lat, StageDag::chain(3)).unwrap();
        // Two classes, three stages: replicating the middle stage leaves
        // no class for its neighbours.
        assert!(p.best_replication(1).is_none());
        let bad = ReplicatedPlan {
            stage: 1,
            classes: (0, 1),
            assignment: vec![0, REPLICA, 1],
            t_max: 0.0,
        };
        assert!(
            !p.is_valid_replicated(&bad),
            "pair classes must be exclusive"
        );
    }

    #[test]
    fn single_stage_dag() {
        let p = DagProblem::new(vec![vec![5.0, 3.0]], StageDag::chain(1)).unwrap();
        let (t, a) = p.min_latency(&[]).unwrap();
        assert_eq!(a, vec![1]);
        assert!((t - 3.0).abs() < 1e-9);
        // Both replicas run: the bottleneck is the slower half, 5 / 2.
        let plan = p.best_replication(0).expect("single stage replicates");
        assert!((plan.t_max - 2.5).abs() < 1e-9);
    }
}
