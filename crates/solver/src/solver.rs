//! A small, complete SAT solver with two-watched-literal propagation,
//! counter-based pseudo-boolean (≤) constraints, and two search engines:
//! CDCL (first-UIP clause learning, non-chronological backjumping,
//! EVSIDS-style decaying activity, Luby restarts — the default) and the
//! original chronological DPLL, kept as the oracle the learning engine is
//! property-tested against.
//!
//! This is the substrate that replaces the paper's use of z3 (§3.3). The
//! BetterTogether encoding only needs CNF plus blocking clauses, but the
//! pseudo-boolean layer makes the solver reusable for weighted extensions
//! (and is exercised by the ablation benches). The CDCL upgrade exists
//! because the `DagProblem` and co-tenant encodings produce instances far
//! past the 9-stage chain size, where DPLL's chronological backtracking
//! re-explores the same conflicts exponentially.

use crate::conflict::{luby, ACTIVITY_DECAY, RESTART_BASE};
use crate::{Lit, Var};

/// Result of a satisfiability query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveResult {
    /// Satisfiable, with a full model.
    Sat(Model),
    /// Proven unsatisfiable.
    Unsat,
}

impl SolveResult {
    /// The model if satisfiable.
    pub fn model(&self) -> Option<&Model> {
        match self {
            SolveResult::Sat(m) => Some(m),
            SolveResult::Unsat => None,
        }
    }

    /// Whether the query was satisfiable.
    pub fn is_sat(&self) -> bool {
        matches!(self, SolveResult::Sat(_))
    }
}

/// A complete assignment to all variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Model(Vec<bool>);

impl Model {
    /// The value of `v` in this model.
    pub fn value(&self, v: Var) -> bool {
        self.0[v.index()]
    }

    /// Truth value of a literal.
    pub fn lit_value(&self, l: Lit) -> bool {
        l.eval(self.value(l.var()))
    }
}

/// Which search procedure [`Solver::solve`] runs. Both are complete and
/// agree on every verdict; they differ only in how conflicts steer the
/// search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Conflict-driven clause learning: first-UIP learned clauses,
    /// non-chronological backjumping, activity-ordered decisions, Luby
    /// restarts. Learned clauses persist across [`Solver::solve`] calls,
    /// so blocking-clause enumeration keeps its pruning.
    #[default]
    Cdcl,
    /// The original chronological DPLL: first-unassigned-variable
    /// decisions, phase false first, backtrack one level per conflict.
    Dpll,
}

#[derive(Debug, Clone)]
struct PbConstraint {
    terms: Vec<(Lit, u64)>,
    bound: u64,
    /// Weight currently assigned true.
    sum: u64,
}

/// Why a trail literal holds: a decision (or root-level unit), unit
/// propagation of a clause, or pseudo-boolean forcing. PB reasons are
/// captured eagerly at forcing time as a ready-made reason clause
/// (implied literal at index 0, negated true terms after), because the
/// constraint's slack at analysis time may differ.
#[derive(Debug, Clone)]
pub(crate) enum Reason {
    Decision,
    Clause(usize),
    Pb(Box<[Lit]>),
}

/// A falsified constraint handed to conflict analysis.
#[derive(Debug)]
pub(crate) enum Conflict {
    Clause(usize),
    /// The negated true terms of an overfull PB constraint (all false
    /// under the current assignment, i.e. a valid conflict clause).
    Pb(Vec<Lit>),
}

const UNASSIGNED: i8 = -1;

/// The SAT solver. Clauses persist across [`Solver::solve`] calls, so
/// blocking clauses support incremental enumeration of models; under the
/// default [`Engine::Cdcl`], learned clauses persist too.
///
/// ```
/// use bt_solver::{Solver, SolveResult};
/// let mut s = Solver::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// s.add_clause(&[a.pos(), b.pos()]);
/// s.add_clause(&[a.neg()]);
/// match s.solve() {
///     SolveResult::Sat(m) => {
///         assert!(!m.value(a));
///         assert!(m.value(b));
///     }
///     SolveResult::Unsat => unreachable!(),
/// }
/// ```
#[derive(Debug, Default)]
pub struct Solver {
    engine: Engine,
    num_vars: usize,
    /// Original clauses followed by learned ones.
    pub(crate) clauses: Vec<Vec<Lit>>,
    num_learned: usize,
    /// Watch lists: for each literal code, the clause indices currently
    /// watching that literal.
    watches: Vec<Vec<usize>>,
    /// Unit clauses (original and learned), enqueued at the root of every
    /// solve.
    units: Vec<Lit>,
    /// Pseudo-boolean ≤ constraints.
    pbs: Vec<PbConstraint>,
    /// For each literal code, the `(pb index, weight)` pairs where that
    /// literal appears as a term.
    pb_occ: Vec<Vec<(usize, u64)>>,
    /// Trivially unsatisfiable (empty clause added).
    trivially_unsat: bool,

    // Search state (reset per solve).
    assign: Vec<i8>,
    pub(crate) trail: Vec<Lit>,
    qhead: usize,
    /// DPLL engine: per decision, (trail index of the decision literal,
    /// flipped?).
    decisions: Vec<(usize, bool)>,
    /// CDCL engine: trail length at each decision level boundary.
    pub(crate) trail_lim: Vec<usize>,
    /// Antecedent of each variable's current assignment.
    pub(crate) reason: Vec<Reason>,
    /// Decision level of each variable's current assignment.
    pub(crate) level: Vec<u32>,
    /// EVSIDS activity per variable.
    pub(crate) activity: Vec<f64>,
    pub(crate) var_inc: f64,
    /// Last value each variable held (phase saving); `false` initially so
    /// the first descent matches DPLL's phase-false convention.
    saved_phase: Vec<bool>,
    /// Conflict-analysis mark per variable.
    pub(crate) seen: Vec<bool>,
}

impl Solver {
    /// Creates an empty solver with the default [`Engine::Cdcl`].
    pub fn new() -> Solver {
        Solver {
            var_inc: 1.0,
            ..Solver::default()
        }
    }

    /// Creates an empty solver running the given engine.
    pub fn with_engine(engine: Engine) -> Solver {
        Solver {
            engine,
            ..Solver::new()
        }
    }

    /// The search engine this solver runs.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::new(self.num_vars as u32);
        self.num_vars += 1;
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.pb_occ.push(Vec::new());
        self.pb_occ.push(Vec::new());
        self.assign.push(UNASSIGNED);
        self.reason.push(Reason::Decision);
        self.level.push(0);
        self.activity.push(0.0);
        self.saved_phase.push(false);
        self.seen.push(false);
        v
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of problem clauses (excluding units and learned clauses).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len() - self.num_learned
    }

    /// Number of clauses learned by the CDCL engine so far.
    pub fn num_learned(&self) -> usize {
        self.num_learned
    }

    /// Adds a clause (a disjunction of literals). Duplicates are removed;
    /// tautologies are dropped; the empty clause makes the formula
    /// trivially unsatisfiable.
    ///
    /// # Panics
    ///
    /// Panics if a literal references an unallocated variable.
    pub fn add_clause(&mut self, lits: &[Lit]) {
        for l in lits {
            assert!(l.var().index() < self.num_vars, "unallocated variable");
        }
        let mut sorted: Vec<Lit> = lits.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        // Tautology check: both polarities present.
        for w in sorted.windows(2) {
            if w[0].var() == w[1].var() {
                return; // x ∨ ¬x
            }
        }
        match sorted.len() {
            0 => self.trivially_unsat = true,
            1 => self.units.push(sorted[0]),
            _ => {
                self.push_clause(sorted);
            }
        }
    }

    /// Installs a clause verbatim, watching its first two literals.
    /// Learned clauses come through here with a deliberate order
    /// (asserting literal first, backjump-level literal second), so no
    /// sorting.
    fn push_clause(&mut self, lits: Vec<Lit>) -> usize {
        debug_assert!(lits.len() >= 2);
        let idx = self.clauses.len();
        self.watches[lits[0].code()].push(idx);
        self.watches[lits[1].code()].push(idx);
        self.clauses.push(lits);
        idx
    }

    /// Adds the pseudo-boolean constraint `Σ wᵢ·litᵢ ≤ bound` (each weight
    /// counts when its literal is true).
    ///
    /// # Panics
    ///
    /// Panics if a weight is zero or a variable is unallocated.
    pub fn add_pb_le(&mut self, terms: &[(Lit, u64)], bound: u64) {
        for (l, w) in terms {
            assert!(l.var().index() < self.num_vars, "unallocated variable");
            assert!(*w > 0, "weights must be positive");
        }
        let idx = self.pbs.len();
        for (l, w) in terms {
            self.pb_occ[l.code()].push((idx, *w));
        }
        self.pbs.push(PbConstraint {
            terms: terms.to_vec(),
            bound,
            sum: 0,
        });
    }

    /// Convenience: at most one of `lits` is true (pairwise encoding).
    pub fn add_at_most_one(&mut self, lits: &[Lit]) {
        for i in 0..lits.len() {
            for j in i + 1..lits.len() {
                self.add_clause(&[!lits[i], !lits[j]]);
            }
        }
    }

    /// Convenience: exactly one of `lits` is true.
    pub fn add_exactly_one(&mut self, lits: &[Lit]) {
        self.add_clause(lits);
        self.add_at_most_one(lits);
    }

    fn value_of(&self, l: Lit) -> i8 {
        match self.assign[l.var().index()] {
            UNASSIGNED => UNASSIGNED,
            v => {
                if l.eval(v == 1) {
                    1
                } else {
                    0
                }
            }
        }
    }

    /// Assigns `l` true with the given antecedent; returns false on
    /// conflict with an existing value.
    fn enqueue(&mut self, l: Lit, reason: Reason) -> bool {
        match self.value_of(l) {
            1 => true,
            0 => false,
            _ => {
                let v = l.var().index();
                self.assign[v] = i8::from(l.is_pos());
                self.reason[v] = reason;
                self.level[v] = self.trail_lim.len() as u32;
                self.trail.push(l);
                for occ in 0..self.pb_occ[l.code()].len() {
                    let (pb, w) = self.pb_occ[l.code()][occ];
                    self.pbs[pb].sum += w;
                }
                true
            }
        }
    }

    fn unassign(&mut self, l: Lit) {
        let v = l.var().index();
        self.saved_phase[v] = self.assign[v] == 1;
        self.assign[v] = UNASSIGNED;
        for occ in 0..self.pb_occ[l.code()].len() {
            let (pb, w) = self.pb_occ[l.code()][occ];
            self.pbs[pb].sum -= w;
        }
    }

    /// Unit propagation over clauses and PB constraints. Returns the
    /// falsified constraint on conflict.
    fn propagate(&mut self) -> Option<Conflict> {
        while self.qhead < self.trail.len() {
            let l = self.trail[self.qhead];
            self.qhead += 1;

            // Clause propagation: literal !l just became false.
            let false_lit = !l;
            let mut i = 0;
            while i < self.watches[false_lit.code()].len() {
                let ci = self.watches[false_lit.code()][i];
                // Ensure the false literal is at slot 1.
                if self.clauses[ci][0] == false_lit {
                    self.clauses[ci].swap(0, 1);
                }
                debug_assert_eq!(self.clauses[ci][1], false_lit);
                if self.value_of(self.clauses[ci][0]) == 1 {
                    i += 1;
                    continue; // clause already satisfied
                }
                // Look for a replacement watch.
                let mut moved = false;
                for k in 2..self.clauses[ci].len() {
                    if self.value_of(self.clauses[ci][k]) != 0 {
                        self.clauses[ci].swap(1, k);
                        let new_watch = self.clauses[ci][1];
                        self.watches[new_watch.code()].push(ci);
                        self.watches[false_lit.code()].swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Unit or conflict on slot 0.
                let first = self.clauses[ci][0];
                match self.value_of(first) {
                    UNASSIGNED => {
                        let ok = self.enqueue(first, Reason::Clause(ci));
                        debug_assert!(ok, "enqueue of unassigned literal cannot fail");
                        i += 1;
                    }
                    0 => return Some(Conflict::Clause(ci)),
                    _ => unreachable!("satisfied case handled above"),
                }
            }

            // PB propagation triggered by constraints containing l.
            for occ in 0..self.pb_occ[l.code()].len() {
                let (pb_idx, _) = self.pb_occ[l.code()][occ];
                if let Some(confl) = self.pb_propagate(pb_idx) {
                    return Some(confl);
                }
            }
        }
        None
    }

    /// The negated true terms of PB constraint `pb_idx` — the clause a PB
    /// conflict or forcing resolves against.
    fn pb_true_terms_negated(&self, pb_idx: usize) -> Vec<Lit> {
        self.pbs[pb_idx]
            .terms
            .iter()
            .filter(|(t, _)| self.value_of(*t) == 1)
            .map(|(t, _)| !*t)
            .collect()
    }

    fn pb_propagate(&mut self, pb_idx: usize) -> Option<Conflict> {
        let (sum, bound) = {
            let pb = &self.pbs[pb_idx];
            (pb.sum, pb.bound)
        };
        if sum > bound {
            return Some(Conflict::Pb(self.pb_true_terms_negated(pb_idx)));
        }
        let slack = bound - sum;
        let forced: Vec<Lit> = self.pbs[pb_idx]
            .terms
            .iter()
            .filter(|(t, w)| *w > slack && self.value_of(*t) == UNASSIGNED)
            .map(|(t, _)| !*t)
            .collect();
        if forced.is_empty() {
            return None;
        }
        // Eager reason capture: the implied literal plus the negation of
        // every currently-true term. Captured now because the constraint's
        // slack (and hence the forcing condition) is not reconstructible at
        // analysis time.
        let antecedent = self.pb_true_terms_negated(pb_idx);
        for f in forced {
            let mut reason = Vec::with_capacity(antecedent.len() + 1);
            reason.push(f);
            reason.extend_from_slice(&antecedent);
            if !self.enqueue(f, Reason::Pb(reason.into_boxed_slice())) {
                return Some(Conflict::Pb(self.pb_true_terms_negated(pb_idx)));
            }
        }
        None
    }

    fn backtrack_to(&mut self, trail_len: usize) {
        while self.trail.len() > trail_len {
            let l = self.trail.pop().expect("trail non-empty");
            self.unassign(l);
        }
        self.qhead = trail_len;
    }

    /// CDCL: undoes every assignment above decision level `lvl`.
    fn backjump(&mut self, lvl: usize) {
        if self.trail_lim.len() > lvl {
            let target = self.trail_lim[lvl];
            self.backtrack_to(target);
            self.trail_lim.truncate(lvl);
        }
    }

    /// Root-level setup shared by both engines: clears search state and
    /// enqueues unit clauses and PB-forced literals. Returns false if the
    /// root level is already contradictory.
    fn init_root(&mut self) -> bool {
        self.backtrack_to(0);
        self.decisions.clear();
        self.trail_lim.clear();
        for i in 0..self.units.len() {
            let u = self.units[i];
            if !self.enqueue(u, Reason::Decision) {
                return false;
            }
        }
        for pb in 0..self.pbs.len() {
            if self.pb_propagate(pb).is_some() {
                return false;
            }
        }
        true
    }

    fn extract_model(&self) -> Model {
        Model(self.assign.iter().map(|&v| v == 1).collect())
    }

    /// Decides satisfiability of the current formula.
    ///
    /// Clauses added between calls persist (supporting blocking-clause
    /// enumeration), as do CDCL learned clauses; search state is reset per
    /// call.
    pub fn solve(&mut self) -> SolveResult {
        if self.trivially_unsat {
            return SolveResult::Unsat;
        }
        if !self.init_root() {
            return SolveResult::Unsat;
        }
        match self.engine {
            Engine::Cdcl => self.solve_cdcl(),
            Engine::Dpll => self.solve_dpll(),
        }
    }

    /// Highest-activity unassigned variable (lowest index on ties, so the
    /// search is deterministic).
    fn pick_active_var(&self) -> Option<Var> {
        let mut best: Option<usize> = None;
        for (i, &a) in self.assign.iter().enumerate() {
            if a != UNASSIGNED {
                continue;
            }
            match best {
                Some(b) if self.activity[b] >= self.activity[i] => {}
                _ => best = Some(i),
            }
        }
        best.map(|i| Var::new(i as u32))
    }

    fn solve_cdcl(&mut self) -> SolveResult {
        let mut conflicts_since_restart: u64 = 0;
        let mut restarts: u64 = 0;
        let mut restart_limit = RESTART_BASE * luby(restarts);
        loop {
            match self.propagate() {
                Some(confl) => {
                    if self.trail_lim.is_empty() {
                        return SolveResult::Unsat; // conflict with the roots
                    }
                    conflicts_since_restart += 1;
                    self.var_inc /= ACTIVITY_DECAY;
                    let (learnt, backjump_lvl) = self.analyze(confl);
                    self.backjump(backjump_lvl);
                    if learnt.len() == 1 {
                        // Asserting unit: now a root fact. Persisting it in
                        // `units` keeps it across incremental solve calls.
                        self.units.push(learnt[0]);
                        if !self.enqueue(learnt[0], Reason::Decision) {
                            return SolveResult::Unsat;
                        }
                    } else {
                        let ci = self.push_clause(learnt);
                        self.num_learned += 1;
                        let assert_lit = self.clauses[ci][0];
                        let ok = self.enqueue(assert_lit, Reason::Clause(ci));
                        debug_assert!(ok, "learned clause asserts after backjump");
                    }
                }
                None => {
                    if conflicts_since_restart >= restart_limit {
                        restarts += 1;
                        conflicts_since_restart = 0;
                        restart_limit = RESTART_BASE * luby(restarts);
                        self.backjump(0);
                        continue;
                    }
                    match self.pick_active_var() {
                        None => return SolveResult::Sat(self.extract_model()),
                        Some(v) => {
                            self.trail_lim.push(self.trail.len());
                            let lit = if self.saved_phase[v.index()] {
                                v.pos()
                            } else {
                                v.neg()
                            };
                            let ok = self.enqueue(lit, Reason::Decision);
                            debug_assert!(ok);
                        }
                    }
                }
            }
        }
    }

    /// First unassigned variable — DPLL's static decision order.
    fn pick_branch_var(&self) -> Option<Var> {
        self.assign
            .iter()
            .position(|&v| v == UNASSIGNED)
            .map(|i| Var::new(i as u32))
    }

    fn solve_dpll(&mut self) -> SolveResult {
        loop {
            if self.propagate().is_none() {
                match self.pick_branch_var() {
                    None => return SolveResult::Sat(self.extract_model()),
                    Some(v) => {
                        // Decide: phase false first.
                        self.decisions.push((self.trail.len(), false));
                        let ok = self.enqueue(v.neg(), Reason::Decision);
                        debug_assert!(ok);
                    }
                }
            } else {
                // Conflict: chronological backtracking.
                loop {
                    match self.decisions.pop() {
                        None => return SolveResult::Unsat,
                        Some((trail_pos, flipped)) => {
                            let decision_lit = self.trail[trail_pos];
                            self.backtrack_to(trail_pos);
                            if !flipped {
                                self.decisions.push((self.trail.len(), true));
                                let ok = self.enqueue(!decision_lit, Reason::Decision);
                                debug_assert!(ok);
                                break;
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars(s: &mut Solver, n: usize) -> Vec<Var> {
        (0..n).map(|_| s.new_var()).collect()
    }

    /// Runs the same test body against both engines.
    fn both_engines(f: impl Fn(Solver)) {
        f(Solver::with_engine(Engine::Cdcl));
        f(Solver::with_engine(Engine::Dpll));
    }

    #[test]
    fn trivial_sat_and_unsat() {
        both_engines(|mut s| {
            let v = vars(&mut s, 1);
            s.add_clause(&[v[0].pos()]);
            assert!(s.solve().is_sat());
            s.add_clause(&[v[0].neg()]);
            assert_eq!(s.solve(), SolveResult::Unsat);
        });
    }

    #[test]
    fn empty_clause_is_unsat() {
        both_engines(|mut s| {
            s.add_clause(&[]);
            assert_eq!(s.solve(), SolveResult::Unsat);
        });
    }

    #[test]
    fn empty_formula_is_sat() {
        both_engines(|mut s| {
            vars(&mut s, 3);
            assert!(s.solve().is_sat());
        });
    }

    #[test]
    fn tautology_is_dropped() {
        let mut s = Solver::new();
        let v = vars(&mut s, 1);
        s.add_clause(&[v[0].pos(), v[0].neg()]);
        assert_eq!(s.num_clauses(), 0);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn chain_of_implications_propagates() {
        // a ∧ (a→b) ∧ (b→c) ∧ (c→d) forces all true.
        both_engines(|mut s| {
            let v = vars(&mut s, 4);
            s.add_clause(&[v[0].pos()]);
            for w in v.windows(2) {
                s.add_clause(&[w[0].neg(), w[1].pos()]);
            }
            match s.solve() {
                SolveResult::Sat(m) => assert!(v.iter().all(|&x| m.value(x))),
                SolveResult::Unsat => panic!("should be sat"),
            }
        });
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // p[i][j]: pigeon i in hole j. 3 pigeons, 2 holes.
        both_engines(|mut s| {
            let p: Vec<Vec<Var>> = (0..3).map(|_| vars(&mut s, 2)).collect();
            for row in &p {
                s.add_clause(&[row[0].pos(), row[1].pos()]);
            }
            #[allow(clippy::needless_range_loop)]
            for hole in 0..2 {
                for a in 0..3 {
                    for b in a + 1..3 {
                        let (pa, pb) = (p[a][hole], p[b][hole]);
                        s.add_clause(&[pa.neg(), pb.neg()]);
                    }
                }
            }
            assert_eq!(s.solve(), SolveResult::Unsat);
        });
    }

    #[test]
    fn pigeonhole_6_into_5_learns_clauses() {
        // Large enough that CDCL actually exercises learning + backjumping.
        let mut s = Solver::new();
        let holes = 5;
        let p: Vec<Vec<Var>> = (0..holes + 1).map(|_| vars(&mut s, holes)).collect();
        for row in &p {
            let lits: Vec<Lit> = row.iter().map(|v| v.pos()).collect();
            s.add_clause(&lits);
        }
        for hole in 0..holes {
            for a in 0..p.len() {
                for b in a + 1..p.len() {
                    s.add_clause(&[p[a][hole].neg(), p[b][hole].neg()]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(
            s.num_learned() > 0,
            "pigeonhole refutation must learn clauses"
        );
    }

    #[test]
    fn exactly_one_helper() {
        both_engines(|mut s| {
            let v = vars(&mut s, 4);
            let lits: Vec<Lit> = v.iter().map(|x| x.pos()).collect();
            s.add_exactly_one(&lits);
            match s.solve() {
                SolveResult::Sat(m) => {
                    let count = v.iter().filter(|&&x| m.value(x)).count();
                    assert_eq!(count, 1);
                }
                SolveResult::Unsat => panic!("should be sat"),
            }
        });
    }

    #[test]
    fn blocking_clauses_enumerate_all_models() {
        // 3 free variables → 8 models; learned clauses must not block
        // unseen models.
        both_engines(|mut s| {
            let v = vars(&mut s, 3);
            let mut count = 0;
            while let SolveResult::Sat(m) = s.solve() {
                count += 1;
                assert!(count <= 8, "more models than possible");
                let block: Vec<Lit> = v
                    .iter()
                    .map(|&x| if m.value(x) { x.neg() } else { x.pos() })
                    .collect();
                s.add_clause(&block);
            }
            assert_eq!(count, 8);
        });
    }

    #[test]
    fn pb_upper_bound_restricts_selection() {
        // w = [3, 5, 7], bound 10, v2 forced true: v0 fits (7+3=10),
        // v1 does not (7+5=12).
        both_engines(|mut s| {
            let v = vars(&mut s, 3);
            s.add_pb_le(&[(v[0].pos(), 3), (v[1].pos(), 5), (v[2].pos(), 7)], 10);
            s.add_clause(&[v[2].pos()]);
            s.add_clause(&[v[0].pos(), v[1].pos()]); // at least one of the others
            match s.solve() {
                SolveResult::Sat(m) => {
                    assert!(m.value(v[2]));
                    assert!(m.value(v[0]), "only v0 fits under the bound");
                    assert!(!m.value(v[1]), "v1 would exceed the bound");
                }
                SolveResult::Unsat => panic!("should be sat"),
            }
        });
    }

    #[test]
    fn pb_infeasible_bound_is_unsat() {
        both_engines(|mut s| {
            let v = vars(&mut s, 2);
            s.add_pb_le(&[(v[0].pos(), 5), (v[1].pos(), 5)], 4);
            s.add_clause(&[v[0].pos()]);
            assert_eq!(s.solve(), SolveResult::Unsat);
        });
    }

    #[test]
    fn pb_with_negative_literals() {
        // ¬a counts weight 10 with bound 5 → a must be true.
        both_engines(|mut s| {
            let v = vars(&mut s, 1);
            s.add_pb_le(&[(v[0].neg(), 10)], 5);
            match s.solve() {
                SolveResult::Sat(m) => assert!(m.value(v[0])),
                SolveResult::Unsat => panic!("should be sat"),
            }
        });
    }

    #[test]
    fn pb_conflict_deep_in_search_is_analyzed() {
        // A PB constraint that only bites under decisions, so the CDCL
        // engine must analyze a PB conflict / PB reason (not just clauses).
        // Sat regime: at most three of six, one forced per disjoint pair.
        let mut s = Solver::new();
        let v = vars(&mut s, 6);
        let terms: Vec<(Lit, u64)> = v.iter().map(|x| (x.pos(), 2)).collect();
        s.add_pb_le(&terms, 6);
        s.add_clause(&[v[0].pos(), v[1].pos()]);
        s.add_clause(&[v[2].pos(), v[3].pos()]);
        s.add_clause(&[v[4].pos(), v[5].pos()]);
        match s.solve() {
            SolveResult::Sat(m) => {
                let count = v.iter().filter(|&&x| m.value(x)).count();
                assert!(count <= 3, "PB bound violated: {count} true");
            }
            SolveResult::Unsat => panic!("one per pair satisfies the bound"),
        }
        // Unsat regime: the pairs force at least three true, but the bound
        // only admits two — the refutation resolves against PB reasons.
        let mut s = Solver::new();
        let v = vars(&mut s, 6);
        let terms: Vec<(Lit, u64)> = v.iter().map(|x| (x.pos(), 2)).collect();
        s.add_pb_le(&terms, 5);
        s.add_clause(&[v[0].pos(), v[1].pos()]);
        s.add_clause(&[v[2].pos(), v[3].pos()]);
        s.add_clause(&[v[4].pos(), v[5].pos()]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn solve_is_repeatable() {
        both_engines(|mut s| {
            let v = vars(&mut s, 2);
            s.add_clause(&[v[0].pos(), v[1].pos()]);
            let a = s.solve();
            let b = s.solve();
            assert_eq!(a, b);
        });
    }

    #[test]
    fn engines_agree_on_random_formulas() {
        // Random 3-ish-CNF instances: CDCL and DPLL must return the same
        // verdict, and every SAT model must satisfy its formula.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for round in 0..200 {
            let n = 6;
            let mut cdcl = Solver::with_engine(Engine::Cdcl);
            let mut dpll = Solver::with_engine(Engine::Dpll);
            let vc = vars(&mut cdcl, n);
            vars(&mut dpll, n);
            let num_clauses = rng.gen_range(3..18);
            let mut clause_list = Vec::new();
            for _ in 0..num_clauses {
                let len = rng.gen_range(1..=3);
                let clause: Vec<Lit> = (0..len)
                    .map(|_| {
                        let var = vc[rng.gen_range(0..n)];
                        if rng.gen_bool(0.5) {
                            var.pos()
                        } else {
                            var.neg()
                        }
                    })
                    .collect();
                cdcl.add_clause(&clause);
                dpll.add_clause(&clause);
                clause_list.push(clause);
            }
            let a = cdcl.solve();
            let b = dpll.solve();
            assert_eq!(a.is_sat(), b.is_sat(), "round {round}: {clause_list:?}");
            for (name, res) in [("cdcl", &a), ("dpll", &b)] {
                if let SolveResult::Sat(m) = res {
                    for c in &clause_list {
                        assert!(
                            c.iter().any(|l| m.lit_value(*l)),
                            "{name} model violates {c:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn exhaustive_agreement_with_brute_force() {
        // All 4-variable formulas over a fixed clause pool, cross-checked
        // against truth-table evaluation — in both engines.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for engine in [Engine::Cdcl, Engine::Dpll] {
            let mut rng = StdRng::seed_from_u64(42);
            for _ in 0..300 {
                let n = 4;
                let mut s = Solver::with_engine(engine);
                let v = vars(&mut s, n);
                let num_clauses = rng.gen_range(1..10);
                let mut clause_list = Vec::new();
                for _ in 0..num_clauses {
                    let len = rng.gen_range(1..=3);
                    let clause: Vec<Lit> = (0..len)
                        .map(|_| {
                            let var = v[rng.gen_range(0..n)];
                            if rng.gen_bool(0.5) {
                                var.pos()
                            } else {
                                var.neg()
                            }
                        })
                        .collect();
                    s.add_clause(&clause);
                    clause_list.push(clause);
                }
                // Brute force.
                let mut any = false;
                for bits in 0..(1u32 << n) {
                    let assignment: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
                    if clause_list
                        .iter()
                        .all(|c| c.iter().any(|l| l.eval(assignment[l.var().index()])))
                    {
                        any = true;
                        break;
                    }
                }
                let got = s.solve();
                assert_eq!(got.is_sat(), any, "clauses: {clause_list:?}");
                if let SolveResult::Sat(m) = got {
                    // Model must satisfy every clause.
                    for c in &clause_list {
                        assert!(c.iter().any(|l| m.lit_value(*l)), "model violates {c:?}");
                    }
                }
            }
        }
    }
}
