//! A small, complete DPLL SAT solver with two-watched-literal propagation
//! and counter-based pseudo-boolean (≤) constraints.
//!
//! This is the substrate that replaces the paper's use of z3 (§3.3). The
//! BetterTogether encoding only needs CNF plus blocking clauses, but the
//! pseudo-boolean layer makes the solver reusable for weighted extensions
//! (and is exercised by the ablation benches).

use crate::{Lit, Var};

/// Result of a satisfiability query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveResult {
    /// Satisfiable, with a full model.
    Sat(Model),
    /// Proven unsatisfiable.
    Unsat,
}

impl SolveResult {
    /// The model if satisfiable.
    pub fn model(&self) -> Option<&Model> {
        match self {
            SolveResult::Sat(m) => Some(m),
            SolveResult::Unsat => None,
        }
    }

    /// Whether the query was satisfiable.
    pub fn is_sat(&self) -> bool {
        matches!(self, SolveResult::Sat(_))
    }
}

/// A complete assignment to all variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Model(Vec<bool>);

impl Model {
    /// The value of `v` in this model.
    pub fn value(&self, v: Var) -> bool {
        self.0[v.index()]
    }

    /// Truth value of a literal.
    pub fn lit_value(&self, l: Lit) -> bool {
        l.eval(self.value(l.var()))
    }
}

#[derive(Debug, Clone)]
struct PbConstraint {
    terms: Vec<(Lit, u64)>,
    bound: u64,
    /// Weight currently assigned true.
    sum: u64,
}

const UNASSIGNED: i8 = -1;

/// The DPLL solver. Clauses persist across [`Solver::solve`] calls, so
/// blocking clauses support incremental enumeration of models.
///
/// ```
/// use bt_solver::{Solver, SolveResult};
/// let mut s = Solver::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// s.add_clause(&[a.pos(), b.pos()]);
/// s.add_clause(&[a.neg()]);
/// match s.solve() {
///     SolveResult::Sat(m) => {
///         assert!(!m.value(a));
///         assert!(m.value(b));
///     }
///     SolveResult::Unsat => unreachable!(),
/// }
/// ```
#[derive(Debug, Default)]
pub struct Solver {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
    /// Watch lists: for each literal code, the clause indices currently
    /// watching that literal.
    watches: Vec<Vec<usize>>,
    /// Unit clauses, enqueued at the root of every solve.
    units: Vec<Lit>,
    /// Pseudo-boolean ≤ constraints.
    pbs: Vec<PbConstraint>,
    /// For each literal code, the `(pb index, weight)` pairs where that
    /// literal appears as a term.
    pb_occ: Vec<Vec<(usize, u64)>>,
    /// Trivially unsatisfiable (empty clause added).
    trivially_unsat: bool,

    // Search state (reset per solve).
    assign: Vec<i8>,
    trail: Vec<Lit>,
    qhead: usize,
    /// Per decision: (index into trail of the decision literal, flipped?).
    decisions: Vec<(usize, bool)>,
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Solver {
        Solver::default()
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::new(self.num_vars as u32);
        self.num_vars += 1;
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.pb_occ.push(Vec::new());
        self.pb_occ.push(Vec::new());
        self.assign.push(UNASSIGNED);
        v
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of clauses (excluding units).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Adds a clause (a disjunction of literals). Duplicates are removed;
    /// tautologies are dropped; the empty clause makes the formula
    /// trivially unsatisfiable.
    ///
    /// # Panics
    ///
    /// Panics if a literal references an unallocated variable.
    pub fn add_clause(&mut self, lits: &[Lit]) {
        for l in lits {
            assert!(l.var().index() < self.num_vars, "unallocated variable");
        }
        let mut sorted: Vec<Lit> = lits.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        // Tautology check: both polarities present.
        for w in sorted.windows(2) {
            if w[0].var() == w[1].var() {
                return; // x ∨ ¬x
            }
        }
        match sorted.len() {
            0 => self.trivially_unsat = true,
            1 => self.units.push(sorted[0]),
            _ => {
                let idx = self.clauses.len();
                self.watches[sorted[0].code()].push(idx);
                self.watches[sorted[1].code()].push(idx);
                self.clauses.push(sorted);
            }
        }
    }

    /// Adds the pseudo-boolean constraint `Σ wᵢ·litᵢ ≤ bound` (each weight
    /// counts when its literal is true).
    ///
    /// # Panics
    ///
    /// Panics if a weight is zero or a variable is unallocated.
    pub fn add_pb_le(&mut self, terms: &[(Lit, u64)], bound: u64) {
        for (l, w) in terms {
            assert!(l.var().index() < self.num_vars, "unallocated variable");
            assert!(*w > 0, "weights must be positive");
        }
        let idx = self.pbs.len();
        for (l, w) in terms {
            self.pb_occ[l.code()].push((idx, *w));
        }
        self.pbs.push(PbConstraint {
            terms: terms.to_vec(),
            bound,
            sum: 0,
        });
    }

    /// Convenience: at most one of `lits` is true (pairwise encoding).
    pub fn add_at_most_one(&mut self, lits: &[Lit]) {
        for i in 0..lits.len() {
            for j in i + 1..lits.len() {
                self.add_clause(&[!lits[i], !lits[j]]);
            }
        }
    }

    /// Convenience: exactly one of `lits` is true.
    pub fn add_exactly_one(&mut self, lits: &[Lit]) {
        self.add_clause(lits);
        self.add_at_most_one(lits);
    }

    fn value_of(&self, l: Lit) -> i8 {
        match self.assign[l.var().index()] {
            UNASSIGNED => UNASSIGNED,
            v => {
                if l.eval(v == 1) {
                    1
                } else {
                    0
                }
            }
        }
    }

    /// Assigns `l` true; returns false on conflict with an existing value.
    fn enqueue(&mut self, l: Lit) -> bool {
        match self.value_of(l) {
            1 => true,
            0 => false,
            _ => {
                self.assign[l.var().index()] = i8::from(l.is_pos());
                self.trail.push(l);
                for occ in 0..self.pb_occ[l.code()].len() {
                    let (pb, w) = self.pb_occ[l.code()][occ];
                    self.pbs[pb].sum += w;
                }
                true
            }
        }
    }

    fn unassign(&mut self, l: Lit) {
        self.assign[l.var().index()] = UNASSIGNED;
        for occ in 0..self.pb_occ[l.code()].len() {
            let (pb, w) = self.pb_occ[l.code()][occ];
            self.pbs[pb].sum -= w;
        }
    }

    /// Unit propagation over clauses and PB constraints. Returns false on
    /// conflict.
    fn propagate(&mut self) -> bool {
        while self.qhead < self.trail.len() {
            let l = self.trail[self.qhead];
            self.qhead += 1;

            // Clause propagation: literal !l just became false.
            let false_lit = !l;
            let mut i = 0;
            while i < self.watches[false_lit.code()].len() {
                let ci = self.watches[false_lit.code()][i];
                // Ensure the false literal is at slot 1.
                if self.clauses[ci][0] == false_lit {
                    self.clauses[ci].swap(0, 1);
                }
                debug_assert_eq!(self.clauses[ci][1], false_lit);
                if self.value_of(self.clauses[ci][0]) == 1 {
                    i += 1;
                    continue; // clause already satisfied
                }
                // Look for a replacement watch.
                let mut moved = false;
                for k in 2..self.clauses[ci].len() {
                    if self.value_of(self.clauses[ci][k]) != 0 {
                        self.clauses[ci].swap(1, k);
                        let new_watch = self.clauses[ci][1];
                        self.watches[new_watch.code()].push(ci);
                        self.watches[false_lit.code()].swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Unit or conflict on slot 0.
                let first = self.clauses[ci][0];
                match self.value_of(first) {
                    UNASSIGNED => {
                        let ok = self.enqueue(first);
                        debug_assert!(ok, "enqueue of unassigned literal cannot fail");
                        i += 1;
                    }
                    0 => return false, // conflict
                    _ => unreachable!("satisfied case handled above"),
                }
            }

            // PB propagation triggered by constraints containing l.
            for occ in 0..self.pb_occ[l.code()].len() {
                let (pb_idx, _) = self.pb_occ[l.code()][occ];
                if !self.pb_propagate(pb_idx) {
                    return false;
                }
            }
        }
        true
    }

    fn pb_propagate(&mut self, pb_idx: usize) -> bool {
        let (sum, bound) = {
            let pb = &self.pbs[pb_idx];
            (pb.sum, pb.bound)
        };
        if sum > bound {
            return false;
        }
        let slack = bound - sum;
        let forced: Vec<Lit> = self.pbs[pb_idx]
            .terms
            .iter()
            .filter(|(t, w)| *w > slack && self.value_of(*t) == UNASSIGNED)
            .map(|(t, _)| !*t)
            .collect();
        for f in forced {
            if !self.enqueue(f) {
                return false;
            }
        }
        true
    }

    fn backtrack_to(&mut self, trail_len: usize) {
        while self.trail.len() > trail_len {
            let l = self.trail.pop().expect("trail non-empty");
            self.unassign(l);
        }
        self.qhead = trail_len;
    }

    fn pick_branch_var(&self) -> Option<Var> {
        self.assign
            .iter()
            .position(|&v| v == UNASSIGNED)
            .map(|i| Var::new(i as u32))
    }

    /// Decides satisfiability of the current formula.
    ///
    /// Clauses added between calls persist (supporting blocking-clause
    /// enumeration); search state is reset per call.
    pub fn solve(&mut self) -> SolveResult {
        if self.trivially_unsat {
            return SolveResult::Unsat;
        }
        // Reset search state.
        self.backtrack_to(0);
        self.decisions.clear();
        for v in 0..self.num_vars {
            debug_assert_eq!(self.assign[v], UNASSIGNED);
        }

        // Root-level units.
        for i in 0..self.units.len() {
            let u = self.units[i];
            if !self.enqueue(u) {
                return SolveResult::Unsat;
            }
        }
        // Root-level PB forcing (constraints whose weights exceed bounds).
        for pb in 0..self.pbs.len() {
            if !self.pb_propagate(pb) {
                return SolveResult::Unsat;
            }
        }

        loop {
            if self.propagate() {
                match self.pick_branch_var() {
                    None => {
                        let model = Model(self.assign.iter().map(|&v| v == 1).collect());
                        return SolveResult::Sat(model);
                    }
                    Some(v) => {
                        // Decide: phase false first.
                        self.decisions.push((self.trail.len(), false));
                        let ok = self.enqueue(v.neg());
                        debug_assert!(ok);
                    }
                }
            } else {
                // Conflict: chronological backtracking.
                loop {
                    match self.decisions.pop() {
                        None => return SolveResult::Unsat,
                        Some((trail_pos, flipped)) => {
                            let decision_lit = self.trail[trail_pos];
                            self.backtrack_to(trail_pos);
                            if !flipped {
                                self.decisions.push((self.trail.len(), true));
                                let ok = self.enqueue(!decision_lit);
                                debug_assert!(ok);
                                break;
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars(s: &mut Solver, n: usize) -> Vec<Var> {
        (0..n).map(|_| s.new_var()).collect()
    }

    #[test]
    fn trivial_sat_and_unsat() {
        let mut s = Solver::new();
        let v = vars(&mut s, 1);
        s.add_clause(&[v[0].pos()]);
        assert!(s.solve().is_sat());
        s.add_clause(&[v[0].neg()]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        s.add_clause(&[]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        vars(&mut s, 3);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn tautology_is_dropped() {
        let mut s = Solver::new();
        let v = vars(&mut s, 1);
        s.add_clause(&[v[0].pos(), v[0].neg()]);
        assert_eq!(s.num_clauses(), 0);
        assert!(s.solve().is_sat());
    }

    #[test]
    fn chain_of_implications_propagates() {
        // a ∧ (a→b) ∧ (b→c) ∧ (c→d) forces all true.
        let mut s = Solver::new();
        let v = vars(&mut s, 4);
        s.add_clause(&[v[0].pos()]);
        for w in v.windows(2) {
            s.add_clause(&[w[0].neg(), w[1].pos()]);
        }
        match s.solve() {
            SolveResult::Sat(m) => assert!(v.iter().all(|&x| m.value(x))),
            SolveResult::Unsat => panic!("should be sat"),
        }
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // p[i][j]: pigeon i in hole j. 3 pigeons, 2 holes.
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..3).map(|_| vars(&mut s, 2)).collect();
        for row in &p {
            s.add_clause(&[row[0].pos(), row[1].pos()]);
        }
        #[allow(clippy::needless_range_loop)]
        for hole in 0..2 {
            for a in 0..3 {
                for b in a + 1..3 {
                    let (pa, pb) = (p[a][hole], p[b][hole]);
                    s.add_clause(&[pa.neg(), pb.neg()]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn exactly_one_helper() {
        let mut s = Solver::new();
        let v = vars(&mut s, 4);
        let lits: Vec<Lit> = v.iter().map(|x| x.pos()).collect();
        s.add_exactly_one(&lits);
        match s.solve() {
            SolveResult::Sat(m) => {
                let count = v.iter().filter(|&&x| m.value(x)).count();
                assert_eq!(count, 1);
            }
            SolveResult::Unsat => panic!("should be sat"),
        }
    }

    #[test]
    fn blocking_clauses_enumerate_all_models() {
        // 3 free variables → 8 models.
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        let mut count = 0;
        while let SolveResult::Sat(m) = s.solve() {
            count += 1;
            assert!(count <= 8, "more models than possible");
            let block: Vec<Lit> = v
                .iter()
                .map(|&x| if m.value(x) { x.neg() } else { x.pos() })
                .collect();
            s.add_clause(&block);
        }
        assert_eq!(count, 8);
    }

    #[test]
    fn pb_upper_bound_restricts_selection() {
        // w = [3, 5, 7], bound 10, v2 forced true: v0 fits (7+3=10),
        // v1 does not (7+5=12).
        let mut s = Solver::new();
        let v = vars(&mut s, 3);
        s.add_pb_le(&[(v[0].pos(), 3), (v[1].pos(), 5), (v[2].pos(), 7)], 10);
        s.add_clause(&[v[2].pos()]);
        s.add_clause(&[v[0].pos(), v[1].pos()]); // at least one of the others
        match s.solve() {
            SolveResult::Sat(m) => {
                assert!(m.value(v[2]));
                assert!(m.value(v[0]), "only v0 fits under the bound");
                assert!(!m.value(v[1]), "v1 would exceed the bound");
            }
            SolveResult::Unsat => panic!("should be sat"),
        }
    }

    #[test]
    fn pb_infeasible_bound_is_unsat() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        s.add_pb_le(&[(v[0].pos(), 5), (v[1].pos(), 5)], 4);
        s.add_clause(&[v[0].pos()]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn pb_with_negative_literals() {
        // ¬a counts weight 10 with bound 5 → a must be true.
        let mut s = Solver::new();
        let v = vars(&mut s, 1);
        s.add_pb_le(&[(v[0].neg(), 10)], 5);
        match s.solve() {
            SolveResult::Sat(m) => assert!(m.value(v[0])),
            SolveResult::Unsat => panic!("should be sat"),
        }
    }

    #[test]
    fn solve_is_repeatable() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        s.add_clause(&[v[0].pos(), v[1].pos()]);
        let a = s.solve();
        let b = s.solve();
        assert_eq!(a, b);
    }

    #[test]
    fn exhaustive_agreement_with_brute_force() {
        // All 3-variable formulas over a fixed clause pool, cross-checked
        // against truth-table evaluation.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..300 {
            let n = 4;
            let mut s = Solver::new();
            let v = vars(&mut s, n);
            let num_clauses = rng.gen_range(1..10);
            let mut clause_list = Vec::new();
            for _ in 0..num_clauses {
                let len = rng.gen_range(1..=3);
                let clause: Vec<Lit> = (0..len)
                    .map(|_| {
                        let var = v[rng.gen_range(0..n)];
                        if rng.gen_bool(0.5) {
                            var.pos()
                        } else {
                            var.neg()
                        }
                    })
                    .collect();
                s.add_clause(&clause);
                clause_list.push(clause);
            }
            // Brute force.
            let mut any = false;
            for bits in 0..(1u32 << n) {
                let assignment: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
                if clause_list
                    .iter()
                    .all(|c| c.iter().any(|l| l.eval(assignment[l.var().index()])))
                {
                    any = true;
                    break;
                }
            }
            let got = s.solve();
            assert_eq!(got.is_sat(), any, "clauses: {clause_list:?}");
            if let SolveResult::Sat(m) = got {
                // Model must satisfy every clause.
                for c in &clause_list {
                    assert!(c.iter().any(|l| m.lit_value(*l)), "model violates {c:?}");
                }
            }
        }
    }
}
