use std::fmt;

/// A boolean variable, identified by a dense 0-based index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(u32);

impl Var {
    /// Creates a variable from its index.
    pub fn new(index: u32) -> Var {
        Var(index)
    }

    /// The variable's index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this variable.
    pub fn pos(self) -> Lit {
        Lit(self.0 << 1)
    }

    /// The negative literal of this variable.
    #[allow(clippy::should_implement_trait)]
    pub fn neg(self) -> Lit {
        Lit((self.0 << 1) | 1)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable or its negation.
///
/// ```
/// use bt_solver::Var;
/// let v = Var::new(3);
/// let l = v.pos();
/// assert_eq!(!l, v.neg());
/// assert_eq!(l.var(), v);
/// assert!(l.is_pos());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The literal's variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether this is the positive literal.
    pub fn is_pos(self) -> bool {
        self.0 & 1 == 0
    }

    /// Dense code usable as an array index (`2·var + sign`).
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Inverse of [`Lit::code`].
    pub(crate) fn from_code(code: usize) -> Lit {
        Lit(code as u32)
    }

    /// Truth value of this literal under an assignment of its variable.
    pub fn eval(self, var_value: bool) -> bool {
        var_value == self.is_pos()
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_pos() {
            write!(f, "{}", self.var())
        } else {
            write!(f, "¬{}", self.var())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negation_is_involutive() {
        let l = Var::new(5).pos();
        assert_eq!(!!l, l);
        assert_ne!(!l, l);
        assert_eq!((!l).var(), l.var());
    }

    #[test]
    fn eval_semantics() {
        let v = Var::new(0);
        assert!(v.pos().eval(true));
        assert!(!v.pos().eval(false));
        assert!(v.neg().eval(false));
        assert!(!v.neg().eval(true));
    }

    #[test]
    fn codes_are_dense() {
        assert_eq!(Var::new(0).pos().code(), 0);
        assert_eq!(Var::new(0).neg().code(), 1);
        assert_eq!(Var::new(1).pos().code(), 2);
    }

    #[test]
    fn display() {
        assert_eq!(Var::new(2).pos().to_string(), "x2");
        assert_eq!(Var::new(2).neg().to_string(), "¬x2");
    }
}
