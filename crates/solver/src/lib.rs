//! # bt-solver — constraint-solving substrate
//!
//! The paper encodes schedule optimization as constraints (C1–C5, objective
//! O1) and solves them with z3's Python API. This crate replaces z3 with a
//! from-scratch, fully tested stack:
//!
//! - [`Solver`] — a complete SAT solver with two-watched-literal unit
//!   propagation, counter-propagated pseudo-boolean (≤) constraints, and a
//!   CDCL engine (first-UIP clause learning, non-chronological
//!   backjumping, activity decisions, Luby restarts) as the default; the
//!   original chronological DPLL engine remains available via
//!   [`Engine::Dpll`] as the oracle CDCL is property-tested against.
//! - [`ScheduleProblem`] — the BetterTogether encoding: per-stage
//!   exactly-one (C1), chunk contiguity (C2), per-chunk runtime windows
//!   (C3a/C3b), blocking clauses (C5), with gapness (O1) and latency
//!   minimized by binary search over achievable chunk sums.
//! - [`enumerate`] — an exact enumerator of the contiguous-partition
//!   schedule space, used both as BT-Optimizer's fast path and as the
//!   oracle the SAT path is property-tested against.
//! - [`dag`] — the fork/join generalization: contiguity becomes
//!   path-convexity, chunk graphs must stay acyclic, windows and the
//!   chunk cap are enforced lazily (CEGAR), and a bottleneck stage may be
//!   replicated across an exclusive class pair at half per-replica load.
//!
//! # Example
//!
//! ```
//! use bt_solver::ScheduleProblem;
//!
//! // 3 stages × 2 PU classes, profiled latencies in µs.
//! let p = ScheduleProblem::new(vec![
//!     vec![10.0, 100.0],
//!     vec![100.0, 10.0],
//!     vec![10.0, 100.0],
//! ])?;
//! let (t_max, schedule) = p.min_latency(&[]).expect("feasible");
//! assert!(t_max <= 120.0);
//! assert_eq!(schedule.len(), 3);
//! # Ok::<(), bt_solver::ProblemError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod conflict;
pub mod dag;
pub mod enumerate;
mod lit;
mod schedule;
mod solver;

pub use dag::{DagChunk, DagError, DagEval, DagProblem, ReplicatedPlan, StageDag, REPLICA};
pub use lit::{Lit, Var};
pub use schedule::{
    Assignment, LatencyEnumerator, OwnedLatencyEnumerator, ProblemError, ScheduleProblem,
};
pub use solver::{Engine, Model, SolveResult, Solver};
