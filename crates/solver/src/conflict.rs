//! Conflict analysis for the CDCL engine: first-UIP clause learning,
//! EVSIDS-style activity bookkeeping, and the Luby restart sequence.
//!
//! Separated from the solver core so the watched-literal propagation
//! machinery (shared with the DPLL engine) stays independent of *how*
//! conflicts are turned into learned clauses.

use crate::solver::{Conflict, Reason, Solver};
use crate::Lit;

/// Multiplicative activity decay applied once per conflict (as
/// `var_inc /= DECAY`, the rescaling formulation of EVSIDS).
pub(crate) const ACTIVITY_DECAY: f64 = 0.95;

/// Rescale threshold for variable activities.
pub(crate) const ACTIVITY_RESCALE: f64 = 1e100;

/// Conflicts allowed before the first restart; later restarts scale this
/// by the Luby sequence.
pub(crate) const RESTART_BASE: u64 = 128;

/// The reluctant-doubling (Luby) sequence `1 1 2 1 1 2 4 1 1 2 1 1 2 4 8…`
/// for `x = 0, 1, 2, …` — the optimal universal restart schedule.
pub(crate) fn luby(mut x: u64) -> u64 {
    let mut size: u64 = 1;
    let mut seq: u32 = 0;
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) / 2;
        seq -= 1;
        x %= size;
    }
    1 << seq
}

impl Solver {
    /// Bumps a variable's activity, rescaling the whole table when it
    /// overflows the EVSIDS threshold.
    pub(crate) fn bump_activity(&mut self, var_idx: usize) {
        self.activity[var_idx] += self.var_inc;
        if self.activity[var_idx] > ACTIVITY_RESCALE {
            for a in &mut self.activity {
                *a *= 1.0 / ACTIVITY_RESCALE;
            }
            self.var_inc *= 1.0 / ACTIVITY_RESCALE;
        }
    }

    /// First-UIP conflict analysis: walks the implication graph backwards
    /// from `confl` along reason clauses, resolving on literals of the
    /// current decision level until exactly one (the first unique
    /// implication point) remains. Returns the learned clause — asserting
    /// literal at index 0, a highest-level remaining literal at index 1
    /// (the second watch stays valid right after the backjump) — and the
    /// backjump level.
    ///
    /// Every variable touched gets an activity bump, which is what focuses
    /// subsequent decisions on the conflicting core.
    pub(crate) fn analyze(&mut self, confl: Conflict) -> (Vec<Lit>, usize) {
        let current = self.trail_lim.len();
        debug_assert!(current > 0, "level-0 conflicts are final, not analyzed");
        let mut learnt: Vec<Lit> = vec![Lit::from_code(0)]; // slot for the UIP
        let mut to_clear: Vec<usize> = Vec::new();
        let mut path = 0usize;
        let mut index = self.trail.len();
        let mut p: Option<Lit> = None;
        let mut reason_lits: Vec<Lit> = match confl {
            Conflict::Clause(ci) => self.clauses[ci].clone(),
            Conflict::Pb(lits) => lits,
        };
        loop {
            // For a reason clause, index 0 holds the implied literal `p`
            // itself; resolution only adds the antecedent side.
            let start = usize::from(p.is_some());
            for &q in &reason_lits[start..] {
                let v = q.var().index();
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    to_clear.push(v);
                    self.bump_activity(v);
                    if self.level[v] as usize >= current {
                        path += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Next marked literal walking the trail backwards: the most
            // recently implied variable still on the conflict side.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            self.seen[pl.var().index()] = false;
            path -= 1;
            p = Some(pl);
            if path == 0 {
                break;
            }
            reason_lits = match &self.reason[pl.var().index()] {
                &Reason::Clause(ci) => self.clauses[ci].clone(),
                Reason::Pb(lits) => lits.to_vec(),
                Reason::Decision => {
                    unreachable!("a decision cannot be on the conflict side below the UIP")
                }
            };
        }
        learnt[0] = !p.expect("loop ran at least once");
        for v in to_clear {
            self.seen[v] = false;
        }
        let backjump = if learnt.len() == 1 {
            0
        } else {
            let mut hi = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[hi].var().index()] {
                    hi = i;
                }
            }
            learnt.swap(1, hi);
            self.level[learnt[1].var().index()] as usize
        };
        (learnt, backjump)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn luby_prefix_is_reluctant_doubling() {
        let want = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let got: Vec<u64> = (0..want.len() as u64).map(luby).collect();
        assert_eq!(got, want);
    }
}
