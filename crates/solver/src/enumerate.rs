//! Exact enumeration of the contiguous-partition schedule space.
//!
//! Under contiguity (C2), a schedule is an ordered partition of the stage
//! sequence into at most `M` chunks, each assigned a *distinct* allowed PU
//! class. For the paper's sizes (N ≤ 9, M ≤ 4) this space is tiny (≈2 000
//! schedules), so exact enumeration is both the fast path of BT-Optimizer
//! and the oracle the SAT encoding is property-tested against.

use crate::{Assignment, ScheduleProblem};

/// A fully evaluated schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleEval {
    /// Stage → class assignment.
    pub assignment: Assignment,
    /// Maximal-chunk sums in pipeline order.
    pub chunk_sums: Vec<f64>,
    /// Predicted pipeline latency (bottleneck chunk).
    pub t_max: f64,
    /// Shortest chunk.
    pub t_min: f64,
}

impl ScheduleEval {
    /// Gapness: `T_max − T_min` (objective O1 of the paper).
    pub fn gapness(&self) -> f64 {
        self.t_max - self.t_min
    }

    /// Number of chunks (PUs used).
    pub fn chunks(&self) -> usize {
        self.chunk_sums.len()
    }
}

/// Evaluates a valid assignment against a problem.
///
/// # Panics
///
/// Panics if the assignment is invalid for the problem.
pub fn evaluate(problem: &ScheduleProblem, assignment: &[usize]) -> ScheduleEval {
    let chunk_sums = problem.chunk_sums_of(assignment);
    let t_max = chunk_sums.iter().cloned().fold(f64::MIN, f64::max);
    let t_min = chunk_sums.iter().cloned().fold(f64::MAX, f64::min);
    ScheduleEval {
        assignment: assignment.to_vec(),
        chunk_sums,
        t_max,
        t_min,
    }
}

/// Streams every valid schedule of `problem` through `f` without
/// materializing the space. Deterministic order (recursive descent over
/// chunk boundaries, classes ascending).
///
/// `f` receives the stage → class assignment and the maximal-chunk sums in
/// pipeline order; both slices are reused between calls, so the callback
/// must copy whatever it keeps. Chunk sums are accumulated during the
/// descent from the problem's per-stage prefix sums — one O(1)
/// [`ScheduleProblem::chunk_sum`] lookup per chunk placed, no per-leaf
/// re-validation, rescan, or allocation. This is the allocation-free core
/// that [`enumerate_schedules`] and the optimizer's exact engine share.
pub fn for_each_schedule<F: FnMut(&[usize], &[f64])>(problem: &ScheduleProblem, mut f: F) {
    let n = problem.stages();
    let m = problem.classes();
    let mut assignment = vec![0usize; n];
    let mut used = vec![false; m];
    let mut sums: Vec<f64> = Vec::with_capacity(m);

    // Recursive: place the chunk starting at `start`; `sums` carries the
    // chunk sums of the chunks already placed (honouring any cap).
    fn recurse<F: FnMut(&[usize], &[f64])>(
        problem: &ScheduleProblem,
        start: usize,
        assignment: &mut Vec<usize>,
        used: &mut Vec<bool>,
        sums: &mut Vec<f64>,
        f: &mut F,
    ) {
        let n = problem.stages();
        if start == n {
            f(assignment, sums);
            return;
        }
        if let Some(k) = problem.max_chunks() {
            if sums.len() >= k {
                return; // cap reached with stages remaining
            }
        }
        for c in 0..problem.classes() {
            if used[c] || !problem.is_allowed(c) {
                continue;
            }
            used[c] = true;
            for end in start..n {
                assignment[end] = c;
                sums.push(problem.chunk_sum(start, end, c));
                recurse(problem, end + 1, assignment, used, sums, f);
                sums.pop();
            }
            used[c] = false;
        }
    }

    recurse(problem, 0, &mut assignment, &mut used, &mut sums, &mut f);
}

/// Enumerates every valid schedule of `problem`, evaluated. Deterministic
/// order (see [`for_each_schedule`]).
pub fn enumerate_schedules(problem: &ScheduleProblem) -> Vec<ScheduleEval> {
    let mut out = Vec::new();
    for_each_schedule(problem, |assignment, sums| {
        let t_max = sums.iter().cloned().fold(f64::MIN, f64::max);
        let t_min = sums.iter().cloned().fold(f64::MAX, f64::min);
        out.push(ScheduleEval {
            assignment: assignment.to_vec(),
            chunk_sums: sums.to_vec(),
            t_max,
            t_min,
        });
    });
    out
}

/// The gapness-optimal schedule (objective O1), by exact enumeration.
pub fn min_gapness_exact(problem: &ScheduleProblem) -> Option<ScheduleEval> {
    enumerate_schedules(problem).into_iter().min_by(|a, b| {
        a.gapness()
            .total_cmp(&b.gapness())
            .then_with(|| a.t_max.total_cmp(&b.t_max))
    })
}

/// The `k` lowest-latency schedules, by exact enumeration (ties broken by
/// gapness, then lexicographically for determinism).
pub fn latency_candidates_exact(problem: &ScheduleProblem, k: usize) -> Vec<ScheduleEval> {
    let mut all = enumerate_schedules(problem);
    all.sort_by(|a, b| {
        a.t_max
            .total_cmp(&b.t_max)
            .then_with(|| a.gapness().total_cmp(&b.gapness()))
            .then_with(|| a.assignment.cmp(&b.assignment))
    });
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    fn problem(rows: Vec<Vec<f64>>) -> ScheduleProblem {
        ScheduleProblem::new(rows).unwrap()
    }

    /// Closed form: number of schedules = Σ_k C(n−1, k−1) · P(m, k).
    fn expected_count(n: usize, m: usize) -> usize {
        fn choose(n: usize, k: usize) -> usize {
            if k > n {
                return 0;
            }
            (0..k).fold(1, |acc, i| acc * (n - i) / (i + 1))
        }
        fn perm(m: usize, k: usize) -> usize {
            (0..k).fold(1, |acc, i| acc * (m - i))
        }
        (1..=m.min(n))
            .map(|k| choose(n - 1, k - 1) * perm(m, k))
            .sum()
    }

    #[test]
    fn enumeration_count_matches_closed_form() {
        for (n, m) in [(2, 2), (3, 2), (4, 3), (5, 4), (9, 4)] {
            let rows = vec![vec![1.0; m]; n];
            let p = problem(rows);
            let got = enumerate_schedules(&p).len();
            assert_eq!(got, expected_count(n, m), "n={n}, m={m}");
        }
    }

    #[test]
    fn paper_size_space_is_262k_naive_but_2k_contiguous() {
        // The paper counts 4^9 ≈ 262K naive assignments; contiguity cuts
        // this to about 2 000 actual schedules.
        let p = problem(vec![vec![1.0; 4]; 9]);
        let n = enumerate_schedules(&p).len();
        assert_eq!(n, expected_count(9, 4));
        assert!(n < 3000);
    }

    #[test]
    fn all_enumerated_schedules_are_valid_and_distinct() {
        let p = problem(vec![vec![1.0, 2.0, 3.0]; 5]);
        let all = enumerate_schedules(&p);
        let mut seen = std::collections::HashSet::new();
        for s in &all {
            assert!(p.is_valid(&s.assignment));
            assert!(
                seen.insert(s.assignment.clone()),
                "duplicate {:?}",
                s.assignment
            );
        }
    }

    #[test]
    fn evaluate_computes_extremes() {
        let p = problem(vec![vec![5.0, 1.0], vec![5.0, 1.0], vec![5.0, 1.0]]);
        let e = evaluate(&p, &[0, 1, 1]);
        assert_eq!(e.chunk_sums, vec![5.0, 2.0]);
        assert_eq!(e.t_max, 5.0);
        assert_eq!(e.t_min, 2.0);
        assert_eq!(e.gapness(), 3.0);
        assert_eq!(e.chunks(), 2);
    }

    #[test]
    fn min_gapness_exact_matches_sat() {
        let tables = [
            vec![vec![10.0, 30.0], vec![20.0, 10.0], vec![30.0, 20.0]],
            vec![
                vec![5.0, 50.0, 20.0],
                vec![25.0, 10.0, 15.0],
                vec![40.0, 30.0, 5.0],
                vec![10.0, 20.0, 30.0],
            ],
        ];
        for rows in tables {
            let p = problem(rows);
            let exact = min_gapness_exact(&p).expect("non-empty");
            let (sat_gap, sat_sched) = p.min_gapness().expect("feasible");
            assert!(
                (exact.gapness() - sat_gap).abs() < 1e-6,
                "exact {} vs sat {}",
                exact.gapness(),
                sat_gap
            );
            assert!(p.is_valid(&sat_sched));
        }
    }

    #[test]
    fn latency_candidates_exact_matches_sat_optimum() {
        let p = problem(vec![
            vec![10.0, 100.0],
            vec![100.0, 10.0],
            vec![10.0, 100.0],
            vec![50.0, 60.0],
        ]);
        let exact = latency_candidates_exact(&p, 1)[0].t_max;
        let (sat, _) = p.min_latency(&[]).expect("feasible");
        assert!((exact - sat).abs() < 1e-6, "exact {exact} vs sat {sat}");
    }

    #[test]
    fn max_chunks_cap_respected_by_both_engines() {
        let p = problem(vec![
            vec![10.0, 30.0, 20.0],
            vec![20.0, 10.0, 30.0],
            vec![30.0, 20.0, 10.0],
            vec![15.0, 25.0, 35.0],
        ])
        .with_max_chunks(2);
        let all = enumerate_schedules(&p);
        assert!(!all.is_empty());
        for e in &all {
            assert!(
                e.chunks() <= 2,
                "schedule {:?} uses {} chunks",
                e.assignment,
                e.chunks()
            );
        }
        // SAT engine agrees on the optimum under the cap.
        let exact = latency_candidates_exact(&p, 1)[0].t_max;
        let (sat, sched) = p.min_latency(&[]).expect("feasible");
        assert!((exact - sat).abs() < 1e-6, "exact {exact} vs sat {sat}");
        assert!(p.is_valid(&sched));
        // The cap binds: without it the optimum is strictly better.
        let free = problem(vec![
            vec![10.0, 30.0, 20.0],
            vec![20.0, 10.0, 30.0],
            vec![30.0, 20.0, 10.0],
            vec![15.0, 25.0, 35.0],
        ]);
        let unconstrained = latency_candidates_exact(&free, 1)[0].t_max;
        assert!(unconstrained <= exact);
    }

    #[test]
    fn disallowed_classes_excluded_from_enumeration() {
        let p = problem(vec![vec![1.0, 2.0]; 3])
            .with_allowed(vec![true, false])
            .unwrap();
        let all = enumerate_schedules(&p);
        assert_eq!(all.len(), 1, "only the all-class-0 schedule remains");
        assert_eq!(all[0].assignment, vec![0, 0, 0]);
    }
}
