//! Property tests for the DAG schedule encoding: the CEGAR SAT path
//! against the exact enumerator (the oracle), chain-shaped DAG problems
//! against the chain encoding, and DAG validity against an independent
//! reference implementation of path-convexity + chunk-graph acyclicity.

use bt_solver::{DagProblem, Engine, ScheduleProblem, StageDag};
use proptest::prelude::*;

/// A random DAG over `n` topologically-indexed stages: every forward pair
/// `(i, j)` is an edge with the given density, plus a spine edge from each
/// non-source to keep most graphs connected-ish (not required, just more
/// interesting).
fn random_dag(max_n: usize) -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (1..=max_n).prop_flat_map(|n| {
        let pairs: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| (i + 1..n).map(move |j| (i, j)))
            .collect();
        let len = pairs.len();
        proptest::collection::vec(any::<bool>(), len).prop_map(move |keep| {
            let deps: Vec<(usize, usize)> = pairs
                .iter()
                .zip(&keep)
                .filter_map(|(&e, &k)| k.then_some(e))
                .collect();
            (n, deps)
        })
    })
}

fn latency_table(n: usize, m: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(1.0f64..50.0, m), n)
}

/// Reference validity check, written independently of `DagProblem`:
/// per-class path-convexity over a freshly computed reachability relation
/// plus Kahn acyclicity of the class-quotient graph.
fn reference_valid(n: usize, deps: &[(usize, usize)], a: &[usize], m: usize) -> bool {
    if a.len() != n || a.iter().any(|&c| c >= m) {
        return false;
    }
    // Floyd–Warshall-style reachability (small n).
    let mut reach = vec![vec![false; n]; n];
    for &(u, v) in deps {
        reach[u][v] = true;
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                if reach[i][k] && reach[k][j] {
                    reach[i][j] = true;
                }
            }
        }
    }
    for u in 0..n {
        for v in 0..n {
            if a[u] == a[v] && reach[u][v] {
                for w in 0..n {
                    if reach[u][w] && reach[w][v] && a[w] != a[u] {
                        return false;
                    }
                }
            }
        }
    }
    // Quotient graph over classes actually used.
    let mut qedges: Vec<(usize, usize)> = deps
        .iter()
        .filter(|&&(u, v)| a[u] != a[v])
        .map(|&(u, v)| (a[u], a[v]))
        .collect();
    qedges.sort_unstable();
    qedges.dedup();
    let classes: Vec<usize> = {
        let mut cs: Vec<usize> = a.to_vec();
        cs.sort_unstable();
        cs.dedup();
        cs
    };
    let mut indeg: std::collections::BTreeMap<usize, usize> =
        classes.iter().map(|&c| (c, 0)).collect();
    for &(_, b) in &qedges {
        *indeg.get_mut(&b).unwrap() += 1;
    }
    let mut ready: Vec<usize> = indeg
        .iter()
        .filter_map(|(&c, &d)| (d == 0).then_some(c))
        .collect();
    let mut seen = 0;
    while let Some(c) = ready.pop() {
        seen += 1;
        for &(x, y) in &qedges {
            if x == c {
                let d = indeg.get_mut(&y).unwrap();
                *d -= 1;
                if *d == 0 {
                    ready.push(y);
                }
            }
        }
    }
    seen == classes.len()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The CEGAR SAT optimum equals the exhaustive-enumeration optimum on
    /// random fork/join DAGs — the extended-encoding analogue of the
    /// chain `min_latency` oracle test.
    #[test]
    fn sat_min_latency_matches_exact(
        (n, deps) in random_dag(5),
        seed_lat in latency_table(5, 3),
    ) {
        let lat: Vec<Vec<f64>> = seed_lat.into_iter().take(n).collect();
        let dag = StageDag::new(n, deps).unwrap();
        let p = DagProblem::new(lat, dag).unwrap();
        let exact = p.min_latency_exact();
        let sat = p.min_latency(&[]);
        match (exact, sat) {
            (Some((te, _)), Some((ts, a))) => {
                prop_assert!((te - ts).abs() < 1e-9, "exact {te} vs sat {ts}");
                prop_assert!(p.is_valid(&a));
            }
            (None, None) => {}
            (e, s) => prop_assert!(false, "feasibility disagreement: exact {e:?} vs sat {s:?}"),
        }
    }

    /// On chain-shaped DAGs the generalized encoding agrees with the
    /// original chain encoding: same validity verdict on arbitrary
    /// assignments and the same optimal bottleneck.
    #[test]
    fn chain_dag_reduces_to_chain_problem(
        lat in latency_table(5, 3),
        assignment in proptest::collection::vec(0usize..3, 5),
    ) {
        let n = lat.len();
        let chain = ScheduleProblem::new(lat.clone()).unwrap();
        let p = DagProblem::new(lat, StageDag::chain(n)).unwrap();
        prop_assert_eq!(chain.is_valid(&assignment), p.is_valid(&assignment));
        let (tc, _) = chain.min_latency(&[]).expect("chain feasible");
        let (td, _) = p.min_latency(&[]).expect("dag feasible");
        prop_assert!((tc - td).abs() < 1e-9, "chain {tc} vs dag {td}");
    }

    /// `DagProblem::is_valid` agrees with an independently written
    /// reference check on arbitrary (mostly invalid) assignments — in
    /// particular it rejects every extended-C2 (path-convexity) violation
    /// the reference rejects.
    #[test]
    fn validity_matches_reference(
        (n, deps) in random_dag(6),
        seed_a in proptest::collection::vec(0usize..3, 6),
        seed_lat in latency_table(6, 3),
    ) {
        let a: Vec<usize> = seed_a.into_iter().take(n).collect();
        let lat: Vec<Vec<f64>> = seed_lat.into_iter().take(n).collect();
        let dag = StageDag::new(n, deps.clone()).unwrap();
        let p = DagProblem::new(lat, dag).unwrap();
        prop_assert_eq!(p.is_valid(&a), reference_valid(n, &deps, &a, 3), "{:?} {:?}", deps, a);
    }

    /// Every candidate the SAT path returns is valid, correctly priced,
    /// distinct, and in non-decreasing latency order.
    #[test]
    fn sat_candidates_well_formed(
        (n, deps) in random_dag(4),
        seed_lat in latency_table(4, 3),
    ) {
        let lat: Vec<Vec<f64>> = seed_lat.into_iter().take(n).collect();
        let dag = StageDag::new(n, deps).unwrap();
        let p = DagProblem::new(lat, dag).unwrap();
        let cands = p.latency_candidates(6);
        let exact = p.latency_candidates_exact(6);
        prop_assert_eq!(cands.len(), exact.len());
        for (i, (t, a)) in cands.iter().enumerate() {
            prop_assert!(p.is_valid(a));
            prop_assert!((p.evaluate(a).t_max - t).abs() < 1e-9);
            // Same latency tier as the exact enumerator's i-th candidate.
            prop_assert!((exact[i].t_max - t).abs() < 1e-9);
            for (_, b) in &cands[i + 1..] {
                prop_assert_ne!(a, b);
            }
        }
        for w in cands.windows(2) {
            prop_assert!(w[0].0 <= w[1].0 + 1e-9);
        }
    }
}

proptest! {
    // Fewer cases here: the chronological DPLL oracle genuinely labors on
    // the large instances (that gap is what the CDCL upgrade is for), so
    // this block budgets its CI time separately from the cheap properties.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The clause-learning CDCL engine (the default) and the chronological
    /// DPLL oracle agree on mid-size random DAGs — same optimum, both
    /// witnesses valid, feasibility verdicts identical. (N is capped at 7
    /// here only because the *DPLL* side labors beyond that — the very gap
    /// the CDCL upgrade closes; `cdcl_matches_exact_on_large_dags` pushes
    /// CDCL itself to N = 9 against the enumerator.)
    #[test]
    fn cdcl_and_dpll_agree_on_large_dags(
        (n, deps) in random_dag(7),
        seed_lat in latency_table(7, 3),
    ) {
        let lat: Vec<Vec<f64>> = seed_lat.into_iter().take(n).collect();
        let dag = StageDag::new(n, deps).unwrap();
        let cdcl = DagProblem::new(lat.clone(), dag.clone()).unwrap();
        let dpll = DagProblem::new(lat, dag).unwrap().with_engine(Engine::Dpll);
        match (cdcl.min_latency(&[]), dpll.min_latency(&[])) {
            (Some((tc, ac)), Some((td, ad))) => {
                prop_assert!((tc - td).abs() < 1e-9, "cdcl {tc} vs dpll {td}");
                prop_assert!(cdcl.is_valid(&ac), "CDCL witness invalid");
                prop_assert!(dpll.is_valid(&ad), "DPLL witness invalid");
            }
            (None, None) => {}
            (c, d) => prop_assert!(false, "feasibility disagreement: cdcl {c:?} vs dpll {d:?}"),
        }
    }

    /// CDCL alone on genuinely large instances (N = 9, where the
    /// chronological DPLL takes seconds per solve): the learned-clause
    /// engine must still match the exhaustive enumerator exactly.
    #[test]
    fn cdcl_matches_exact_on_large_dags(
        (n, deps) in random_dag(9),
        seed_lat in latency_table(9, 3),
    ) {
        let lat: Vec<Vec<f64>> = seed_lat.into_iter().take(n).collect();
        let dag = StageDag::new(n, deps).unwrap();
        let p = DagProblem::new(lat, dag).unwrap();
        let exact = p.min_latency_exact();
        match (exact, p.min_latency(&[])) {
            (Some((te, _)), Some((ts, a))) => {
                prop_assert!((te - ts).abs() < 1e-9, "exact {te} vs cdcl {ts}");
                prop_assert!(p.is_valid(&a), "CDCL witness invalid");
            }
            (None, None) => {}
            (e, s) => prop_assert!(false, "feasibility disagreement: exact {e:?} vs cdcl {s:?}"),
        }
    }

    /// Both engines stream the same latency tiers through the blocking-
    /// clause candidate loop, and every model either emits verifies.
    #[test]
    fn cdcl_and_dpll_candidate_tiers_agree(
        (n, deps) in random_dag(5),
        seed_lat in latency_table(5, 3),
    ) {
        let lat: Vec<Vec<f64>> = seed_lat.into_iter().take(n).collect();
        let dag = StageDag::new(n, deps).unwrap();
        let cdcl = DagProblem::new(lat.clone(), dag.clone()).unwrap();
        let dpll = DagProblem::new(lat, dag).unwrap().with_engine(Engine::Dpll);
        let cc = cdcl.latency_candidates(5);
        let dc = dpll.latency_candidates(5);
        prop_assert_eq!(cc.len(), dc.len(), "candidate counts differ");
        for ((tc, ac), (td, ad)) in cc.iter().zip(&dc) {
            prop_assert!((tc - td).abs() < 1e-9, "tier cdcl {} vs dpll {}", tc, td);
            prop_assert!(cdcl.is_valid(ac) && dpll.is_valid(ad));
        }
    }
}
