//! The device-fleet registry.
//!
//! Devices are data: one `SocSpec` JSON per device under `devices/`,
//! enumerated by `devices/registry.json`. The registry interns each spec
//! with its content hash at registration time, so request-path lookups
//! are a borrowed-string map probe — no parsing, hashing, or allocation.
//!
//! [`validate_dir`] is the CI schema gate: every record must name a
//! parseable `SocSpec` file, every JSON file in the directory must be
//! referenced exactly once, and names must be unique (including against
//! any builtin fleet the service registers).

use std::collections::HashMap;
use std::fs;
use std::path::Path;

use serde::{Deserialize, Serialize};

use bt_soc::{devices, SocSpec};

use crate::ServeError;

/// One interned device.
#[derive(Debug, Clone)]
pub struct DeviceEntry {
    /// Registered (request-facing) name, e.g. `"pixel_7a"`.
    pub name: String,
    /// The full device model.
    pub spec: SocSpec,
    /// `spec.content_hash()`, precomputed at registration.
    pub hash: u64,
}

/// The on-disk `devices/registry.json` format.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegistryFile {
    /// Every fleet device, in display order.
    pub devices: Vec<RegistryRecord>,
}

/// One record of [`RegistryFile`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegistryRecord {
    /// Request-facing device name (must be unique).
    pub name: String,
    /// Spec file, relative to the registry's directory.
    pub file: String,
    /// Human-readable description.
    pub description: String,
}

/// Outcome of validating a registry directory.
#[derive(Debug, Clone, Default)]
pub struct RegistryReport {
    /// `(name, file, content hash)` for every valid record.
    pub checked: Vec<(String, String, u64)>,
    /// Every violation found (empty means the directory is valid).
    pub errors: Vec<String>,
}

impl RegistryReport {
    /// Whether validation passed.
    pub fn is_ok(&self) -> bool {
        self.errors.is_empty()
    }
}

/// An interned, name-addressable device fleet.
#[derive(Debug, Clone, Default)]
pub struct DeviceRegistry {
    entries: Vec<DeviceEntry>,
    by_name: HashMap<String, u32>,
}

impl DeviceRegistry {
    /// An empty registry.
    pub fn new() -> DeviceRegistry {
        DeviceRegistry::default()
    }

    /// The four paper evaluation platforms under their canonical short
    /// names (`pixel_7a`, `oneplus_11`, `jetson_orin_nano`,
    /// `jetson_orin_nano_lp`).
    pub fn builtin() -> DeviceRegistry {
        let mut r = DeviceRegistry::new();
        r.register("pixel_7a", devices::pixel_7a());
        r.register("oneplus_11", devices::oneplus_11());
        r.register("jetson_orin_nano", devices::jetson_orin_nano());
        r.register("jetson_orin_nano_lp", devices::jetson_orin_nano_lp());
        r
    }

    /// Interns `spec` under `name`, replacing any previous registration
    /// of that name. Returns the entry index.
    pub fn register(&mut self, name: impl Into<String>, spec: SocSpec) -> u32 {
        let name = name.into();
        let hash = spec.content_hash();
        if let Some(&idx) = self.by_name.get(&name) {
            self.entries[idx as usize] = DeviceEntry { name, spec, hash };
            return idx;
        }
        let idx = u32::try_from(self.entries.len()).expect("fleet fits in u32");
        self.by_name.insert(name.clone(), idx);
        self.entries.push(DeviceEntry { name, spec, hash });
        idx
    }

    /// Loads every record of `dir/registry.json` into the registry.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Registry`] on any read/parse failure.
    pub fn load_dir(&mut self, dir: &Path) -> Result<(), ServeError> {
        let file = load_registry_file(dir)?;
        for record in &file.devices {
            let spec = load_spec(dir, &record.file)?;
            self.register(record.name.clone(), spec);
        }
        Ok(())
    }

    /// Resolves a device by name. Allocation-free for `String`-keyed maps
    /// probed with `&str`.
    pub fn get(&self, name: &str) -> Option<(u32, &DeviceEntry)> {
        let idx = *self.by_name.get(name)?;
        Some((idx, &self.entries[idx as usize]))
    }

    /// The entry at `idx`.
    pub fn entry(&self, idx: u32) -> &DeviceEntry {
        &self.entries[idx as usize]
    }

    /// All entries, in registration order.
    pub fn entries(&self) -> &[DeviceEntry] {
        &self.entries
    }

    /// Number of registered devices.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

fn load_registry_file(dir: &Path) -> Result<RegistryFile, ServeError> {
    let path = dir.join("registry.json");
    let raw = fs::read_to_string(&path)
        .map_err(|e| ServeError::Registry(format!("read {}: {e}", path.display())))?;
    serde_json::from_str(&raw)
        .map_err(|e| ServeError::Registry(format!("parse {}: {e}", path.display())))
}

fn load_spec(dir: &Path, file: &str) -> Result<SocSpec, ServeError> {
    let path = dir.join(file);
    let raw = fs::read_to_string(&path)
        .map_err(|e| ServeError::Registry(format!("read {}: {e}", path.display())))?;
    serde_json::from_str(&raw)
        .map_err(|e| ServeError::Registry(format!("parse {} as SocSpec: {e}", path.display())))
}

/// Validates a registry directory for CI: `registry.json` parses, every
/// record's file parses as a schedulable `SocSpec`, names and files are
/// unique, and every `*.json` spec file in the directory is referenced.
///
/// Violations are *collected*, not short-circuited, so one CI run reports
/// every schema drift at once.
///
/// # Errors
///
/// Returns [`ServeError::Registry`] only if the directory itself cannot
/// be enumerated; schema violations land in [`RegistryReport::errors`].
pub fn validate_dir(dir: &Path) -> Result<RegistryReport, ServeError> {
    let mut report = RegistryReport::default();
    let file = match load_registry_file(dir) {
        Ok(f) => f,
        Err(e) => {
            report.errors.push(e.to_string());
            return Ok(report);
        }
    };

    let mut seen_names: HashMap<&str, usize> = HashMap::new();
    let mut seen_files: HashMap<&str, usize> = HashMap::new();
    for (i, record) in file.devices.iter().enumerate() {
        if let Some(prev) = seen_names.insert(&record.name, i) {
            report.errors.push(format!(
                "duplicate device name {:?} (records {prev} and {i})",
                record.name
            ));
        }
        if let Some(prev) = seen_files.insert(&record.file, i) {
            report.errors.push(format!(
                "file {:?} referenced by records {prev} and {i}",
                record.file
            ));
        }
        match load_spec(dir, &record.file) {
            Ok(spec) => {
                if spec.schedulable_classes().is_empty() {
                    report.errors.push(format!(
                        "{}: no schedulable PU class — nothing can host a chunk",
                        record.file
                    ));
                } else {
                    report.checked.push((
                        record.name.clone(),
                        record.file.clone(),
                        spec.content_hash(),
                    ));
                }
            }
            Err(e) => report.errors.push(e.to_string()),
        }
    }

    let listed = fs::read_dir(dir)
        .map_err(|e| ServeError::Registry(format!("read dir {}: {e}", dir.display())))?;
    for entry in listed.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if !name.ends_with(".json") || name == "registry.json" {
            continue;
        }
        if !seen_files.contains_key(name.as_ref()) {
            report.errors.push(format!(
                "{name} exists in {} but is not referenced by registry.json",
                dir.display()
            ));
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn devices_dir() -> std::path::PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../../devices")
    }

    #[test]
    fn builtin_fleet_registers_four_devices() {
        let r = DeviceRegistry::builtin();
        assert_eq!(r.len(), 4);
        let (idx, entry) = r.get("pixel_7a").expect("registered");
        assert_eq!(entry.hash, devices::pixel_7a().content_hash());
        assert_eq!(r.entry(idx).name, "pixel_7a");
        assert!(r.get("nonexistent").is_none());
    }

    #[test]
    fn committed_devices_dir_validates_cleanly() {
        let report = validate_dir(&devices_dir()).expect("dir readable");
        assert!(report.is_ok(), "violations: {:?}", report.errors);
        assert!(
            report.checked.len() >= 3,
            "expected at least rk3588 + two fleet devices, got {:?}",
            report.checked
        );
    }

    #[test]
    fn committed_devices_load_into_a_registry() {
        let mut r = DeviceRegistry::builtin();
        r.load_dir(&devices_dir()).expect("fleet loads");
        assert!(r.len() >= 7, "builtin 4 + disk fleet, got {}", r.len());
        assert!(r.get("rk3588").is_some());
    }

    #[test]
    fn unreferenced_files_and_bad_records_are_reported() {
        let dir = std::env::temp_dir().join(format!("bt-serve-registry-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join("registry.json"),
            r#"{"devices":[{"name":"ghost","file":"ghost.json","description":"missing"}]}"#,
        )
        .unwrap();
        fs::write(dir.join("orphan.json"), "{}").unwrap();
        let report = validate_dir(&dir).unwrap();
        assert!(!report.is_ok());
        assert!(report.errors.iter().any(|e| e.contains("ghost.json")));
        assert!(report.errors.iter().any(|e| e.contains("orphan.json")));
        fs::remove_dir_all(&dir).ok();
    }
}
