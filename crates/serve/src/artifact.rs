//! Serializable served-plan artifacts, for replay and audit.

use serde::{Deserialize, Serialize};

use bt_core::{BtError, ExecutionBackend};
use bt_pipeline::Schedule;
use bt_soc::PuClass;

use crate::ServeError;

/// What a plan optimizes for. Each cold solve populates a cache cell per
/// objective, so switching objectives on a warm cell never re-solves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlanObjective {
    /// Minimize measured steady-state per-task latency (the paper's
    /// default ranking).
    MinLatency,
    /// Minimize measured energy per task under the device power model.
    MinEnergy,
}

impl PlanObjective {
    /// The objective's component in the [`crate::PlanKey`] derivation.
    pub fn tag(self) -> u64 {
        match self {
            PlanObjective::MinLatency => 0x4c41_5445_4e43_5931, // "LATENCY1"
            PlanObjective::MinEnergy => 0x454e_4552_4759_5f31,  // "ENERGY_1"
        }
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            PlanObjective::MinLatency => "latency",
            PlanObjective::MinEnergy => "energy",
        }
    }
}

/// One served plan, with enough provenance to replay it offline: which
/// cell produced it (device, app, scale bucket, objective), the content
/// key it was cached under, and the chosen schedule with its predicted
/// and measured statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanArtifact {
    /// Registered device name.
    pub device: String,
    /// Registered app name.
    pub app: String,
    /// Half-octave input-scale bucket (`round(2·log2(scale))`).
    pub scale_bucket: i32,
    /// The objective this plan was ranked under.
    pub objective: PlanObjective,
    /// High 64 bits of the content-addressed cache key.
    pub key_hi: u64,
    /// Low 64 bits of the content-addressed cache key.
    pub key_lo: u64,
    /// Signature of the profiling table the solve ran against (after any
    /// drift rescaling).
    pub table_sig: u64,
    /// The chosen stage → PU-class assignment.
    pub assignment: Vec<PuClass>,
    /// Solver-predicted bottleneck latency (µs).
    pub predicted_us: f64,
    /// Mean measured per-task latency over the evaluation lanes (µs).
    pub measured_us: f64,
    /// Measured energy per task (mJ) under the device power model.
    pub energy_per_task_mj: f64,
    /// How many candidate schedules the cold solve considered.
    pub candidates_considered: usize,
    /// Monotonic index of the cold solve that produced this plan.
    pub solve_index: u64,
}

impl PlanArtifact {
    /// Materializes the executable schedule.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] if the stored assignment is empty or
    /// non-contiguous (possible only for hand-edited artifacts).
    pub fn schedule(&self) -> Result<Schedule, ServeError> {
        Schedule::new(self.assignment.clone())
            .map_err(|e| ServeError::Registry(format!("artifact schedule invalid: {e:?}")))
    }

    /// Validates the plan against a backend, exactly like
    /// [`bt_core::Plan::validate`]: stage counts must match and every
    /// scheduled class must be schedulable there.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] on stage-count mismatch or an unavailable
    /// class.
    pub fn validate<B: ExecutionBackend>(&self, backend: &B) -> Result<(), ServeError> {
        if self.assignment.len() != backend.stage_count() {
            return Err(ServeError::Core(BtError::PlanStageMismatch {
                plan: self.assignment.len(),
                backend: backend.stage_count(),
            }));
        }
        for &class in &self.assignment {
            if !backend.schedulable(class) {
                return Err(ServeError::Core(BtError::PlanClassUnavailable(class)));
            }
        }
        Ok(())
    }

    /// Serializes for replay.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("artifact serializes")
    }

    /// Deserializes a replayed artifact.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] on malformed JSON.
    pub fn from_json(json: &str) -> Result<PlanArtifact, ServeError> {
        serde_json::from_str(json).map_err(|e| ServeError::Registry(format!("bad artifact: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_round_trips_through_json() {
        let a = PlanArtifact {
            device: "pixel_7a".into(),
            app: "octree".into(),
            scale_bucket: 2,
            objective: PlanObjective::MinEnergy,
            key_hi: 7,
            key_lo: 9,
            table_sig: 42,
            assignment: vec![PuClass::BigCpu, PuClass::BigCpu, PuClass::Gpu],
            predicted_us: 123.4,
            measured_us: 130.1,
            energy_per_task_mj: 0.8,
            candidates_considered: 8,
            solve_index: 3,
        };
        let back = PlanArtifact::from_json(&a.to_json()).unwrap();
        assert_eq!(a, back);
        assert_eq!(back.schedule().unwrap().chunks().len(), 2);
    }

    #[test]
    fn objective_tags_differ() {
        assert_ne!(
            PlanObjective::MinLatency.tag(),
            PlanObjective::MinEnergy.tag()
        );
    }
}
