//! The content-addressed plan cache.
//!
//! A plan's identity is the content that went into solving it: the device
//! model hash, the (scaled) app signature, the profiling-table signature,
//! and the objective. [`PlanKey`] mixes those four 64-bit hashes into one
//! 128-bit key; the cache is a plain `RwLock<HashMap>` from keys to
//! `Arc`-shared [`PlanArtifact`]s.
//!
//! The hit path — [`PlanCache::get`] — is a read-lock, a `HashMap`
//! lookup on a `Copy` key, an `Arc::clone`, and two relaxed atomic
//! counter bumps: zero heap allocations, verified by the
//! `#[global_allocator]`-instrumented `hit_alloc` test and gated in CI
//! by `bench_serve`.
//!
//! There is no eviction: a cell is *invalidated* by becoming
//! unreachable — drift rescales the cell's table, the table signature
//! changes, and requests stop deriving the stale key. Recovery restores
//! the old signature and the old plan is served again without a solve.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::artifact::PlanArtifact;

/// A 128-bit content-derived cache key. Construction is pure mixing over
/// the component hashes — no allocation, stable across processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey(u128);

/// `splitmix64` finalizer — a fast, well-dispersed 64-bit mixer.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl PlanKey {
    /// Derives the key for `(device hash, app signature, table signature,
    /// objective tag)`. Two sequential mixing passes with different seeds
    /// produce the two independent 64-bit halves.
    pub fn derive(device_hash: u64, app_sig: u64, table_sig: u64, objective_tag: u64) -> PlanKey {
        let mix = |seed: u64| {
            let mut h = splitmix64(seed ^ device_hash);
            h = splitmix64(h ^ app_sig);
            h = splitmix64(h ^ table_sig);
            splitmix64(h ^ objective_tag)
        };
        let hi = mix(0x6274_5f73_6572_7665); // "bt_serve"
        let lo = mix(0x706c_616e_5f6b_6579); // "plan_key"
        PlanKey((u128::from(hi) << 64) | u128::from(lo))
    }

    /// The high 64 bits (for serializable artifacts).
    pub fn hi(self) -> u64 {
        (self.0 >> 64) as u64
    }

    /// The low 64 bits.
    pub fn lo(self) -> u64 {
        self.0 as u64
    }
}

/// Monotonic cache counters, sampled with [`PlanCache::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests answered straight from the cache.
    pub hits: u64,
    /// Requests that required a cold solve.
    pub misses: u64,
    /// Drift-triggered invalidations (a serving cell rescaled its table,
    /// making previously cached plans content-unreachable).
    pub invalidations: u64,
    /// Plans currently cached.
    pub plans: usize,
}

/// The concurrent plan store. Shared by reference across serving threads.
#[derive(Debug, Default)]
pub struct PlanCache {
    map: RwLock<HashMap<PlanKey, Arc<PlanArtifact>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
}

impl PlanCache {
    /// Creates an empty cache.
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// Looks up a plan, counting the hit or miss. Allocation-free.
    pub fn get(&self, key: PlanKey) -> Option<Arc<PlanArtifact>> {
        let found = self
            .map
            .read()
            .expect("plan cache lock poisoned")
            .get(&key)
            .cloned();
        match found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Peeks without touching the hit/miss counters (used when a batched
    /// solve re-resolves requests it already counted as misses).
    pub fn peek(&self, key: PlanKey) -> Option<Arc<PlanArtifact>> {
        self.map
            .read()
            .expect("plan cache lock poisoned")
            .get(&key)
            .cloned()
    }

    /// Stores a plan under its content key.
    pub fn insert(&self, key: PlanKey, plan: Arc<PlanArtifact>) {
        self.map
            .write()
            .expect("plan cache lock poisoned")
            .insert(key, plan);
    }

    /// Records a miss that never reached [`PlanCache::get`] (no serving
    /// cell yet, or the cell drifted), keeping request accounting exact.
    pub fn note_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one drift-triggered invalidation.
    pub fn note_invalidation(&self) {
        self.invalidations.fetch_add(1, Ordering::Relaxed);
    }

    /// Drops every cached plan, keeping the counters (benchmark support:
    /// re-measure the cold path against warm serving cells).
    pub fn clear(&self) {
        self.map.write().expect("plan cache lock poisoned").clear();
    }

    /// All cached plans, for artifact export/replay.
    pub fn export(&self) -> Vec<Arc<PlanArtifact>> {
        self.map
            .read()
            .expect("plan cache lock poisoned")
            .values()
            .cloned()
            .collect()
    }

    /// Samples the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            plans: self.map.read().expect("plan cache lock poisoned").len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_stable_and_discriminating() {
        let k = PlanKey::derive(1, 2, 3, 4);
        assert_eq!(k, PlanKey::derive(1, 2, 3, 4));
        // Changing any one component changes the key.
        assert_ne!(k, PlanKey::derive(9, 2, 3, 4));
        assert_ne!(k, PlanKey::derive(1, 9, 3, 4));
        assert_ne!(k, PlanKey::derive(1, 2, 9, 4));
        assert_ne!(k, PlanKey::derive(1, 2, 3, 9));
        // Components are not interchangeable.
        assert_ne!(PlanKey::derive(1, 2, 3, 4), PlanKey::derive(2, 1, 3, 4));
    }

    #[test]
    fn counters_track_hits_misses() {
        let cache = PlanCache::new();
        let key = PlanKey::derive(1, 2, 3, 4);
        assert!(cache.get(key).is_none());
        cache.insert(
            key,
            Arc::new(crate::artifact::PlanArtifact {
                device: "d".into(),
                app: "a".into(),
                scale_bucket: 0,
                objective: crate::PlanObjective::MinLatency,
                key_hi: key.hi(),
                key_lo: key.lo(),
                table_sig: 3,
                assignment: vec![bt_soc::PuClass::BigCpu],
                predicted_us: 1.0,
                measured_us: 1.0,
                energy_per_task_mj: 0.1,
                candidates_considered: 1,
                solve_index: 0,
            }),
        );
        assert!(cache.get(key).is_some());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.plans), (1, 1, 1));
    }
}
