//! Serving-layer errors.

use bt_core::BtError;

/// Errors answering a plan request or validating the device fleet.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// The requested device is not registered with the service.
    UnknownDevice(String),
    /// The requested app is not registered with the service.
    UnknownApp(String),
    /// `input_scale` must be positive and finite.
    BadScale(f64),
    /// A fault-history slowdown factor must be positive and finite.
    BadFaultFactor {
        /// The offending factor.
        factor: f64,
    },
    /// The cold path failed to produce a plan.
    Core(BtError),
    /// A registry or device file failed to load/validate.
    Registry(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownDevice(name) => write!(f, "unknown device {name:?}"),
            ServeError::UnknownApp(name) => write!(f, "unknown app {name:?}"),
            ServeError::BadScale(s) => {
                write!(f, "input_scale must be positive and finite, got {s}")
            }
            ServeError::BadFaultFactor { factor } => {
                write!(f, "fault factor must be positive and finite, got {factor}")
            }
            ServeError::Core(e) => write!(f, "cold solve failed: {e}"),
            ServeError::Registry(msg) => write!(f, "device registry: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BtError> for ServeError {
    fn from(e: BtError) -> ServeError {
        ServeError::Core(e)
    }
}
