//! The plan-serving request loop.
//!
//! A [`PlanService`] owns a device fleet, a set of registered apps, and a
//! population of *serving cells* — one per `(device, app, input-scale
//! bucket)` — each holding a warm profiling table (plus an optional
//! persistent incremental solver session). Requests resolve to a cell,
//! derive a content-addressed [`crate::PlanKey`], and either hit the plan
//! cache (allocation-free) or fall through to a batched cold solve.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

use bt_core::{
    build_problem_masked, optimize_with, Candidate, DriftConfig, ExecutionBackend, Objective,
    OptimizerConfig, SimBackend, SolverEngine,
};
use bt_kernels::AppModel;
use bt_profiler::{ProfileMode, ProfilerConfig, ProfilingTable};
use bt_soc::power::{energy_of_window, PowerModel};
use bt_soc::run::RunConfig;
use bt_soc::{json_hash, Micros, PuClass, SocSpec};
use bt_solver::OwnedLatencyEnumerator;

use crate::artifact::{PlanArtifact, PlanObjective};
use crate::cache::{PlanCache, PlanKey};
use crate::registry::DeviceRegistry;
use crate::ServeError;

/// One plan request. Borrowed fields keep the hit path allocation-free.
#[derive(Debug, Clone, Copy)]
pub struct PlanRequest<'a> {
    /// Registered device name.
    pub device: &'a str,
    /// Registered app name.
    pub app: &'a str,
    /// Input-size multiplier relative to the registered app (quantized to
    /// half-octave buckets; 1.0 is the app as registered).
    pub input_scale: f64,
    /// Observed per-class slowdown factors from the client's recent runs
    /// (the drift signal of the PR 4 resilience loop). Empty means "no
    /// drift observed"; factors ≤ 1 mean "recovered".
    pub fault_history: &'a [(PuClass, f64)],
    /// What the plan should optimize.
    pub objective: PlanObjective,
}

/// How a response was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedFrom {
    /// Straight from the content-addressed cache (allocation-free path).
    Cache,
    /// A cold solve ran — possibly one shared, batched solve covering
    /// several requests of a [`PlanService::serve_batch`] burst.
    ColdSolve,
}

/// A served plan.
#[derive(Debug, Clone)]
pub struct PlanResponse {
    /// The (shared) plan artifact.
    pub artifact: Arc<PlanArtifact>,
    /// Hit or cold.
    pub from: ServedFrom,
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Candidate schedules per cold solve (the serving analogue of the
    /// paper's 𝒦; smaller than the offline default because serving ranks
    /// by throughput).
    pub candidates: usize,
    /// How many top candidates get DES-evaluated per solve.
    pub eval_candidates: usize,
    /// Evaluation lanes (distinct seeds) per candidate, priced in one
    /// batched structure-of-arrays DES pass.
    pub eval_lanes: usize,
    /// Cold-path candidate engine. [`SolverEngine::Exact`] streams the
    /// contiguous-partition space (fastest); [`SolverEngine::Sat`] keeps a
    /// persistent incremental CDCL session per serving cell.
    pub engine: SolverEngine,
    /// Drift policy — the PR 4 rescale loop reused as the cache
    /// invalidation policy: `threshold` is how far a request's observed
    /// factors may sit from the cell's applied factors before the cell
    /// rescales, `max_factor` clamps the applied slowdown.
    pub drift: DriftConfig,
    /// Profiling configuration for warming a cell's table.
    pub profiler: ProfilerConfig,
    /// DES configuration for candidate evaluation.
    pub run: RunConfig,
    /// Fan profiling and batched group solves across threads when the
    /// machine has them (deterministic either way).
    pub parallel: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            candidates: 8,
            eval_candidates: 4,
            eval_lanes: 3,
            engine: SolverEngine::Exact,
            drift: DriftConfig::default(),
            profiler: ProfilerConfig::default(),
            run: RunConfig::default(),
            parallel: true,
        }
    }
}

/// Service counters, sampled with [`PlanService::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests answered from cache.
    pub hits: u64,
    /// Requests that took the cold path.
    pub misses: u64,
    /// Drift-triggered cell invalidations.
    pub invalidations: u64,
    /// Cold solves performed (each populates every objective's cell).
    pub solves: u64,
    /// Live serving cells (warm tables).
    pub cells: usize,
    /// Plans currently cached.
    pub plans: usize,
}

/// A registered application.
#[derive(Debug)]
struct AppEntry {
    model: AppModel,
}

/// Cell index: (device, app, scale bucket).
type CellKey = (u32, u32, i32);

/// A scaled app model and its content signature, shared across cells.
type ScaledApp = Arc<(AppModel, u64)>;

/// A persistent incremental solver session (SAT engine only): the
/// enumerator keeps its clause database, learned clauses, and blocking
/// set alive across solves, so asking a warm cell for more candidates
/// resumes where the last solve stopped instead of re-encoding.
#[derive(Debug)]
struct SatSession {
    /// Table signature the session was built against.
    sig: u64,
    enumerator: OwnedLatencyEnumerator,
    /// Candidates pulled so far, in non-decreasing predicted latency.
    candidates: Vec<Candidate>,
}

/// One serving cell: warm profiling state for a (device, app, bucket).
#[derive(Debug)]
struct TableCell {
    device_hash: u64,
    app_sig: u64,
    /// The factor-free profiled table for this cell.
    base_table: ProfilingTable,
    /// Which classes the table prices — drift on a class the device
    /// cannot schedule is irrelevant to the plan and ignored.
    class_mask: [bool; PuClass::COUNT],
    /// Per-class slowdown factors currently applied (1.0 = pristine).
    factors: [f64; PuClass::COUNT],
    /// `base_table` with `factors` applied — what cold solves run on.
    table: ProfilingTable,
    /// Content signature of `table` (the cache-key component).
    sig: u64,
    backend: SimBackend,
    power: PowerModel,
    session: Option<SatSession>,
    /// Cold solves performed in this cell (artifact provenance; per-cell
    /// so identical content yields identical artifacts regardless of
    /// fleet-wide request interleaving).
    solve_count: u64,
}

/// A resolved request: indices and stack-only derived state.
#[derive(Debug, Clone, Copy)]
struct Resolved {
    device: u32,
    app: u32,
    bucket: i32,
    factors: [f64; PuClass::COUNT],
    objective: PlanObjective,
}

/// The scheduling-as-a-service entry point. `&self` methods are safe to
/// share across threads.
#[derive(Debug)]
pub struct PlanService {
    cfg: ServeConfig,
    registry: DeviceRegistry,
    apps: Vec<AppEntry>,
    app_by_name: HashMap<String, u32>,
    /// Scaled app models + signatures per (app, bucket), built on demand.
    scaled: RwLock<HashMap<(u32, i32), ScaledApp>>,
    cells: RwLock<HashMap<CellKey, Arc<RwLock<TableCell>>>>,
    cache: PlanCache,
    solves: AtomicU64,
}

impl PlanService {
    /// A service over an explicit device fleet with no apps registered.
    pub fn new(registry: DeviceRegistry, cfg: ServeConfig) -> PlanService {
        PlanService {
            cfg,
            registry,
            apps: Vec::new(),
            app_by_name: HashMap::new(),
            scaled: RwLock::new(HashMap::new()),
            cells: RwLock::new(HashMap::new()),
            cache: PlanCache::new(),
            solves: AtomicU64::new(0),
        }
    }

    /// The paper fleet (four builtin devices) with the four workloads
    /// (`octree`, `alexnet-dense`, `alexnet-sparse`, `perception`)
    /// registered.
    pub fn builtin(cfg: ServeConfig) -> PlanService {
        use bt_kernels::apps;
        let mut s = PlanService::new(DeviceRegistry::builtin(), cfg);
        s.register_app(apps::octree_app(apps::OctreeConfig::default()).model());
        s.register_app(apps::alexnet_dense_app(apps::AlexNetConfig::default()).model());
        s.register_app(apps::alexnet_sparse_app(apps::AlexNetConfig::default()).model());
        s.register_app(apps::perception_app(apps::PerceptionConfig::default()).model());
        s
    }

    /// Registers a device under `name`.
    pub fn register_device(&mut self, name: impl Into<String>, spec: SocSpec) -> u32 {
        self.registry.register(name, spec)
    }

    /// Loads a `devices/` registry directory into the fleet.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Registry`] on read/parse failures.
    pub fn load_devices(&mut self, dir: &std::path::Path) -> Result<(), ServeError> {
        self.registry.load_dir(dir)
    }

    /// Registers an app under its model name.
    pub fn register_app(&mut self, model: AppModel) -> u32 {
        let idx = u32::try_from(self.apps.len()).expect("app set fits in u32");
        self.app_by_name.insert(model.name.clone(), idx);
        self.apps.push(AppEntry { model });
        idx
    }

    /// The fleet registry.
    pub fn registry(&self) -> &DeviceRegistry {
        &self.registry
    }

    /// Registered app names, in registration order.
    pub fn app_names(&self) -> Vec<&str> {
        self.apps.iter().map(|a| a.model.name.as_str()).collect()
    }

    /// Samples every counter.
    pub fn stats(&self) -> ServeStats {
        let c = self.cache.stats();
        ServeStats {
            hits: c.hits,
            misses: c.misses,
            invalidations: c.invalidations,
            solves: self.solves.load(Ordering::Relaxed),
            cells: self.cells.read().expect("cells lock").len(),
            plans: c.plans,
        }
    }

    /// Exports every cached plan for replay.
    pub fn export_plans(&self) -> Vec<PlanArtifact> {
        self.cache.export().iter().map(|a| (**a).clone()).collect()
    }

    /// Drops cached plans while keeping warm tables and solver sessions —
    /// benchmark support for re-measuring the cold path.
    pub fn clear_plans(&self) {
        self.cache.clear();
    }

    /// Answers one request: allocation-free cache hit, or a cold solve
    /// that populates every objective's cell for this content.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError`] for unknown names, invalid scales/factors,
    /// or a failed cold solve.
    pub fn serve(&self, req: &PlanRequest<'_>) -> Result<PlanResponse, ServeError> {
        let r = self.resolve(req)?;
        if let Some(artifact) = self.try_hit(&r, true) {
            return Ok(PlanResponse {
                artifact,
                from: ServedFrom::Cache,
            });
        }
        self.cold_serve(&r)
    }

    /// Answers a burst. Hits are served first; misses are grouped by
    /// (cell, factors) and each group is solved **once** — the batched
    /// cold path — then every member is answered from the fresh cells.
    /// Groups fan out across threads when configured and available.
    ///
    /// # Errors
    ///
    /// Returns the first [`ServeError`] encountered; the batch fails as a
    /// unit (no partial answers).
    pub fn serve_batch(&self, reqs: &[PlanRequest<'_>]) -> Result<Vec<PlanResponse>, ServeError> {
        let resolved: Vec<Resolved> = reqs
            .iter()
            .map(|r| self.resolve(r))
            .collect::<Result<_, _>>()?;

        let mut out: Vec<Option<PlanResponse>> = vec![None; reqs.len()];
        // Group misses by (cell, applied factors): members are satisfied
        // by the identical solve.
        type GroupId = (CellKey, [u64; PuClass::COUNT]);
        let mut groups: HashMap<GroupId, Vec<usize>> = HashMap::new();
        let mut group_order: Vec<GroupId> = Vec::new();
        for (i, r) in resolved.iter().enumerate() {
            if let Some(artifact) = self.try_hit(r, true) {
                out[i] = Some(PlanResponse {
                    artifact,
                    from: ServedFrom::Cache,
                });
                continue;
            }
            let id: GroupId = ((r.device, r.app, r.bucket), r.factors.map(f64::to_bits));
            let members = groups.entry(id).or_default();
            if members.is_empty() {
                group_order.push(id);
            }
            members.push(i);
        }

        // One representative request per group runs the cold solve; the
        // solve populates the cell for *both* objectives, so the other
        // members resolve from cache below.
        let leaders: Vec<Resolved> = group_order
            .iter()
            .map(|id| resolved[groups[id][0]])
            .collect();
        let solved = self.fan_cold(&leaders)?;
        for (gi, id) in group_order.iter().enumerate() {
            let members = &groups[id];
            for (mi, &req_idx) in members.iter().enumerate() {
                let r = &resolved[req_idx];
                let artifact = if mi == 0 && r.objective == leaders[gi].objective {
                    solved[gi].artifact.clone()
                } else {
                    // Same cell, possibly the other objective: the solve
                    // above cached it. `try_hit` without counters — these
                    // requests were already counted as misses.
                    self.try_hit(r, false)
                        .ok_or(ServeError::Core(bt_core::BtError::NoCandidates))?
                };
                out[req_idx] = Some(PlanResponse {
                    artifact,
                    from: ServedFrom::ColdSolve,
                });
            }
        }
        Ok(out
            .into_iter()
            .map(|r| r.expect("every request answered"))
            .collect())
    }

    /// Runs the group-leader cold solves, fanned across threads when the
    /// machine has them. Results are index-ordered (deterministic).
    fn fan_cold(&self, leaders: &[Resolved]) -> Result<Vec<PlanResponse>, ServeError> {
        let threads = if self.cfg.parallel {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(leaders.len())
        } else {
            1
        };
        if threads <= 1 || leaders.len() <= 1 {
            return leaders.iter().map(|r| self.cold_serve(r)).collect();
        }
        let next = AtomicUsize::new(0);
        let results: Vec<RwLock<Option<Result<PlanResponse, ServeError>>>> =
            leaders.iter().map(|_| RwLock::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= leaders.len() {
                        break;
                    }
                    *results[i].write().expect("result slot") = Some(self.cold_serve(&leaders[i]));
                });
            }
        });
        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot")
                    .expect("slot filled")
            })
            .collect()
    }

    /// Validates and indexes a request. Stack-only on success.
    fn resolve(&self, req: &PlanRequest<'_>) -> Result<Resolved, ServeError> {
        let (device, _) = self
            .registry
            .get(req.device)
            .ok_or_else(|| ServeError::UnknownDevice(req.device.to_string()))?;
        let app = *self
            .app_by_name
            .get(req.app)
            .ok_or_else(|| ServeError::UnknownApp(req.app.to_string()))?;
        if !(req.input_scale > 0.0 && req.input_scale.is_finite()) {
            return Err(ServeError::BadScale(req.input_scale));
        }
        let mut factors = [1.0f64; PuClass::COUNT];
        for &(class, f) in req.fault_history {
            if !(f > 0.0 && f.is_finite()) {
                return Err(ServeError::BadFaultFactor { factor: f });
            }
            // Only slowdowns reschedule; recovery (≤ 1) restores pristine.
            let clamped = f.clamp(1.0, self.cfg.drift.max_factor);
            factors[class.index()] = factors[class.index()].max(clamped);
        }
        Ok(Resolved {
            device,
            app,
            bucket: scale_bucket(req.input_scale),
            factors,
            objective: req.objective,
        })
    }

    /// The allocation-free fast path: cell lookup, drift check, key
    /// derivation, cache probe. `count` selects whether the probe moves
    /// the hit/miss counters.
    fn try_hit(&self, r: &Resolved, count: bool) -> Option<Arc<PlanArtifact>> {
        let cell = {
            let cells = self.cells.read().expect("cells lock");
            match cells.get(&(r.device, r.app, r.bucket)) {
                Some(cell) => Arc::clone(cell),
                None => {
                    if count {
                        self.cache.note_miss();
                    }
                    return None;
                }
            }
        };
        let cell = cell.read().expect("cell lock");
        for c in 0..PuClass::COUNT {
            if cell.class_mask[c]
                && drifted(cell.factors[c], r.factors[c], self.cfg.drift.threshold)
            {
                if count {
                    self.cache.note_miss();
                }
                return None;
            }
        }
        let key = PlanKey::derive(cell.device_hash, cell.app_sig, cell.sig, r.objective.tag());
        if count {
            self.cache.get(key)
        } else {
            self.cache.peek(key)
        }
    }

    /// The cold path: get-or-create the cell, apply drift, solve once for
    /// every objective, answer the requested one.
    fn cold_serve(&self, r: &Resolved) -> Result<PlanResponse, ServeError> {
        let cell = self.cell_for(r)?;
        let mut cell = cell.write().expect("cell lock");
        // Apply drift (the PR 4 rescale loop as invalidation policy).
        if (0..PuClass::COUNT).any(|c| {
            cell.class_mask[c] && drifted(cell.factors[c], r.factors[c], self.cfg.drift.threshold)
        }) {
            let old_sig = cell.sig;
            rescale_cell(&mut cell, r.factors);
            if cell.sig != old_sig {
                self.cache.note_invalidation();
            }
        }
        let key = PlanKey::derive(cell.device_hash, cell.app_sig, cell.sig, r.objective.tag());
        // Another thread (or an earlier group of this batch) may have
        // solved this content while we waited on the lock.
        if let Some(artifact) = self.cache.peek(key) {
            return Ok(PlanResponse {
                artifact,
                from: ServedFrom::ColdSolve,
            });
        }
        let entry = self.registry.entry(r.device);
        let artifact = self.solve_cell(&mut cell, &entry.name, r)?;
        Ok(PlanResponse {
            artifact,
            from: ServedFrom::ColdSolve,
        })
    }

    /// Gets or creates the serving cell for `r`, profiling its table on
    /// first touch.
    fn cell_for(&self, r: &Resolved) -> Result<Arc<RwLock<TableCell>>, ServeError> {
        let key: CellKey = (r.device, r.app, r.bucket);
        if let Some(cell) = self.cells.read().expect("cells lock").get(&key) {
            return Ok(Arc::clone(cell));
        }
        // Build outside the map lock: profiling is the expensive part.
        let scaled = self.scaled_app(r.app, r.bucket);
        let entry = self.registry.entry(r.device);
        let backend = SimBackend::new(entry.spec.clone(), scaled.0.clone())
            .with_profiler(self.cfg.profiler.clone())
            .with_run(self.cfg.run.clone())
            .with_parallel(self.cfg.parallel);
        let base_table = backend.profile(ProfileMode::InterferenceHeavy);
        let sig = json_hash(&base_table);
        let power = PowerModel::default_for(&entry.spec);
        let mut class_mask = [false; PuClass::COUNT];
        for &class in base_table.classes() {
            class_mask[class.index()] = true;
        }
        let cell = TableCell {
            device_hash: entry.hash,
            app_sig: scaled.1,
            table: base_table.clone(),
            base_table,
            class_mask,
            factors: [1.0; PuClass::COUNT],
            sig,
            backend,
            power,
            session: None,
            solve_count: 0,
        };
        let mut cells = self.cells.write().expect("cells lock");
        // A racing thread may have built the cell meanwhile; keep the
        // first (tables are deterministic, so either is correct).
        Ok(Arc::clone(
            cells
                .entry(key)
                .or_insert_with(|| Arc::new(RwLock::new(cell))),
        ))
    }

    /// The scaled app model + signature for (app, half-octave bucket).
    fn scaled_app(&self, app: u32, bucket: i32) -> ScaledApp {
        if let Some(hit) = self.scaled.read().expect("scaled lock").get(&(app, bucket)) {
            return Arc::clone(hit);
        }
        let base = &self.apps[app as usize].model;
        let factor = bucket_factor(bucket);
        let mut model = base.clone();
        if (factor - 1.0).abs() > f64::EPSILON {
            for stage in &mut model.stages {
                stage.work = stage.work.scaled(factor);
            }
        }
        let sig = json_hash(&model);
        let built = Arc::new((model, sig));
        let mut map = self.scaled.write().expect("scaled lock");
        Arc::clone(map.entry((app, bucket)).or_insert(built))
    }

    /// One cold solve for a cell: enumerate candidates, evaluate the top
    /// few over batched DES lanes, rank under **every** objective, cache
    /// each ranking's winner, and return the requested one.
    fn solve_cell(
        &self,
        cell: &mut TableCell,
        device_name: &str,
        r: &Resolved,
    ) -> Result<Arc<PlanArtifact>, ServeError> {
        let spec = self.registry.entry(r.device).spec.clone();
        let schedulable = |c: PuClass| spec.pu(c).map(|p| p.schedulable()).unwrap_or(false);
        let candidates: Vec<Candidate> = match self.cfg.engine {
            SolverEngine::Exact => {
                let cfg = OptimizerConfig {
                    candidates: self.cfg.candidates,
                    objective: Objective::UtilizationFilter { threshold: 0.45 },
                    engine: SolverEngine::Exact,
                    max_chunks: None,
                };
                optimize_with(&cell.table, &cfg, schedulable)?
            }
            SolverEngine::Sat => self.sat_candidates(cell, &schedulable)?,
        };
        let considered = candidates.len();
        let top = &candidates[..considered.min(self.cfg.eval_candidates)];
        let lanes: Vec<u64> = (0..self.cfg.eval_lanes.max(1) as u64).collect();
        let powered = cell.backend.classes();
        let mut ranked: Vec<(usize, f64, f64)> = Vec::with_capacity(top.len());
        for (i, cand) in top.iter().enumerate() {
            let runs = cell.backend.measure_batch(&cand.schedule, &lanes)?;
            let mean_us = runs.iter().map(|m| m.latency.as_f64()).sum::<f64>() / runs.len() as f64;
            let m = &runs[0];
            let classes: Vec<PuClass> = cand.schedule.chunks().iter().map(|c| c.pu).collect();
            let energy = energy_of_window(
                &cell.power,
                m.makespan,
                &m.chunk_utilization,
                m.tasks,
                &classes,
                &powered,
            );
            ranked.push((i, mean_us, energy.per_task_mj));
        }
        let solve_index = cell.solve_count;
        cell.solve_count += 1;
        self.solves.fetch_add(1, Ordering::Relaxed);

        let mut requested: Option<Arc<PlanArtifact>> = None;
        for objective in [PlanObjective::MinLatency, PlanObjective::MinEnergy] {
            let best = ranked
                .iter()
                .min_by(|a, b| match objective {
                    PlanObjective::MinLatency => a.1.total_cmp(&b.1),
                    PlanObjective::MinEnergy => a.2.total_cmp(&b.2),
                })
                .ok_or(ServeError::Core(bt_core::BtError::NoCandidates))?;
            let cand = &top[best.0];
            let key = PlanKey::derive(cell.device_hash, cell.app_sig, cell.sig, objective.tag());
            let artifact = Arc::new(PlanArtifact {
                device: device_name.to_string(),
                app: self.apps[r.app as usize].model.name.clone(),
                scale_bucket: r.bucket,
                objective,
                key_hi: key.hi(),
                key_lo: key.lo(),
                table_sig: cell.sig,
                assignment: cand.schedule.assignment().to_vec(),
                predicted_us: cand.predicted.as_f64(),
                measured_us: best.1,
                energy_per_task_mj: best.2,
                candidates_considered: considered,
                solve_index,
            });
            self.cache.insert(key, Arc::clone(&artifact));
            if objective == r.objective {
                requested = Some(artifact);
            }
        }
        requested.ok_or(ServeError::Core(bt_core::BtError::NoCandidates))
    }

    /// Candidate enumeration on the persistent per-cell CDCL session,
    /// (re)building it only when the table content changed. A warm
    /// session resumes its incremental enumeration — clause database,
    /// learned clauses, and blocking set intact — so repeated solves pay
    /// only for *new* candidates.
    fn sat_candidates(
        &self,
        cell: &mut TableCell,
        schedulable: &dyn Fn(PuClass) -> bool,
    ) -> Result<Vec<Candidate>, ServeError> {
        let rebuild = cell.session.as_ref().map(|s| s.sig) != Some(cell.sig);
        if rebuild {
            let problem = build_problem_masked(&cell.table, schedulable, None)?;
            cell.session = Some(SatSession {
                sig: cell.sig,
                enumerator: problem.into_latency_enumerator(),
                candidates: Vec::new(),
            });
        }
        let session = cell.session.as_mut().expect("session just ensured");
        let classes = cell.table.classes();
        while session.candidates.len() < self.cfg.candidates {
            match session.enumerator.next_candidate() {
                Some((t_max, assignment)) => {
                    let sums = session.enumerator.problem().chunk_sums_of(&assignment);
                    let t_min = sums.iter().cloned().fold(f64::MAX, f64::min);
                    let schedule = bt_pipeline::Schedule::from_class_indices(&assignment, classes)
                        .expect("solver output satisfies contiguity");
                    session.candidates.push(Candidate {
                        schedule,
                        predicted: Micros::new(t_max),
                        gapness: Micros::new(t_max - t_min),
                        chunk_sums: sums.iter().map(|&s| Micros::new(s)).collect(),
                    });
                }
                None => break,
            }
        }
        if session.candidates.is_empty() {
            return Err(ServeError::Core(bt_core::BtError::NoCandidates));
        }
        Ok(session.candidates.clone())
    }
}

/// Whether an observed factor drifted past `threshold` relative to the
/// applied factor (the PR 4 drift predicate, ratio-formed).
fn drifted(applied: f64, observed: f64, threshold: f64) -> bool {
    (observed / applied - 1.0).abs() > threshold
}

/// Applies new per-class factors to a cell: rescale the base table
/// (`scaled_class`, clamped upstream), recompute the content signature.
/// Factors on classes outside the cell's mask are dropped — they cannot
/// influence the plan, so recording them would make the drift check fire
/// without ever changing the table signature.
fn rescale_cell(cell: &mut TableCell, mut factors: [f64; PuClass::COUNT]) {
    let mut table = cell.base_table.clone();
    for class in PuClass::ALL {
        if !cell.class_mask[class.index()] {
            factors[class.index()] = 1.0;
            continue;
        }
        let f = factors[class.index()];
        if (f - 1.0).abs() > f64::EPSILON {
            if let Some(scaled) = table.scaled_class(class, f) {
                table = scaled;
            }
        }
    }
    cell.sig = json_hash(&table);
    cell.table = table;
    cell.factors = factors;
}

/// Quantizes an input scale to a half-octave bucket: `2^(bucket/2)`.
fn scale_bucket(scale: f64) -> i32 {
    (scale.log2() * 2.0).round() as i32
}

/// The representative scale factor of a bucket.
fn bucket_factor(bucket: i32) -> f64 {
    2f64.powf(f64::from(bucket) / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> ServeConfig {
        ServeConfig {
            profiler: ProfilerConfig {
                reps: 3,
                ..ProfilerConfig::default()
            },
            run: RunConfig {
                tasks: 10,
                warmup: 2,
                ..RunConfig::default()
            },
            eval_lanes: 2,
            ..ServeConfig::default()
        }
    }

    fn request<'a>(objective: PlanObjective) -> PlanRequest<'a> {
        PlanRequest {
            device: "pixel_7a",
            app: "octree",
            input_scale: 1.0,
            fault_history: &[],
            objective,
        }
    }

    #[test]
    fn scale_buckets_quantize_half_octaves() {
        assert_eq!(scale_bucket(1.0), 0);
        assert_eq!(scale_bucket(2.0), 2);
        assert_eq!(scale_bucket(0.5), -2);
        assert_eq!(scale_bucket(1.41), 1);
        // Bucket representative factors invert the quantization.
        assert!((bucket_factor(2) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn second_request_hits_cache() {
        let service = PlanService::builtin(quick_cfg());
        let req = request(PlanObjective::MinLatency);
        let cold = service.serve(&req).unwrap();
        assert_eq!(cold.from, ServedFrom::ColdSolve);
        let hit = service.serve(&req).unwrap();
        assert_eq!(hit.from, ServedFrom::Cache);
        assert!(Arc::ptr_eq(&cold.artifact, &hit.artifact));
        let stats = service.stats();
        assert_eq!((stats.hits, stats.misses, stats.solves), (1, 1, 1));
        assert_eq!(stats.plans, 2, "one solve populates both objectives");
    }

    #[test]
    fn objectives_share_one_solve() {
        let service = PlanService::builtin(quick_cfg());
        let a = service.serve(&request(PlanObjective::MinLatency)).unwrap();
        let b = service.serve(&request(PlanObjective::MinEnergy)).unwrap();
        assert_eq!(service.stats().solves, 1);
        assert_eq!(b.from, ServedFrom::Cache);
        assert_eq!(a.artifact.table_sig, b.artifact.table_sig);
    }

    #[test]
    fn energy_plan_never_costs_more_energy() {
        let service = PlanService::builtin(quick_cfg());
        let lat = service.serve(&request(PlanObjective::MinLatency)).unwrap();
        let en = service.serve(&request(PlanObjective::MinEnergy)).unwrap();
        assert!(en.artifact.energy_per_task_mj <= lat.artifact.energy_per_task_mj + 1e-12);
        assert!(lat.artifact.measured_us <= en.artifact.measured_us + 1e-12);
    }

    #[test]
    fn drift_invalidates_then_recovery_restores() {
        let service = PlanService::builtin(quick_cfg());
        let pristine = service.serve(&request(PlanObjective::MinLatency)).unwrap();

        // A big observed slowdown on the big cluster → re-solve.
        let history = [(PuClass::BigCpu, 4.0)];
        let faulted = service
            .serve(&PlanRequest {
                fault_history: &history,
                ..request(PlanObjective::MinLatency)
            })
            .unwrap();
        assert_eq!(faulted.from, ServedFrom::ColdSolve);
        assert_ne!(faulted.artifact.table_sig, pristine.artifact.table_sig);
        let stats = service.stats();
        assert_eq!(stats.invalidations, 1);
        assert_eq!(stats.solves, 2);

        // Recovery: factors return to 1.0 → the cell rescales back to
        // the original table signature, under which the pre-fault plan
        // is still cached — so no third solve runs and the exact
        // pre-fault artifact is served again.
        let recovered = service.serve(&request(PlanObjective::MinLatency)).unwrap();
        assert!(Arc::ptr_eq(&recovered.artifact, &pristine.artifact));
        assert_eq!(service.stats().solves, 2);
        assert_eq!(service.stats().invalidations, 2);

        // And with the cell settled back at 1.0, the next request is a
        // pure allocation-free hit.
        let settled = service.serve(&request(PlanObjective::MinLatency)).unwrap();
        assert_eq!(settled.from, ServedFrom::Cache);
    }

    #[test]
    fn small_drift_stays_on_the_hit_path() {
        let service = PlanService::builtin(quick_cfg());
        service.serve(&request(PlanObjective::MinLatency)).unwrap();
        // 10% observed slowdown < 30% threshold: same cell, same plan.
        let history = [(PuClass::BigCpu, 1.1)];
        let resp = service
            .serve(&PlanRequest {
                fault_history: &history,
                ..request(PlanObjective::MinLatency)
            })
            .unwrap();
        assert_eq!(resp.from, ServedFrom::Cache);
        assert_eq!(service.stats().solves, 1);
    }

    #[test]
    fn batch_groups_misses_onto_one_solve() {
        let service = PlanService::builtin(quick_cfg());
        let reqs: Vec<PlanRequest<'_>> = (0..24)
            .map(|i| {
                request(if i % 2 == 0 {
                    PlanObjective::MinLatency
                } else {
                    PlanObjective::MinEnergy
                })
            })
            .collect();
        let responses = service.serve_batch(&reqs).unwrap();
        assert_eq!(responses.len(), 24);
        assert!(responses.iter().all(|r| r.from == ServedFrom::ColdSolve));
        let stats = service.stats();
        assert_eq!(stats.solves, 1, "24 cold requests, one batched solve");
        assert_eq!(stats.misses, 24);
        // Identical follow-up burst is all hits.
        let again = service.serve_batch(&reqs).unwrap();
        assert!(again.iter().all(|r| r.from == ServedFrom::Cache));
        assert_eq!(service.stats().solves, 1);
    }

    #[test]
    fn input_scale_changes_the_plan_cell() {
        let service = PlanService::builtin(quick_cfg());
        let base = service.serve(&request(PlanObjective::MinLatency)).unwrap();
        let scaled = service
            .serve(&PlanRequest {
                input_scale: 4.0,
                ..request(PlanObjective::MinLatency)
            })
            .unwrap();
        assert_eq!(scaled.from, ServedFrom::ColdSolve);
        assert_ne!(
            (base.artifact.key_hi, base.artifact.key_lo),
            (scaled.artifact.key_hi, scaled.artifact.key_lo)
        );
        assert!(
            scaled.artifact.measured_us > base.artifact.measured_us,
            "4× the work should measure slower"
        );
        assert_eq!(service.stats().cells, 2);
    }

    #[test]
    fn sat_engine_session_is_reused_across_solves() {
        let cfg = ServeConfig {
            engine: SolverEngine::Sat,
            ..quick_cfg()
        };
        let service = PlanService::builtin(cfg);
        let a = service.serve(&request(PlanObjective::MinLatency)).unwrap();
        // Force a second solve of the same cell content: clear plans only.
        service.clear_plans();
        let b = service.serve(&request(PlanObjective::MinLatency)).unwrap();
        assert_eq!(b.from, ServedFrom::ColdSolve);
        assert_eq!(a.artifact.assignment, b.artifact.assignment);
        assert_eq!(service.stats().solves, 2);
    }

    #[test]
    fn unknown_names_and_bad_scales_error() {
        let service = PlanService::builtin(quick_cfg());
        let bad_device = PlanRequest {
            device: "vax_11",
            ..request(PlanObjective::MinLatency)
        };
        assert!(matches!(
            service.serve(&bad_device),
            Err(ServeError::UnknownDevice(_))
        ));
        let bad_scale = PlanRequest {
            input_scale: -1.0,
            ..request(PlanObjective::MinLatency)
        };
        assert!(matches!(
            service.serve(&bad_scale),
            Err(ServeError::BadScale(_))
        ));
        let history = [(PuClass::Gpu, f64::NAN)];
        let bad_factor = PlanRequest {
            fault_history: &history,
            ..request(PlanObjective::MinLatency)
        };
        assert!(matches!(
            service.serve(&bad_factor),
            Err(ServeError::BadFaultFactor { .. })
        ));
    }

    #[test]
    fn artifacts_validate_against_their_backend() {
        let service = PlanService::builtin(quick_cfg());
        let resp = service.serve(&request(PlanObjective::MinLatency)).unwrap();
        let backend = SimBackend::new(
            bt_soc::devices::pixel_7a(),
            bt_kernels::apps::octree_app(bt_kernels::apps::OctreeConfig::default()).model(),
        );
        resp.artifact.validate(&backend).unwrap();
        // And round-trips for replay.
        let json = resp.artifact.to_json();
        let back = PlanArtifact::from_json(&json).unwrap();
        assert_eq!(*resp.artifact, back);
    }
}
