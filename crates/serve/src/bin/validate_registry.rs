//! CI schema gate for the device fleet: every `devices/*.json` must parse
//! as a valid `SocSpec` and be referenced by `devices/registry.json`
//! (exactly once, under a unique name). Exits non-zero on any violation,
//! listing all of them.
//!
//! Usage: `cargo run -p bt-serve --bin validate_registry [-- --dir PATH]`

use std::path::PathBuf;
use std::process::ExitCode;

use bt_serve::registry::validate_dir;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut dir: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--dir" => dir = args.next().map(PathBuf::from),
            other => {
                eprintln!("unknown argument {other:?}; usage: validate_registry [--dir PATH]");
                return ExitCode::FAILURE;
            }
        }
    }
    let dir = dir.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("devices")
    });

    println!("validating device registry at {}", dir.display());
    let report = match validate_dir(&dir) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("FAIL: {e}");
            return ExitCode::FAILURE;
        }
    };
    for (name, file, hash) in &report.checked {
        println!("  ok  {name:<14} {file:<20} content-hash {hash:016x}");
    }
    if report.is_ok() {
        println!("{} device(s) valid", report.checked.len());
        ExitCode::SUCCESS
    } else {
        for err in &report.errors {
            eprintln!("  FAIL {err}");
        }
        eprintln!("{} violation(s)", report.errors.len());
        ExitCode::FAILURE
    }
}
