//! An allocation-counting global allocator, for pinning the
//! allocation-free cache-hit guarantee.
//!
//! Install it in a test binary or benchmark with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: bt_serve::CountingAlloc = bt_serve::CountingAlloc::new();
//! ```
//!
//! then bracket the code under test with [`CountingAlloc::allocations`].
//! Counting is process-global and monotonic; the counter is never reset,
//! so concurrent allocating threads show up as a difference — run the
//! bracketed section single-threaded.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-delegating allocator that counts every allocation and
/// reallocation (deallocations are free of interest here).
#[derive(Debug, Default)]
pub struct CountingAlloc;

impl CountingAlloc {
    /// Creates the allocator (const, for `static` installation).
    pub const fn new() -> CountingAlloc {
        CountingAlloc
    }

    /// Total allocations observed since process start.
    pub fn allocations() -> u64 {
        ALLOCATIONS.load(Ordering::Relaxed)
    }
}

// SAFETY: delegates verbatim to `System`; the counter has no effect on
// allocation behaviour.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}
