//! # bt-serve — scheduling-as-a-service
//!
//! Productionizes the Fig. 2 loop into a long-lived serving layer
//! (ROADMAP item 2): a [`PlanService`] answers
//! `PlanRequest { device, app, input_scale, fault_history, objective }`
//! with a validated deployment plan at high rate, so the
//! millions-of-users case is mostly cache hits.
//!
//! The layers, bottom up:
//!
//! - **Content-addressed plan cache** ([`cache`]): plans are keyed by
//!   *what was solved* — `(SocSpec hash, app signature, profiling-table
//!   signature, objective)` — so two requests share a cached plan exactly
//!   when a cold solve would have produced the same answer for both. The
//!   hit path performs zero heap allocations (pinned by a
//!   `#[global_allocator]` test and the gated `bench_serve` CI row).
//! - **Drift-triggered invalidation**: a request's `fault_history`
//!   (observed per-class slowdown factors) is compared against the
//!   factors baked into the serving cell's table; past the drift
//!   threshold the cell rescales its profiling table (the PR 4
//!   `scaled_class` rescale loop as a cache-*invalidation* policy) and
//!   re-solves. Recovery to factor 1.0 restores the original table
//!   signature, so pre-fault plans come straight back from cache.
//! - **Batched cold-path solving** ([`PlanService::serve_batch`]):
//!   misses are grouped by serving cell; each group is solved once —
//!   one candidate enumeration (optionally one persistent incremental
//!   CDCL session per cell, [`bt_solver::OwnedLatencyEnumerator`]) and
//!   one batched-DES evaluation pass per candidate — and the solve
//!   populates *both* objectives' cache cells, so a burst of N similar
//!   requests costs one solve, not N.
//! - **Fleet registry** ([`registry`]): devices are data —
//!   `devices/registry.json` plus one `SocSpec` JSON per device, schema-
//!   validated in CI — and served plans are serializable
//!   [`PlanArtifact`]s for offline replay.
//!
//! ```
//! use bt_serve::{PlanObjective, PlanRequest, PlanService, ServeConfig};
//!
//! let service = PlanService::builtin(ServeConfig::default());
//! let request = PlanRequest {
//!     device: "pixel_7a",
//!     app: "alexnet-dense",
//!     input_scale: 1.0,
//!     fault_history: &[],
//!     objective: PlanObjective::MinLatency,
//! };
//! let cold = service.serve(&request)?;
//! let hit = service.serve(&request)?;
//! assert_eq!(cold.artifact.assignment, hit.artifact.assignment);
//! assert_eq!(service.stats().hits, 1);
//! # Ok::<(), bt_serve::ServeError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod artifact;
pub mod cache;
pub mod counting;
mod error;
pub mod registry;
mod service;

pub use artifact::{PlanArtifact, PlanObjective};
pub use cache::{CacheStats, PlanCache, PlanKey};
pub use counting::CountingAlloc;
pub use error::ServeError;
pub use registry::{DeviceRegistry, RegistryFile, RegistryRecord, RegistryReport};
pub use service::{PlanRequest, PlanResponse, PlanService, ServeConfig, ServeStats, ServedFrom};
