//! Pins the allocation-free cache-hit guarantee with an instrumented
//! global allocator: once a plan is cached, serving it again performs
//! **zero** heap allocations — the lookup is interned-name map probes,
//! stack-only key mixing, and an `Arc` refcount bump.
//!
//! This file deliberately holds a single test: the allocation counter is
//! process-global, so a concurrently running allocating test would alias
//! into the bracketed section.

use bt_serve::{CountingAlloc, PlanObjective, PlanRequest, PlanService, ServeConfig};
use bt_soc::PuClass;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

#[test]
fn cache_hits_do_not_allocate() {
    let mut cfg = ServeConfig::default();
    cfg.profiler.reps = 3;
    cfg.run.tasks = 10;
    cfg.run.warmup = 2;
    cfg.eval_lanes = 2;
    let service = PlanService::builtin(cfg);

    // Warm: one solve populates both objectives; a benign 10%-drift
    // history exercises the drift comparison on the hit path too.
    let history = [(PuClass::BigCpu, 1.05)];
    let requests = [
        PlanRequest {
            device: "pixel_7a",
            app: "octree",
            input_scale: 1.0,
            fault_history: &[],
            objective: PlanObjective::MinLatency,
        },
        PlanRequest {
            device: "pixel_7a",
            app: "octree",
            input_scale: 1.0,
            fault_history: &history,
            objective: PlanObjective::MinEnergy,
        },
    ];
    for r in &requests {
        service.serve(r).expect("warm solve");
        // Touch the hit path once before measuring so any lazy one-time
        // initialization (lock poisoning flags, TLS) has happened.
        service.serve(r).expect("warm hit");
    }

    let before = CountingAlloc::allocations();
    for _ in 0..1000 {
        for r in &requests {
            let resp = service.serve(r).expect("hit");
            assert_eq!(resp.from, bt_serve::ServedFrom::Cache);
        }
    }
    let allocated = CountingAlloc::allocations() - before;
    assert_eq!(
        allocated, 0,
        "cache-hit path allocated {allocated} times over 2000 hits"
    );
}
