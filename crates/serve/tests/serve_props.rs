//! Property tests for the serving layer:
//!
//! 1. **Hit/cold byte-identity** — for random (device, app, objective,
//!    scale) triples, a warm service's concurrent cache hits serialize
//!    byte-identically to a cold solve of the same request on a fresh
//!    service. The cache can change *when* work happens, never *what* is
//!    answered.
//! 2. **Drift re-solves** — a drift-triggered invalidation must re-solve
//!    against the rescaled table rather than serve the stale plan, and
//!    the stale artifact must be content-unreachable under the new
//!    signature.

use std::sync::Arc;

use bt_serve::{PlanObjective, PlanRequest, PlanService, ServeConfig};
use bt_soc::PuClass;
use proptest::prelude::*;

const DEVICES: [&str; 4] = [
    "pixel_7a",
    "oneplus_11",
    "jetson_orin_nano",
    "jetson_orin_nano_lp",
];
const APPS: [&str; 3] = ["octree", "alexnet-dense", "alexnet-sparse"];
const SCALES: [f64; 3] = [0.5, 1.0, 2.0];

/// Cheap-but-real service config (small profiling reps, short DES runs)
/// so each proptest case stays in the low milliseconds.
fn quick_cfg() -> ServeConfig {
    let mut cfg = ServeConfig::default();
    cfg.profiler.reps = 3;
    cfg.run.tasks = 10;
    cfg.run.warmup = 2;
    cfg.eval_lanes = 2;
    cfg
}

fn spec_for(name: &str) -> bt_soc::SocSpec {
    match name {
        "pixel_7a" => bt_soc::devices::pixel_7a(),
        "oneplus_11" => bt_soc::devices::oneplus_11(),
        "jetson_orin_nano" => bt_soc::devices::jetson_orin_nano(),
        "jetson_orin_nano_lp" => bt_soc::devices::jetson_orin_nano_lp(),
        other => panic!("unknown test device {other}"),
    }
}

fn objective(bit: bool) -> PlanObjective {
    if bit {
        PlanObjective::MinLatency
    } else {
        PlanObjective::MinEnergy
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn concurrent_hits_are_byte_identical_to_a_cold_solve(
        device_idx in 0..DEVICES.len(),
        app_idx in 0..APPS.len(),
        scale_idx in 0..SCALES.len(),
        objective_bit in any::<bool>(),
    ) {
        let request = PlanRequest {
            device: DEVICES[device_idx],
            app: APPS[app_idx],
            input_scale: SCALES[scale_idx],
            fault_history: &[],
            objective: objective(objective_bit),
        };

        // Fresh service, one cold solve: the reference bytes.
        let reference = PlanService::builtin(quick_cfg())
            .serve(&request).unwrap()
            .artifact
            .to_json();

        // Warm service: solve once, then hammer it from several threads.
        let warm = PlanService::builtin(quick_cfg());
        warm.serve(&request).unwrap();
        let served: Vec<String> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let warm = &warm;
                    let request = &request;
                    scope.spawn(move || {
                        (0..8)
                            .map(|_| warm.serve(request).unwrap().artifact.to_json())
                            .collect::<Vec<String>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        prop_assert_eq!(warm.stats().solves, 1, "hits must never re-solve");
        for bytes in served {
            prop_assert_eq!(&bytes, &reference);
        }
    }

    #[test]
    fn drift_resolves_rather_than_serving_stale(
        device_idx in 0..DEVICES.len(),
        app_idx in 0..APPS.len(),
        factor in 2.0f64..8.0,
        class_idx in 0..PuClass::COUNT,
    ) {
        // Drift on a class the device cannot schedule is (by design) a
        // no-op, so pick from the classes this device actually prices.
        let schedulable = spec_for(DEVICES[device_idx]).schedulable_classes();
        let class = schedulable[class_idx % schedulable.len()];
        let base = PlanRequest {
            device: DEVICES[device_idx],
            app: APPS[app_idx],
            input_scale: 1.0,
            fault_history: &[],
            objective: PlanObjective::MinLatency,
        };
        let service = PlanService::builtin(quick_cfg());
        let pristine = service.serve(&base).unwrap();

        let history = [(class, factor)];
        let drifted = service.serve(&PlanRequest { fault_history: &history, ..base }).unwrap();

        // The invalidation re-solved against a rescaled table: new
        // signature, new cache key, one more solve, one recorded
        // invalidation — never the stale artifact verbatim.
        let stats = service.stats();
        prop_assert_eq!(stats.solves, 2);
        prop_assert_eq!(stats.invalidations, 1);
        prop_assert_ne!(drifted.artifact.table_sig, pristine.artifact.table_sig);
        prop_assert_ne!(
            (drifted.artifact.key_hi, drifted.artifact.key_lo),
            (pristine.artifact.key_hi, pristine.artifact.key_lo)
        );
        prop_assert!(!Arc::ptr_eq(&drifted.artifact, &pristine.artifact));

        // Serving the drifted history again is a cache hit on the new
        // cell — the re-solve is remembered, not repeated.
        let again = service.serve(&PlanRequest { fault_history: &history, ..base }).unwrap();
        prop_assert_eq!(service.stats().solves, 2);
        prop_assert!(Arc::ptr_eq(&again.artifact, &drifted.artifact));
    }
}
