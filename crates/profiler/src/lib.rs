//! # bt-profiler — the BT-Profiler (§3.2 of the paper)
//!
//! Black-box, per-(stage, PU) latency measurement producing the 2-D
//! [`ProfilingTable`] that drives schedule optimization, under two modes:
//!
//! - [`ProfileMode::Isolated`] — the prior-work methodology: each stage
//!   measured alone on its PU. Compositions of these numbers mispredict
//!   loaded-system behaviour on edge SoCs (§1, Fig. 5c).
//! - [`ProfileMode::InterferenceHeavy`] — BetterTogether's contribution:
//!   while a stage is measured on one PU, every other PU concurrently runs
//!   the same computation, emulating intra-application interference.
//!
//! [`profile`] runs the protocol against the simulated devices of
//! [`bt_soc`]; [`host::profile_host`] runs the *same protocol* against real
//! kernels on the development machine with wall-clock timers.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod host;
mod profiler;
mod table;

pub use profiler::{profile, profile_by_throughput, profiling_cost, ProfilerConfig};
pub use table::{ProfileMode, ProfilingTable, TableError};
