use bt_soc::{Micros, PuClass};
use serde::{Deserialize, Serialize};

/// The two profiling modes of BT-Profiler (§3.2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProfileMode {
    /// Each stage runs alone on its PU — the methodology of prior work,
    /// whose compositions mispredict loaded-system behaviour.
    Isolated,
    /// While a stage is measured on one PU, every other PU concurrently
    /// executes the same computation, emulating realistic intra-application
    /// interference.
    InterferenceHeavy,
}

impl ProfileMode {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            ProfileMode::Isolated => "isolated",
            ProfileMode::InterferenceHeavy => "interference",
        }
    }
}

impl std::fmt::Display for ProfileMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Why a [`ProfilingTable`] could not be constructed.
///
/// Non-finite entries are the dangerous case: a NaN latency smuggled into
/// the optimizer used to surface only as a panic deep inside a sort, so the
/// table now rejects it at the boundary where the bad measurement is still
/// attributable to a (stage, class) cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableError {
    /// The latency matrix has a different row count than the stage labels.
    RowCountMismatch {
        /// Rows in the latency matrix.
        rows: usize,
        /// Stage labels supplied.
        stages: usize,
    },
    /// A latency row has a different column count than the class labels.
    ColumnCountMismatch {
        /// The offending row.
        row: usize,
        /// Columns in that row.
        cols: usize,
        /// Class labels supplied.
        classes: usize,
    },
    /// A latency (or spread) entry is NaN or infinite.
    NonFiniteEntry {
        /// Row (stage index) of the offending cell.
        row: usize,
        /// Column (class index) of the offending cell.
        col: usize,
    },
}

impl std::fmt::Display for TableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TableError::RowCountMismatch { rows, stages } => {
                write!(f, "row count mismatch: {rows} rows for {stages} stages")
            }
            TableError::ColumnCountMismatch { row, cols, classes } => {
                write!(
                    f,
                    "column count mismatch: row {row} has {cols} columns for {classes} classes"
                )
            }
            TableError::NonFiniteEntry { row, col } => {
                write!(f, "non-finite latency at stage {row}, class column {col}")
            }
        }
    }
}

impl std::error::Error for TableError {}

/// The 2-D profiling table of §3.2: rows are stages, columns are PU
/// classes, entries are mean measured latencies.
///
/// ```
/// use bt_profiler::{ProfilingTable, ProfileMode};
/// use bt_soc::{Micros, PuClass};
///
/// let table = ProfilingTable::new(
///     "app", "device", ProfileMode::Isolated,
///     vec!["s0".into()],
///     vec![PuClass::BigCpu],
///     vec![vec![Micros::new(10.0)]],
/// );
/// assert_eq!(table.latency(0, PuClass::BigCpu).unwrap().as_f64(), 10.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfilingTable {
    app: String,
    device: String,
    mode: ProfileMode,
    stages: Vec<String>,
    classes: Vec<PuClass>,
    latency: Vec<Vec<Micros>>,
    #[serde(default)]
    spread: Option<Vec<Vec<Micros>>>,
}

impl ProfilingTable {
    /// Builds a table. `latency[row][col]` pairs `stages[row]` with
    /// `classes[col]`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix shape disagrees with the labels or any entry
    /// is non-finite; use [`try_new`](ProfilingTable::try_new) for a typed
    /// error instead.
    pub fn new(
        app: impl Into<String>,
        device: impl Into<String>,
        mode: ProfileMode,
        stages: Vec<String>,
        classes: Vec<PuClass>,
        latency: Vec<Vec<Micros>>,
    ) -> ProfilingTable {
        match ProfilingTable::try_new(app, device, mode, stages, classes, latency) {
            Ok(t) => t,
            Err(e @ TableError::RowCountMismatch { .. }) => panic!("row count mismatch: {e}"),
            Err(e @ TableError::ColumnCountMismatch { .. }) => {
                panic!("column count mismatch: {e}")
            }
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible constructor: validates the matrix shape against the labels
    /// and every entry for finiteness.
    ///
    /// # Errors
    ///
    /// Returns a [`TableError`] naming the offending row/cell.
    pub fn try_new(
        app: impl Into<String>,
        device: impl Into<String>,
        mode: ProfileMode,
        stages: Vec<String>,
        classes: Vec<PuClass>,
        latency: Vec<Vec<Micros>>,
    ) -> Result<ProfilingTable, TableError> {
        if latency.len() != stages.len() {
            return Err(TableError::RowCountMismatch {
                rows: latency.len(),
                stages: stages.len(),
            });
        }
        for (row, r) in latency.iter().enumerate() {
            if r.len() != classes.len() {
                return Err(TableError::ColumnCountMismatch {
                    row,
                    cols: r.len(),
                    classes: classes.len(),
                });
            }
            for (col, v) in r.iter().enumerate() {
                if !v.as_f64().is_finite() {
                    return Err(TableError::NonFiniteEntry { row, col });
                }
            }
        }
        Ok(ProfilingTable {
            app: app.into(),
            device: device.into(),
            mode,
            stages,
            classes,
            latency,
            spread: None,
        })
    }

    /// Attaches per-cell measurement spread (standard deviation across the
    /// repetitions), same shape as the latency matrix.
    ///
    /// # Panics
    ///
    /// Panics if the shape disagrees with the latency matrix.
    pub fn with_spread(mut self, spread: Vec<Vec<Micros>>) -> ProfilingTable {
        assert_eq!(spread.len(), self.latency.len(), "row count mismatch");
        assert!(
            spread
                .iter()
                .zip(&self.latency)
                .all(|(s, l)| s.len() == l.len()),
            "column count mismatch"
        );
        self.spread = Some(spread);
        self
    }

    /// Standard deviation of stage `stage` on `class` across the profiling
    /// repetitions, if spread data was recorded.
    pub fn latency_spread(&self, stage: usize, class: PuClass) -> Option<Micros> {
        let col = self.classes.iter().position(|&c| c == class)?;
        self.spread.as_ref()?.get(stage).map(|row| row[col])
    }

    /// Element-wise ratio of this table over `baseline`
    /// (`self / baseline`), the quantity of the paper's Fig. 7 when `self`
    /// is interference-heavy and `baseline` is isolated.
    ///
    /// Returns `None` if the tables' shapes or labels disagree.
    pub fn ratio_over(&self, baseline: &ProfilingTable) -> Option<Vec<Vec<f64>>> {
        if self.stages != baseline.stages || self.classes != baseline.classes {
            return None;
        }
        Some(
            self.latency
                .iter()
                .zip(&baseline.latency)
                .map(|(a, b)| {
                    a.iter()
                        .zip(b)
                        .map(|(x, y)| x.as_f64() / y.as_f64())
                        .collect()
                })
                .collect(),
        )
    }

    /// The profiled application's name.
    pub fn app(&self) -> &str {
        &self.app
    }

    /// The profiled device's name.
    pub fn device(&self) -> &str {
        &self.device
    }

    /// Which profiling mode produced this table.
    pub fn mode(&self) -> ProfileMode {
        self.mode
    }

    /// Stage names (row labels).
    pub fn stages(&self) -> &[String] {
        &self.stages
    }

    /// PU classes (column labels).
    pub fn classes(&self) -> &[PuClass] {
        &self.classes
    }

    /// Mean latency of stage `stage` on `class`, if profiled.
    pub fn latency(&self, stage: usize, class: PuClass) -> Option<Micros> {
        let col = self.classes.iter().position(|&c| c == class)?;
        self.latency.get(stage).map(|row| row[col])
    }

    /// The whole row of stage `stage` in class-column order.
    pub fn row(&self, stage: usize) -> &[Micros] {
        &self.latency[stage]
    }

    /// The table as a dense `stages × classes` matrix of microseconds —
    /// the exact input shape of the schedule optimizer.
    pub fn to_matrix(&self) -> Vec<Vec<f64>> {
        self.latency
            .iter()
            .map(|row| row.iter().map(|m| m.as_f64()).collect())
            .collect()
    }

    /// Returns a copy with every latency in `class`'s column multiplied by
    /// `factor` — the drift-correction primitive of the re-optimization
    /// loop: an observed slowdown on one cluster rescales its predicted
    /// costs without re-profiling. Spread (when recorded) scales by the
    /// same factor, since a multiplicative throttle stretches the whole
    /// distribution.
    ///
    /// Returns `None` if `class` is not a column of this table or `factor`
    /// is not finite and positive.
    pub fn scaled_class(&self, class: PuClass, factor: f64) -> Option<ProfilingTable> {
        if !(factor.is_finite() && factor > 0.0) {
            return None;
        }
        let col = self.classes.iter().position(|&c| c == class)?;
        let mut out = self.clone();
        for row in &mut out.latency {
            row[col] = Micros::new(row[col].as_f64() * factor);
        }
        if let Some(spread) = &mut out.spread {
            for row in spread {
                row[col] = Micros::new(row[col].as_f64() * factor);
            }
        }
        Some(out)
    }

    /// Sum of all entries — proportional to the wall-clock cost of
    /// collecting the table (the paper reports ≈6 min per device per app).
    pub fn total_profiled_time(&self) -> Micros {
        self.latency
            .iter()
            .flat_map(|row| row.iter().copied())
            .sum()
    }

    /// Renders an aligned text table for reports.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{} on {} ({} mode)\n",
            self.app, self.device, self.mode
        ));
        out.push_str(&format!("{:>14}", "stage"));
        for c in &self.classes {
            out.push_str(&format!("{:>12}", c.label()));
        }
        out.push('\n');
        for (i, name) in self.stages.iter().enumerate() {
            out.push_str(&format!("{name:>14}"));
            for t in &self.latency[i] {
                out.push_str(&format!("{:>12}", format!("{:.1}µs", t.as_f64())));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> ProfilingTable {
        ProfilingTable::new(
            "octree",
            "pixel",
            ProfileMode::InterferenceHeavy,
            vec!["morton".into(), "sort".into()],
            vec![PuClass::BigCpu, PuClass::Gpu],
            vec![
                vec![Micros::new(100.0), Micros::new(50.0)],
                vec![Micros::new(200.0), Micros::new(900.0)],
            ],
        )
    }

    #[test]
    fn lookup_by_class() {
        let t = table();
        assert_eq!(t.latency(1, PuClass::Gpu).unwrap().as_f64(), 900.0);
        assert_eq!(t.latency(0, PuClass::LittleCpu), None);
    }

    #[test]
    fn matrix_round_trip() {
        let t = table();
        let m = t.to_matrix();
        assert_eq!(m, vec![vec![100.0, 50.0], vec![200.0, 900.0]]);
    }

    #[test]
    fn total_time() {
        assert_eq!(table().total_profiled_time().as_f64(), 1250.0);
    }

    #[test]
    fn render_contains_labels() {
        let s = table().render();
        assert!(s.contains("morton"));
        assert!(s.contains("big"));
        assert!(s.contains("interference"));
    }

    #[test]
    fn spread_and_ratio() {
        let heavy = table();
        let iso = ProfilingTable::new(
            "octree",
            "pixel",
            ProfileMode::Isolated,
            vec!["morton".into(), "sort".into()],
            vec![PuClass::BigCpu, PuClass::Gpu],
            vec![
                vec![Micros::new(50.0), Micros::new(100.0)],
                vec![Micros::new(100.0), Micros::new(900.0)],
            ],
        );
        let ratios = heavy.ratio_over(&iso).expect("same shape");
        assert!((ratios[0][0] - 2.0).abs() < 1e-12);
        assert!((ratios[0][1] - 0.5).abs() < 1e-12);
        assert!((ratios[1][1] - 1.0).abs() < 1e-12);

        let with = iso.clone().with_spread(vec![
            vec![Micros::new(1.0), Micros::new(2.0)],
            vec![Micros::new(3.0), Micros::new(4.0)],
        ]);
        assert_eq!(with.latency_spread(1, PuClass::Gpu).unwrap().as_f64(), 4.0);
        assert_eq!(heavy.latency_spread(0, PuClass::BigCpu), None);
    }

    #[test]
    fn ratio_requires_matching_labels() {
        let a = table();
        let b = ProfilingTable::new(
            "other",
            "pixel",
            ProfileMode::Isolated,
            vec!["x".into()],
            vec![PuClass::BigCpu],
            vec![vec![Micros::new(1.0)]],
        );
        assert!(a.ratio_over(&b).is_none());
    }

    #[test]
    fn scaled_class_rescales_one_column() {
        let t = table().with_spread(vec![
            vec![Micros::new(1.0), Micros::new(2.0)],
            vec![Micros::new(3.0), Micros::new(4.0)],
        ]);
        let s = t.scaled_class(PuClass::BigCpu, 2.0).expect("column exists");
        assert_eq!(s.latency(0, PuClass::BigCpu).unwrap().as_f64(), 200.0);
        assert_eq!(s.latency(1, PuClass::BigCpu).unwrap().as_f64(), 400.0);
        // Other columns untouched.
        assert_eq!(s.latency(0, PuClass::Gpu).unwrap().as_f64(), 50.0);
        // Spread scales with the same factor.
        assert_eq!(s.latency_spread(1, PuClass::BigCpu).unwrap().as_f64(), 6.0);
        assert_eq!(s.latency_spread(1, PuClass::Gpu).unwrap().as_f64(), 4.0);
        // Missing column and degenerate factors are rejected.
        assert!(t.scaled_class(PuClass::LittleCpu, 2.0).is_none());
        assert!(t.scaled_class(PuClass::BigCpu, 0.0).is_none());
        assert!(t.scaled_class(PuClass::BigCpu, f64::NAN).is_none());
    }

    #[test]
    fn non_finite_entries_rejected_with_typed_error() {
        // NaN is already rejected by `Micros::new`, but infinities (and
        // NaNs arriving through serde) reach the table constructor.
        for bad in [f64::INFINITY, f64::NEG_INFINITY] {
            let err = ProfilingTable::try_new(
                "a",
                "d",
                ProfileMode::Isolated,
                vec!["s0".into(), "s1".into()],
                vec![PuClass::BigCpu, PuClass::Gpu],
                vec![
                    vec![Micros::new(1.0), Micros::new(2.0)],
                    vec![Micros::new(3.0), Micros::new(bad)],
                ],
            )
            .expect_err("non-finite entry must be rejected");
            assert_eq!(err, TableError::NonFiniteEntry { row: 1, col: 1 });
            assert!(err.to_string().contains("non-finite"));
        }
    }

    #[test]
    fn try_new_reports_shape_mismatches() {
        let err = ProfilingTable::try_new(
            "a",
            "d",
            ProfileMode::Isolated,
            vec!["s".into()],
            vec![PuClass::Gpu],
            vec![],
        )
        .expect_err("row mismatch");
        assert_eq!(err, TableError::RowCountMismatch { rows: 0, stages: 1 });
        let err = ProfilingTable::try_new(
            "a",
            "d",
            ProfileMode::Isolated,
            vec!["s".into()],
            vec![PuClass::Gpu],
            vec![vec![]],
        )
        .expect_err("column mismatch");
        assert!(matches!(
            err,
            TableError::ColumnCountMismatch { row: 0, .. }
        ));
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn new_panics_on_infinite_entry() {
        let _ = ProfilingTable::new(
            "a",
            "d",
            ProfileMode::Isolated,
            vec!["s".into()],
            vec![PuClass::Gpu],
            vec![vec![Micros::new(f64::INFINITY)]],
        );
    }

    #[test]
    #[should_panic(expected = "row count")]
    fn shape_validated() {
        let _ = ProfilingTable::new(
            "a",
            "d",
            ProfileMode::Isolated,
            vec!["s".into()],
            vec![PuClass::Gpu],
            vec![],
        );
    }
}
