//! BT-Profiler (§3.2 of the paper): black-box, per-(stage, PU) latency
//! measurement on the simulated device, in isolated or interference-heavy
//! mode.
//!
//! In interference-heavy mode, while stage `s` is measured on PU `p`, every
//! other PU concurrently executes the same computation — exactly the
//! paper's controlled-background-load protocol. Each measurement is
//! repeated (30× by default) and the mean recorded.

use bt_kernels::AppModel;
use bt_soc::cost::{self, LoadContext};
use bt_soc::{seed_from_labels, ActiveKernel, Micros, NoiseModel, PuClass, SocSpec, WorkProfile};

use crate::{ProfileMode, ProfilingTable};

/// Configuration of a profiling run.
#[derive(Debug, Clone)]
pub struct ProfilerConfig {
    /// Repetitions per (stage, PU) cell; the paper uses 30.
    pub reps: u32,
    /// Log-scale sigma of simulated measurement noise.
    pub noise_sigma: f64,
    /// Base seed; each cell derives its own reproducible noise stream.
    pub seed: u64,
    /// Fill table rows (stages) concurrently. Safe on the simulated
    /// substrate because every cell seeds its own noise stream from its
    /// labels — rows are independent, and the merge preserves stage order,
    /// so the table is byte-identical to a serial fill.
    pub parallel: bool,
}

impl Default for ProfilerConfig {
    fn default() -> ProfilerConfig {
        ProfilerConfig {
            reps: 30,
            noise_sigma: 0.02,
            seed: 0,
            parallel: true,
        }
    }
}

/// Maps `f` over `0..n` across scoped worker threads, returning results in
/// index order (byte-identical to a serial map). Falls back to the serial
/// path on single-core hosts or single-row tables.
fn fan_rows<T: Send>(n: usize, parallel: bool, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if !parallel || workers <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let per_worker: Vec<Vec<(usize, T)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        out.push((i, f(i)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("profiler worker panicked"))
            .collect()
    });
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for chunk in per_worker {
        for (i, v) in chunk {
            slots[i] = Some(v);
        }
    }
    slots
        .into_iter()
        .map(|v| v.expect("work counter covers every index"))
        .collect()
}

/// The load context a cell is measured under: isolated, or with every other
/// PU running the same work (§3.2).
fn cell_context(
    soc: &SocSpec,
    work: &WorkProfile,
    class: PuClass,
    mode: ProfileMode,
) -> LoadContext {
    match mode {
        ProfileMode::Isolated => LoadContext::isolated(),
        ProfileMode::InterferenceHeavy => {
            let co: Vec<ActiveKernel> = soc
                .pus()
                .filter(|(c, _)| *c != class)
                .map(|(c, spec)| ActiveKernel::new(c, cost::bw_demand(work, spec)))
                .collect();
            LoadContext::with_co_runners(co)
        }
    }
}

/// Profiles every stage of `app` on every PU class of `soc` under `mode`,
/// producing the paper's 2-D profiling table.
///
/// ```
/// use bt_profiler::{profile, ProfileMode, ProfilerConfig};
/// use bt_kernels::apps;
/// use bt_soc::devices;
///
/// let app = apps::octree_app(apps::OctreeConfig::default()).model();
/// let soc = devices::pixel_7a();
/// let table = profile(&soc, &app, ProfileMode::InterferenceHeavy, &ProfilerConfig::default());
/// assert_eq!(table.stages().len(), 7);
/// assert_eq!(table.classes().len(), 4);
/// ```
pub fn profile(
    soc: &SocSpec,
    app: &AppModel,
    mode: ProfileMode,
    cfg: &ProfilerConfig,
) -> ProfilingTable {
    let classes = soc.classes();
    // Rows are independent (per-cell seeded noise), so fill them across
    // worker threads and merge in stage order.
    let rows: Vec<(Vec<Micros>, Vec<Micros>)> =
        fan_rows(app.stage_count(), cfg.parallel, |stage_idx| {
            let stage = &app.stages[stage_idx];
            let mut row = Vec::with_capacity(classes.len());
            let mut srow = Vec::with_capacity(classes.len());
            for &class in &classes {
                let pu = soc.pu(class).expect("classes() only returns present PUs");
                let ctx = cell_context(soc, &stage.work, class, mode);
                let seed = seed_from_labels(
                    &[
                        soc.name(),
                        &app.name,
                        &stage.name,
                        class.label(),
                        mode.label(),
                    ],
                    cfg.seed,
                );
                let mut noise = NoiseModel::new(cfg.noise_sigma, seed);
                let base = cost::latency(&stage.work, pu, soc, &ctx);
                let reps = cfg.reps.max(1);
                // Streaming Welford accumulation: one pass, no sample
                // buffer; variance is the population form (÷ reps), as
                // before.
                let mut mean = 0.0;
                let mut m2 = 0.0;
                for k in 1..=reps {
                    let x = base.as_f64() * noise.factor();
                    let d = x - mean;
                    mean += d / k as f64;
                    m2 += d * (x - mean);
                }
                let var = m2 / reps as f64;
                row.push(Micros::new(mean));
                srow.push(Micros::new(var.sqrt()));
            }
            (row, srow)
        });
    let mut latency = Vec::with_capacity(app.stage_count());
    let mut spread = Vec::with_capacity(app.stage_count());
    for (row, srow) in rows {
        latency.push(row);
        spread.push(srow);
    }
    ProfilingTable::new(
        &app.name,
        soc.name(),
        mode,
        app.stages.iter().map(|s| s.name.clone()).collect(),
        classes,
        latency,
    )
    .with_spread(spread)
}

/// Profiles via the paper's literal throughput method (§3.2): each cell
/// runs the stage back-to-back for a fixed virtual `window` and records
/// `window / completions` as the latency. Converges to [`profile`]'s
/// mean-of-reps as the window grows; kept as a faithful alternative and a
/// consistency check.
pub fn profile_by_throughput(
    soc: &SocSpec,
    app: &AppModel,
    mode: ProfileMode,
    cfg: &ProfilerConfig,
    window: Micros,
) -> ProfilingTable {
    assert!(window.as_f64() > 0.0, "window must be positive");
    let classes = soc.classes();
    let mut latency = Vec::with_capacity(app.stage_count());
    for stage in &app.stages {
        let mut row = Vec::with_capacity(classes.len());
        for &class in &classes {
            let pu = soc.pu(class).expect("classes() only returns present PUs");
            let ctx = cell_context(soc, &stage.work, class, mode);
            let seed = seed_from_labels(
                &[
                    soc.name(),
                    &app.name,
                    &stage.name,
                    class.label(),
                    mode.label(),
                    "throughput",
                ],
                cfg.seed,
            );
            let mut noise = NoiseModel::new(cfg.noise_sigma, seed);
            let base = cost::latency(&stage.work, pu, soc, &ctx);
            // Count completions within the window; the final partial
            // execution does not count (black-box completion counting).
            let mut elapsed = 0.0;
            let mut completions = 0u64;
            while elapsed < window.as_f64() {
                let dt = base.as_f64() * noise.factor();
                if elapsed + dt > window.as_f64() {
                    break;
                }
                elapsed += dt;
                completions += 1;
            }
            let cell = if completions == 0 {
                // Stage longer than the window: fall back to one sample.
                base.as_f64() * noise.factor()
            } else {
                elapsed / completions as f64
            };
            row.push(Micros::new(cell));
        }
        latency.push(row);
    }
    ProfilingTable::new(
        &app.name,
        soc.name(),
        mode,
        app.stages.iter().map(|s| s.name.clone()).collect(),
        classes,
        latency,
    )
}

/// Wall-clock cost of collecting a table with `cfg`: every cell is measured
/// `reps` times under its context (the paper reports ≈6 minutes per device
/// per application at paper-scale inputs).
pub fn profiling_cost(
    soc: &SocSpec,
    app: &AppModel,
    mode: ProfileMode,
    cfg: &ProfilerConfig,
) -> Micros {
    let mut total = Micros::ZERO;
    for stage in &app.stages {
        for (class, pu) in soc.pus() {
            let ctx = cell_context(soc, &stage.work, class, mode);
            total += cost::latency(&stage.work, pu, soc, &ctx) * cfg.reps.max(1) as f64;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_kernels::apps;
    use bt_soc::devices;

    fn octree_model() -> AppModel {
        apps::octree_app(apps::OctreeConfig::default()).model()
    }

    #[test]
    fn table_shape_matches_app_and_device() {
        let soc = devices::jetson_orin_nano();
        let table = profile(
            &soc,
            &octree_model(),
            ProfileMode::Isolated,
            &ProfilerConfig::default(),
        );
        assert_eq!(table.stages().len(), 7);
        assert_eq!(table.classes(), &[PuClass::BigCpu, PuClass::Gpu]);
        assert_eq!(table.device(), "Jetson Orin Nano");
    }

    #[test]
    fn deterministic_per_seed() {
        let soc = devices::pixel_7a();
        let cfg = ProfilerConfig::default();
        let a = profile(&soc, &octree_model(), ProfileMode::Isolated, &cfg);
        let b = profile(&soc, &octree_model(), ProfileMode::Isolated, &cfg);
        assert_eq!(a, b);
        let cfg2 = ProfilerConfig { seed: 99, ..cfg };
        let c = profile(&soc, &octree_model(), ProfileMode::Isolated, &cfg2);
        assert_ne!(a, c);
    }

    #[test]
    fn interference_slows_cpus_on_pixel() {
        // Pixel CPU clusters slow down under load (Fig. 7); the table must
        // reflect it.
        let soc = devices::pixel_7a();
        let cfg = ProfilerConfig {
            noise_sigma: 0.0,
            ..ProfilerConfig::default()
        };
        let iso = profile(&soc, &octree_model(), ProfileMode::Isolated, &cfg);
        let heavy = profile(&soc, &octree_model(), ProfileMode::InterferenceHeavy, &cfg);
        for stage in 0..7 {
            for class in [PuClass::BigCpu, PuClass::MediumCpu, PuClass::LittleCpu] {
                let i = iso.latency(stage, class).unwrap().as_f64();
                let h = heavy.latency(stage, class).unwrap().as_f64();
                assert!(h > i, "stage {stage} on {class}: {h} ≤ {i}");
            }
        }
    }

    #[test]
    fn interference_speeds_up_pixel_gpu() {
        // The Mali GPU boosts under CPU load (Fig. 7: 0.86×).
        let soc = devices::pixel_7a();
        let cfg = ProfilerConfig {
            noise_sigma: 0.0,
            ..ProfilerConfig::default()
        };
        let iso = profile(&soc, &octree_model(), ProfileMode::Isolated, &cfg);
        let heavy = profile(&soc, &octree_model(), ProfileMode::InterferenceHeavy, &cfg);
        let mut speedups = 0;
        for stage in 0..7 {
            let i = iso.latency(stage, PuClass::Gpu).unwrap().as_f64();
            let h = heavy.latency(stage, PuClass::Gpu).unwrap().as_f64();
            if h < i {
                speedups += 1;
            }
        }
        assert!(
            speedups >= 5,
            "GPU should usually speed up, got {speedups}/7"
        );
    }

    #[test]
    fn reps_reduce_noise() {
        let soc = devices::pixel_7a();
        let app = octree_model();
        let noisy = ProfilerConfig {
            reps: 1,
            noise_sigma: 0.2,
            seed: 3,
            ..ProfilerConfig::default()
        };
        let averaged = ProfilerConfig {
            reps: 200,
            noise_sigma: 0.2,
            seed: 3,
            ..ProfilerConfig::default()
        };
        let exact = ProfilerConfig {
            reps: 1,
            noise_sigma: 0.0,
            seed: 3,
            ..ProfilerConfig::default()
        };
        let t_noisy = profile(&soc, &app, ProfileMode::Isolated, &noisy);
        let t_avg = profile(&soc, &app, ProfileMode::Isolated, &averaged);
        let t_exact = profile(&soc, &app, ProfileMode::Isolated, &exact);
        // Averaged cells are closer to the true value than single-shot, in
        // aggregate.
        let err = |t: &ProfilingTable| -> f64 {
            (0..7)
                .map(|s| {
                    let a = t.latency(s, PuClass::BigCpu).unwrap().as_f64();
                    let e = t_exact.latency(s, PuClass::BigCpu).unwrap().as_f64();
                    ((a - e) / e).abs()
                })
                .sum()
        };
        assert!(err(&t_avg) < err(&t_noisy));
    }

    #[test]
    fn parallel_fill_is_identical_to_serial() {
        let soc = devices::pixel_7a();
        let app = octree_model();
        let par = ProfilerConfig {
            noise_sigma: 0.1,
            seed: 7,
            ..ProfilerConfig::default()
        };
        let ser = ProfilerConfig {
            parallel: false,
            ..par.clone()
        };
        for mode in [ProfileMode::Isolated, ProfileMode::InterferenceHeavy] {
            assert_eq!(
                profile(&soc, &app, mode, &par),
                profile(&soc, &app, mode, &ser)
            );
        }
    }

    #[test]
    fn welford_spread_matches_two_pass_formula() {
        // Regression against the pre-streaming implementation: rebuild each
        // cell's sample stream from its (labels, seed) noise model and
        // compute mean/σ with the old collect-then-two-pass formulas.
        let soc = devices::pixel_7a();
        let app = octree_model();
        let cfg = ProfilerConfig {
            noise_sigma: 0.15,
            seed: 21,
            ..ProfilerConfig::default()
        };
        let mode = ProfileMode::InterferenceHeavy;
        let table = profile(&soc, &app, mode, &cfg);
        for (s, stage) in app.stages.iter().enumerate() {
            for &class in table.classes() {
                let pu = soc.pu(class).unwrap();
                let ctx = cell_context(&soc, &stage.work, class, mode);
                let seed = seed_from_labels(
                    &[
                        soc.name(),
                        &app.name,
                        &stage.name,
                        class.label(),
                        mode.label(),
                    ],
                    cfg.seed,
                );
                let mut noise = NoiseModel::new(cfg.noise_sigma, seed);
                let base = cost::latency(&stage.work, pu, &soc, &ctx);
                let samples: Vec<f64> = (0..cfg.reps)
                    .map(|_| base.as_f64() * noise.factor())
                    .collect();
                let mean = samples.iter().sum::<f64>() / cfg.reps as f64;
                let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / cfg.reps as f64;
                let got_mean = table.latency(s, class).unwrap().as_f64();
                let got_sd = table.latency_spread(s, class).unwrap().as_f64();
                assert!(
                    ((got_mean - mean) / mean).abs() < 1e-12,
                    "stage {s} on {class}: mean {got_mean} vs two-pass {mean}"
                );
                assert!(
                    (got_sd - var.sqrt()).abs() <= 1e-12 * var.sqrt().max(1.0),
                    "stage {s} on {class}: σ {got_sd} vs two-pass {}",
                    var.sqrt()
                );
            }
        }
    }

    #[test]
    fn throughput_profiling_agrees_with_mean_profiling() {
        let soc = devices::pixel_7a();
        let app = octree_model();
        let cfg = ProfilerConfig {
            noise_sigma: 0.02,
            ..ProfilerConfig::default()
        };
        let by_mean = profile(&soc, &app, ProfileMode::InterferenceHeavy, &cfg);
        // A generous window (many completions per cell) converges to the
        // mean-of-reps estimate.
        let by_thr = profile_by_throughput(
            &soc,
            &app,
            ProfileMode::InterferenceHeavy,
            &cfg,
            Micros::from_secs(1.0),
        );
        for s in 0..app.stage_count() {
            for &c in by_mean.classes() {
                let a = by_mean.latency(s, c).unwrap().as_f64();
                let b = by_thr.latency(s, c).unwrap().as_f64();
                assert!(
                    ((a - b) / a).abs() < 0.05,
                    "stage {s} on {c}: mean {a} vs throughput {b}"
                );
            }
        }
    }

    #[test]
    fn throughput_profiling_handles_stages_longer_than_window() {
        let soc = devices::pixel_7a();
        let app = octree_model();
        let cfg = ProfilerConfig {
            noise_sigma: 0.0,
            ..ProfilerConfig::default()
        };
        // Tiny window: every cell falls back to the single-sample path and
        // must still be positive.
        let t = profile_by_throughput(&soc, &app, ProfileMode::Isolated, &cfg, Micros::new(1.0));
        for s in 0..app.stage_count() {
            for &c in t.classes() {
                assert!(t.latency(s, c).unwrap().as_f64() > 0.0);
            }
        }
    }

    #[test]
    fn profiling_cost_is_positive_and_scales_with_reps() {
        let soc = devices::pixel_7a();
        let app = octree_model();
        let c30 = profiling_cost(
            &soc,
            &app,
            ProfileMode::InterferenceHeavy,
            &ProfilerConfig::default(),
        );
        let c60 = profiling_cost(
            &soc,
            &app,
            ProfileMode::InterferenceHeavy,
            &ProfilerConfig {
                reps: 60,
                ..ProfilerConfig::default()
            },
        );
        assert!(c30.as_f64() > 0.0);
        assert!((c60.as_f64() / c30.as_f64() - 2.0).abs() < 1e-9);
    }
}
