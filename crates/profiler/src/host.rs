//! Wall-clock profiling of real kernels on the host machine.
//!
//! The simulated profiler ([`crate::profile`]) models the paper's four edge
//! devices; this module is the same protocol against real silicon — the
//! development host — so the end-to-end framework can also drive the real
//! pipeline runtime. Host "PU classes" are thread-count tiers (a stand-in
//! for big/little clusters): each class is profiled by running the stage's
//! actual kernel with that many worker threads.
//!
//! Interference-heavy mode follows §3.2: while the foreground stage is
//! measured, background threads continuously execute the same kernel on
//! their own payloads.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use bt_kernels::{Application, ParCtx};
use bt_soc::{Micros, PuClass};

use crate::{ProfileMode, ProfilingTable};

/// How many worker threads each "class" of the host gets.
#[derive(Debug, Clone)]
pub struct HostClasses {
    tiers: Vec<(PuClass, usize)>,
}

impl HostClasses {
    /// A two-tier default: a "big" tier with all available parallelism and
    /// a "little" tier with a single thread.
    pub fn default_for_host() -> HostClasses {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        HostClasses {
            tiers: vec![(PuClass::BigCpu, cores.max(2) / 2), (PuClass::LittleCpu, 1)],
        }
    }

    /// Custom tiers.
    ///
    /// # Panics
    ///
    /// Panics if `tiers` is empty or a thread count is zero.
    pub fn new(tiers: Vec<(PuClass, usize)>) -> HostClasses {
        assert!(!tiers.is_empty(), "need at least one tier");
        assert!(
            tiers.iter().all(|&(_, n)| n > 0),
            "thread counts must be positive"
        );
        HostClasses { tiers }
    }

    /// The tiers as `(class, threads)` pairs.
    pub fn tiers(&self) -> &[(PuClass, usize)] {
        &self.tiers
    }

    /// Threads of a class, if present.
    pub fn threads(&self, class: PuClass) -> Option<usize> {
        self.tiers
            .iter()
            .find(|(c, _)| *c == class)
            .map(|&(_, n)| n)
    }
}

/// Configuration of a host profiling run.
#[derive(Debug, Clone)]
pub struct HostProfilerConfig {
    /// Repetitions per cell (paper: 30). Keep small for large inputs.
    pub reps: u32,
    /// Warmup executions per cell, excluded from the mean.
    pub warmup: u32,
}

impl Default for HostProfilerConfig {
    fn default() -> HostProfilerConfig {
        HostProfilerConfig { reps: 5, warmup: 1 }
    }
}

/// Profiles every stage of `app` on every host tier with real wall-clock
/// timing. The stage kernels execute for real; earlier stages run once per
/// cell to produce valid inputs for the profiled stage.
///
/// Under [`ProfileMode::InterferenceHeavy`] — the framework's default —
/// each cell is measured while live co-runner threads execute the same
/// stage on every *other* tier (§3.2), so the contention is real, not
/// modeled. That fidelity has a cost: the machine is deliberately
/// saturated for the whole tiers × stages × `reps` sweep, and timings are
/// only meaningful if nothing else competes for it. Keep
/// [`HostProfilerConfig::reps`] small on shared machines, or profile with
/// [`ProfileMode::Isolated`] when contention fidelity doesn't matter.
pub fn profile_host<P>(
    app: &Application<P>,
    classes: &HostClasses,
    mode: ProfileMode,
    cfg: &HostProfilerConfig,
) -> ProfilingTable
where
    P: Send + 'static,
{
    let stage_names: Vec<String> = app.stages().iter().map(|s| s.name().to_string()).collect();
    let class_list: Vec<PuClass> = classes.tiers.iter().map(|&(c, _)| c).collect();

    let mut latency = vec![Vec::with_capacity(class_list.len()); app.stage_count()];

    for &(class, threads) in &classes.tiers {
        let ctx = ParCtx::new(threads);
        // Prepare a payload advanced to each stage boundary.
        let mut payload = app.new_payload();
        app.load_input(&mut payload, 0);

        for (si, stage) in app.stages().iter().enumerate() {
            let mean_us = match mode {
                ProfileMode::Isolated => measure(stage, &mut payload, &ctx, cfg, si, app),
                ProfileMode::InterferenceHeavy => {
                    let stop = AtomicBool::new(false);
                    let result = std::thread::scope(|scope| {
                        // One background co-runner per *other* tier, running
                        // the same stage on its own payload (§3.2).
                        for &(other, other_threads) in &classes.tiers {
                            if other == class {
                                continue;
                            }
                            let stop = &stop;
                            let bg_ctx = ParCtx::new(other_threads);
                            let mut bg_payload = app.new_payload();
                            scope.spawn(move || {
                                // Run the same computation continuously on
                                // this tier until the measurement is done,
                                // re-priming the payload each iteration.
                                while !stop.load(Ordering::Relaxed) {
                                    app.load_input(&mut bg_payload, 1);
                                    for prior in app.stages().iter().take(si) {
                                        prior.run(&mut bg_payload, &bg_ctx);
                                    }
                                    stage.run(&mut bg_payload, &bg_ctx);
                                }
                            });
                        }
                        let m = measure(stage, &mut payload, &ctx, cfg, si, app);
                        stop.store(true, Ordering::Relaxed);
                        m
                    });
                    result
                }
            };
            latency[si].push(Micros::new(mean_us));
        }
    }

    // Transposed fill above: latency[stage] currently gains one column per
    // tier iteration, in tier order — already the right layout.
    ProfilingTable::new(app.name(), "host", mode, stage_names, class_list, latency)
}

/// Measures one stage: before *every* repetition the pipeline prefix is
/// re-run to refresh the stage's input (stage kernels transform the
/// payload, so back-to-back re-execution would see a stale shape), then the
/// stage alone is timed.
fn measure<P>(
    stage: &bt_kernels::Stage<P>,
    payload: &mut P,
    ctx: &ParCtx,
    cfg: &HostProfilerConfig,
    stage_idx: usize,
    app: &Application<P>,
) -> f64 {
    let prime = |payload: &mut P| {
        app.load_input(payload, 0);
        for prior in app.stages().iter().take(stage_idx) {
            prior.run(payload, ctx);
        }
    };
    for _ in 0..cfg.warmup {
        prime(payload);
        stage.run(payload, ctx);
    }
    let reps = cfg.reps.max(1);
    let mut total = 0.0;
    for _ in 0..reps {
        prime(payload);
        let start = Instant::now();
        stage.run(payload, ctx);
        total += start.elapsed().as_secs_f64() * 1e6;
    }
    total / reps as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use bt_kernels::apps::{self, OctreeConfig};
    use bt_kernels::pointcloud::CloudShape;

    fn tiny_octree() -> bt_kernels::Application<apps::OctreeTask> {
        apps::octree_app(OctreeConfig {
            points: 2000,
            shape: CloudShape::Uniform,
            max_depth: 5,
            seed: 1,
        })
    }

    #[test]
    fn host_profile_shape() {
        let app = tiny_octree();
        let classes = HostClasses::new(vec![(PuClass::BigCpu, 2), (PuClass::LittleCpu, 1)]);
        let cfg = HostProfilerConfig { reps: 2, warmup: 0 };
        let table = profile_host(&app, &classes, ProfileMode::Isolated, &cfg);
        assert_eq!(table.stages().len(), 7);
        assert_eq!(table.classes().len(), 2);
        assert_eq!(table.device(), "host");
        // Every cell is a real measurement: positive.
        for s in 0..7 {
            for &c in table.classes() {
                assert!(table.latency(s, c).unwrap().as_f64() > 0.0);
            }
        }
    }

    #[test]
    fn interference_heavy_mode_completes() {
        let app = tiny_octree();
        let classes = HostClasses::new(vec![(PuClass::BigCpu, 2), (PuClass::LittleCpu, 1)]);
        let cfg = HostProfilerConfig { reps: 1, warmup: 0 };
        let table = profile_host(&app, &classes, ProfileMode::InterferenceHeavy, &cfg);
        assert_eq!(table.mode(), ProfileMode::InterferenceHeavy);
        assert!(table.total_profiled_time().as_f64() > 0.0);
    }

    #[test]
    fn default_host_classes_are_sane() {
        let c = HostClasses::default_for_host();
        assert!(c.threads(PuClass::BigCpu).unwrap() >= 1);
        assert_eq!(c.threads(PuClass::LittleCpu), Some(1));
        assert_eq!(c.threads(PuClass::Gpu), None);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threads_rejected() {
        let _ = HostClasses::new(vec![(PuClass::BigCpu, 0)]);
    }
}
