//! Offline stand-in for `proptest`: a miniature property-testing harness with
//! the strategy combinators and macros this workspace uses.
//!
//! Differences from real proptest, deliberate for offline vendoring:
//! - no shrinking — a failing case reports its generated inputs and panics;
//! - deterministic seeding per (test name, case index), so failures reproduce
//!   on re-run without a persistence file;
//! - strategies are sampled directly rather than through value trees.

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SeedableRng};

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// The RNG handed to strategies by the runner.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Deterministic per-test, per-case seeding (FNV-1a over the name).
    pub fn for_case(test_name: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x9e37)),
        }
    }

    pub fn sample_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        self.inner.gen_range(range)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen::<u64>()
    }
}

/// A generator of test values.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// `prop_flat_map` combinator.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

// ---------------------------------------------------------------------------
// Range strategies
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.sample_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.sample_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// `any::<T>()` — the full value domain of `T`.
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.sample_range(-1.0e6f32..1.0e6)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.sample_range(-1.0e12f64..1.0e12)
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// ---------------------------------------------------------------------------
// Composite strategies: tuples and arrays
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

impl<S: Strategy, const N: usize> Strategy for [S; N] {
    type Value = [S::Value; N];
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        std::array::from_fn(|i| self[i].sample(rng))
    }
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// A size bound for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `vec(strategy, size)` — a Vec whose length is drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.sample_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `btree_set(strategy, size)` — distinct elements; gives up growing (but
    /// never goes below the minimum unless the domain is exhausted) after a
    /// generous number of duplicate draws.
    pub fn btree_set<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let target = rng.sample_range(self.size.lo..=self.size.hi_inclusive);
            let mut out = std::collections::BTreeSet::new();
            let mut misses = 0usize;
            while out.len() < target && misses < 100 * (target + 1) {
                if !out.insert(self.elem.sample(rng)) {
                    misses += 1;
                }
            }
            out
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Everything the tests import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestRng,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// The `proptest!` block: expands each contained `fn name(pat in strategy)`
/// into a `#[test]` that samples `ProptestConfig::cases` inputs and runs the
/// body on each, reporting the generated inputs on failure.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($cfg); $($rest)*);
    };
    (@expand ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let strategy = ($($s,)+);
                for case in 0..cfg.cases {
                    let mut rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    let value = $crate::Strategy::sample(&strategy, &mut rng);
                    let rendered = format!("{:?}", value);
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                        let ($($p,)+) = value;
                        $body
                    }));
                    if let Err(payload) = outcome {
                        eprintln!(
                            "proptest: {} failed on case #{case} with input {rendered}",
                            stringify!($name),
                        );
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_lengths_in_bounds(v in collection::vec(any::<u32>(), 2..10)) {
            prop_assert!((2..10).contains(&v.len()));
        }

        #[test]
        fn flat_map_threads_values(pair in (2usize..=4, 1usize..=2).prop_flat_map(|(n, m)| {
            collection::vec(collection::vec(0.0f64..1.0, m..=m), n..=n)
        })) {
            prop_assert!((2..=4).contains(&pair.len()));
            for row in &pair {
                prop_assert!((1..=2).contains(&row.len()));
            }
        }

        #[test]
        fn btree_set_meets_minimum(s in collection::btree_set(0u32..1000, 3..50)) {
            prop_assert!(s.len() >= 3);
            prop_assert!(s.len() < 50);
        }
    }

    #[test]
    fn deterministic_per_case() {
        let s = (0u32..100, 0.0f64..1.0);
        let mut a = TestRng::for_case("x", 7);
        let mut b = TestRng::for_case("x", 7);
        assert_eq!(s.sample(&mut a).0, s.sample(&mut b).0);
    }
}
