//! Offline stand-in for `libc`, providing only the CPU-affinity surface the
//! pipeline crate uses on Linux. The `extern "C"` declarations bind directly
//! to the system C library, exactly as the real crate's do.

#![allow(non_camel_case_types, non_snake_case)]

pub type c_int = i32;
pub type pid_t = i32;
pub type size_t = usize;

pub const CPU_SETSIZE: c_int = 1024;

/// Mirrors glibc's `cpu_set_t`: a 1024-bit mask stored as unsigned longs.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct cpu_set_t {
    bits: [u64; CPU_SETSIZE as usize / 64],
}

#[allow(clippy::missing_safety_doc)]
pub unsafe fn CPU_ZERO(cpuset: &mut cpu_set_t) {
    cpuset.bits = [0; CPU_SETSIZE as usize / 64];
}

#[allow(clippy::missing_safety_doc)]
pub unsafe fn CPU_SET(cpu: usize, cpuset: &mut cpu_set_t) {
    if cpu < CPU_SETSIZE as usize {
        cpuset.bits[cpu / 64] |= 1 << (cpu % 64);
    }
}

#[allow(clippy::missing_safety_doc)]
pub unsafe fn CPU_ISSET(cpu: usize, cpuset: &cpu_set_t) -> bool {
    cpu < CPU_SETSIZE as usize && cpuset.bits[cpu / 64] & (1 << (cpu % 64)) != 0
}

extern "C" {
    pub fn sched_setaffinity(pid: pid_t, cpusetsize: size_t, cpuset: *const cpu_set_t) -> c_int;
    pub fn sched_getaffinity(pid: pid_t, cpusetsize: size_t, cpuset: *mut cpu_set_t) -> c_int;
}
