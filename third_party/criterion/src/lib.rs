//! Offline stand-in for `criterion`: a compact wall-clock benchmark harness
//! exposing the API surface the workspace's benches use. It calibrates an
//! iteration count per sample, takes `sample_size` samples, and prints the
//! median with a simple spread estimate — no plotting, no HTML reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(600),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Criterion {
        let name = id.to_string();
        run_benchmark(self, &name, None, &mut f);
        self
    }
}

/// Throughput annotation: turns ns/iter into elements or bytes per second.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.criterion.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let name = format!("{}/{}", self.name, id.label());
        run_benchmark(self.criterion, &name, self.throughput, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.label());
        run_benchmark(self.criterion, &name, self.throughput, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// A benchmark identifier, optionally parameterized.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }

    fn label(&self) -> &str {
        &self.label
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { label: s }
    }
}

/// Batch-size hint for `iter_batched`; the stub runs one setup per routine
/// call regardless, so the variants only exist for API compatibility.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// The measurement callback handle passed to bench closures.
pub struct Bencher {
    /// Iterations to run in the current sample.
    iters: u64,
    /// Measured duration of the current sample (excluding setup).
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, O, S: FnMut() -> I, F: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: F,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_sample<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    criterion: &Criterion,
    name: &str,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    // Calibrate: grow the iteration count until one sample costs roughly
    // measurement_time / sample_size.
    let budget = criterion.measurement_time / criterion.sample_size as u32;
    let mut iters = 1u64;
    loop {
        let took = run_sample(f, iters);
        if took >= budget || iters >= 1 << 24 {
            break;
        }
        if took < budget / 16 {
            iters = iters.saturating_mul(8);
        } else {
            let scale = (budget.as_secs_f64() / took.as_secs_f64().max(1e-9)).ceil();
            iters = (iters as f64 * scale.clamp(1.0, 16.0)) as u64;
        }
    }

    let mut per_iter_ns: Vec<f64> = (0..criterion.sample_size)
        .map(|_| run_sample(f, iters).as_secs_f64() * 1e9 / iters as f64)
        .collect();
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let lo = per_iter_ns[per_iter_ns.len() / 10];
    let hi = per_iter_ns[per_iter_ns.len() - 1 - per_iter_ns.len() / 10];

    let thru = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>12}/s", human_rate(n as f64 * 1e9 / median, "elem"))
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:>12}/s", human_rate(n as f64 * 1e9 / median, "B"))
        }
        None => String::new(),
    };
    println!(
        "bench {name:<48} {:>12}/iter  (p10 {} .. p90 {}, {} iters){thru}",
        human_time(median),
        human_time(lo),
        human_time(hi),
        iters
    );
}

fn human_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

fn human_rate(per_sec: f64, unit: &str) -> String {
    if per_sec < 1e3 {
        format!("{per_sec:.1} {unit}")
    } else if per_sec < 1e6 {
        format!("{:.1} K{unit}", per_sec / 1e3)
    } else if per_sec < 1e9 {
        format!("{:.1} M{unit}", per_sec / 1e6)
    } else {
        format!("{:.1} G{unit}", per_sec / 1e9)
    }
}

/// Declares a benchmark entry function from a config and target list.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
