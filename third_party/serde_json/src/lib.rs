//! Offline stand-in for `serde_json`: renders and parses the stub serde
//! [`Value`] tree. Matches serde_json's observable conventions where the
//! workspace depends on them (non-finite floats serialize as `null`, pretty
//! output uses two-space indents).

use serde::{Deserialize, Serialize};
pub use serde::{Error, Value};

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a value of type `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // `{}` on f64 produces the shortest representation that
                // round-trips, like serde_json's Ryu output; make sure an
                // integral float still reads back as a number.
                let s = format!("{f}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a JSON document into a [`Value`].
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of JSON input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => {
                self.eat_literal("null")?;
                Ok(Value::Null)
            }
            b't' => {
                self.eat_literal("true")?;
                Ok(Value::Bool(true))
            }
            b'f' => {
                self.eat_literal("false")?;
                Ok(Value::Bool(false))
            }
            b'"' => self.string().map(Value::Str),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::new(format!("bad array at offset {}", self.pos))),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut fields = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.expect(b':')?;
                    fields.push((key, self.value()?));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(Error::new(format!("bad object at offset {}", self.pos))),
                    }
                }
            }
            _ => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                        }
                        _ => return Err(Error::new("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode UTF-8: back up and take the full char.
                    self.pos -= 1;
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if text.is_empty() {
            return Err(Error::new(format!(
                "unexpected character at offset {start}"
            )));
        }
        let is_float = text.contains(['.', 'e', 'E']);
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(if n >= 0 {
                    Value::U64(n as u64)
                } else {
                    Value::I64(n)
                });
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}
