//! Offline stand-in for `serde`, vendored so the workspace builds without
//! network access to crates.io.
//!
//! The real serde drives serializers through a visitor API; this stub instead
//! round-trips every value through an owned [`Value`] tree, which is all the
//! workspace needs (JSON artefact export and config round-trips). The derive
//! macros re-exported here generate `Serialize`/`Deserialize` impls with the
//! same data model as serde's default representation:
//!
//! - structs with named fields → JSON objects
//! - newtype structs → transparent (the inner value)
//! - tuple structs → arrays
//! - unit enum variants → strings
//! - struct/tuple enum variants → externally tagged objects
//! - `#[serde(default)]` and implicit `Option` defaulting are honoured
//!
//! Only the API surface this workspace uses is provided.

pub use serde_derive::{Deserialize, Serialize};

/// An owned JSON-like value tree: the interchange format between
/// `Serialize`, `Deserialize`, and `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a field in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|fields| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::I64(n) => Some(n as f64),
            Value::U64(n) => Some(n as f64),
            Value::F64(f) => Some(f),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(n) => Some(n),
            Value::I64(n) if n >= 0 => Some(n as u64),
            _ => None,
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    pub fn new(message: impl Into<String>) -> Error {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// A `Value` serializes and deserializes as itself, so generic code can treat
// raw value trees like any other serde type (mirrors serde_json's blanket
// impls for its `Value`).
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: i64 = match *v {
                    Value::I64(n) => n,
                    Value::U64(n) if n <= i64::MAX as u64 => n as i64,
                    Value::F64(f) if f.fract() == 0.0 => f as i64,
                    ref other => {
                        return Err(Error::new(format!(
                            "expected integer, found {}",
                            other.type_name()
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    Error::new(format!("integer {} out of range for {}", n, stringify!($t)))
                })
            }
        }
    )*};
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: u64 = match *v {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    Value::F64(f) if f.fract() == 0.0 && f >= 0.0 => f as u64,
                    ref other => {
                        return Err(Error::new(format!(
                            "expected unsigned integer, found {}",
                            other.type_name()
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    Error::new(format!("integer {} out of range for {}", n, stringify!($t)))
                })
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::F64(f) => Ok(f as $t),
                    Value::I64(n) => Ok(n as $t),
                    Value::U64(n) => Ok(n as $t),
                    // serde_json writes non-finite floats as null.
                    Value::Null => Ok(<$t>::NAN),
                    ref other => Err(Error::new(format!(
                        "expected number, found {}",
                        other.type_name()
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!(
                "expected bool, found {}",
                other.type_name()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::new(format!(
                "expected string, found {}",
                other.type_name()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::new(format!(
                "expected single-char string, found {}",
                other.type_name()
            ))),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::new(format!(
                "expected array, found {}",
                other.type_name()
            ))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v
            .as_array()
            .ok_or_else(|| Error::new(format!("expected array, found {}", v.type_name())))?;
        if items.len() != N {
            return Err(Error::new(format!(
                "expected array of length {N}, found {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| Error::new("array length mismatch"))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| {
                    Error::new(format!("expected array, found {}", v.type_name()))
                })?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::new(format!(
                        "expected tuple of length {expected}, found {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

fn key_to_string(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        Value::I64(n) => n.to_string(),
        Value::U64(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("unsupported map key type: {}", other.type_name()),
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(&k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Serialize, V: Serialize, S: std::hash::BuildHasher> Serialize
    for std::collections::HashMap<K, V, S>
{
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(&k.to_value()), v.to_value()))
                .collect(),
        )
    }
}
