//! Offline stand-in for `rand` 0.8, providing the API surface this workspace
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `Rng` extension
//! methods `gen`, `gen_range`, and `gen_bool`.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — statistically
//! solid for test-data generation and fully deterministic for a given seed
//! (though the streams differ from the real `rand` crate's).

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution in real
/// rand: full range for integers, `[0, 1)` for floats).
pub trait Standard: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Per-type uniform sampling, mirroring real rand's `SampleUniform` so that
/// `gen_range(-0.5..0.5)` infers the element type from the call site through
/// the single blanket [`SampleRange`] impl.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_uniform(rng, lo, hi, true)
    }
}

fn sample_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Multiply-shift rejection-free mapping; bias is < 2^-64 per draw, which
    // is irrelevant for test-data generation.
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi - lo) as u64;
                if inclusive {
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + sample_u64_below(rng, span + 1) as $t
                } else {
                    lo + sample_u64_below(rng, span) as $t
                }
            }
        }
    )*};
}

impl_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                let offset = if inclusive {
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    sample_u64_below(rng, span + 1)
                } else {
                    sample_u64_below(rng, span)
                };
                (lo as i64).wrapping_add(offset as i64) as $t
            }
        }
    )*};
}

impl_uniform_int!(i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                let unit = <$t as Standard>::from_rng(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_uniform_float!(f32, f64);

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        <f64 as Standard>::from_rng(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i32..7);
            assert!((-5..7).contains(&v));
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u = rng.gen_range(1usize..=3);
            assert!((1..=3).contains(&u));
        }
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }
}
