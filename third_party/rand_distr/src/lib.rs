//! Offline stand-in for `rand_distr`: the `Distribution` trait plus the
//! `Normal`/`LogNormal` distributions. Standard-normal sampling uses the
//! Marsaglia–Tsang ziggurat (the same algorithm the real crate uses): the
//! common path is one RNG word, one table compare, and one multiply, which
//! matters because the simulator draws one noise factor per service event.

use std::sync::OnceLock;

use rand::RngCore;

/// Types that produce samples of `T` from a source of randomness.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error constructing a distribution from invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistrError;

impl std::fmt::Display for DistrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameters")
    }
}

impl std::error::Error for DistrError {}

/// Ziggurat layer count (Marsaglia & Tsang's classic 128-layer setup).
const ZIG_LAYERS: usize = 128;
/// Right edge of the base layer.
const ZIG_R: f64 = 3.442619855899;
/// Area of each layer.
const ZIG_V: f64 = 9.91256303526217e-3;

struct ZigTables {
    /// Integer acceptance thresholds: `|hz| < kn[i]` accepts immediately.
    kn: [u32; ZIG_LAYERS],
    /// Scale factors mapping the 32-bit integer to an x coordinate.
    wn: [f64; ZIG_LAYERS],
    /// Density at each layer edge.
    fx: [f64; ZIG_LAYERS],
}

fn zig_tables() -> &'static ZigTables {
    static TABLES: OnceLock<ZigTables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let m1 = 2_147_483_648.0f64; // 2^31
        let mut kn = [0u32; ZIG_LAYERS];
        let mut wn = [0f64; ZIG_LAYERS];
        let mut fx = [0f64; ZIG_LAYERS];
        let mut dn = ZIG_R;
        let mut tn = dn;
        let q = ZIG_V / (-0.5 * dn * dn).exp();
        kn[0] = ((dn / q) * m1) as u32;
        kn[1] = 0;
        wn[0] = q / m1;
        wn[ZIG_LAYERS - 1] = dn / m1;
        fx[0] = 1.0;
        fx[ZIG_LAYERS - 1] = (-0.5 * dn * dn).exp();
        for i in (1..=ZIG_LAYERS - 2).rev() {
            dn = (-2.0 * (ZIG_V / dn + (-0.5 * dn * dn).exp()).ln()).sqrt();
            kn[i + 1] = ((dn / tn) * m1) as u32;
            tn = dn;
            fx[i] = (-0.5 * dn * dn).exp();
            wn[i] = dn / m1;
        }
        ZigTables { kn, wn, fx }
    })
}

/// Uniform in `(0, 1]`, safe as a `ln()` argument.
fn uni<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    1.0 - <f64 as rand::Standard>::from_rng(rng)
}

/// One standard-normal draw (Marsaglia & Tsang's RNOR).
fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    let t = zig_tables();
    let mut hz = (rng.next_u64() >> 32) as u32 as i32;
    let mut iz = (hz & 127) as usize;
    loop {
        if (i64::from(hz)).unsigned_abs() < u64::from(t.kn[iz]) {
            return f64::from(hz) * t.wn[iz];
        }
        if iz == 0 {
            // Tail beyond R: Marsaglia's exponential-rejection scheme.
            loop {
                let x = -uni(rng).ln() / ZIG_R;
                let y = -uni(rng).ln();
                if y + y >= x * x {
                    return if hz > 0 { ZIG_R + x } else { -ZIG_R - x };
                }
            }
        }
        let x = f64::from(hz) * t.wn[iz];
        if t.fx[iz] + uni(rng) * (t.fx[iz - 1] - t.fx[iz]) < (-0.5 * x * x).exp() {
            return x;
        }
        hz = (rng.next_u64() >> 32) as u32 as i32;
        iz = (hz & 127) as usize;
    }
}

/// Normal (Gaussian) distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal<T> {
    mean: T,
    std_dev: T,
}

impl Normal<f64> {
    pub fn new(mean: f64, std_dev: f64) -> Result<Normal<f64>, DistrError> {
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(DistrError);
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// Log-normal distribution: `exp(N(mu, sigma))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal<T> {
    mu: T,
    sigma: T,
}

impl LogNormal<f64> {
    pub fn new(mu: f64, sigma: f64) -> Result<LogNormal<f64>, DistrError> {
        if !sigma.is_finite() || sigma < 0.0 {
            return Err(DistrError);
        }
        Ok(LogNormal { mu, sigma })
    }
}

impl Distribution<f64> for LogNormal<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lognormal_moments_roughly_match() {
        let dist = LogNormal::new(0.0, 0.25).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| dist.sample(&mut rng)).sum::<f64>() / n as f64;
        // E[lognormal(0, s)] = exp(s^2/2) ≈ 1.0317 for s = 0.25.
        assert!((mean - 1.0317).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn normal_moments_roughly_match() {
        let dist = Normal::new(2.0, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.02, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.03, "var = {var}");
    }

    #[test]
    fn normal_tail_frequencies_are_sane() {
        // The ziggurat's slow paths (layer rejection, tail) must still
        // produce the right tail mass: P(|Z| > 2) ≈ 0.0455,
        // P(|Z| > 3.5) ≈ 4.66e-4 (beyond the base layer edge R ≈ 3.44).
        let dist = Normal::new(0.0, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let n = 200_000;
        let mut beyond2 = 0u32;
        let mut beyond35 = 0u32;
        for _ in 0..n {
            let z: f64 = dist.sample(&mut rng);
            if z.abs() > 2.0 {
                beyond2 += 1;
            }
            if z.abs() > 3.5 {
                beyond35 += 1;
            }
        }
        let p2 = f64::from(beyond2) / f64::from(n);
        let p35 = f64::from(beyond35) / f64::from(n);
        assert!((p2 - 0.0455).abs() < 0.004, "P(|Z|>2) = {p2}");
        assert!(p35 > 1e-4 && p35 < 1.2e-3, "P(|Z|>3.5) = {p35}");
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let dist = Normal::new(0.0, 1.0).unwrap();
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(dist.sample(&mut a), dist.sample(&mut b));
        }
    }

    #[test]
    fn invalid_sigma_rejected() {
        assert!(LogNormal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, f64::NAN).is_err());
    }
}
