//! Offline stand-in for `rand_distr`: the `Distribution` trait plus the
//! `Normal`/`LogNormal` distributions (Box-Muller sampling).

use rand::RngCore;

/// Types that produce samples of `T` from a source of randomness.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error constructing a distribution from invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistrError;

impl std::fmt::Display for DistrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameters")
    }
}

impl std::error::Error for DistrError {}

fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // Box-Muller; reject u1 == 0 to keep ln() finite.
    loop {
        let u1: f64 = <f64 as rand::Standard>::from_rng(rng);
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = <f64 as rand::Standard>::from_rng(rng);
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

/// Normal (Gaussian) distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal<T> {
    mean: T,
    std_dev: T,
}

impl Normal<f64> {
    pub fn new(mean: f64, std_dev: f64) -> Result<Normal<f64>, DistrError> {
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(DistrError);
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// Log-normal distribution: `exp(N(mu, sigma))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal<T> {
    mu: T,
    sigma: T,
}

impl LogNormal<f64> {
    pub fn new(mu: f64, sigma: f64) -> Result<LogNormal<f64>, DistrError> {
        if !sigma.is_finite() || sigma < 0.0 {
            return Err(DistrError);
        }
        Ok(LogNormal { mu, sigma })
    }
}

impl Distribution<f64> for LogNormal<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lognormal_moments_roughly_match() {
        let dist = LogNormal::new(0.0, 0.25).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| dist.sample(&mut rng)).sum::<f64>() / n as f64;
        // E[lognormal(0, s)] = exp(s^2/2) ≈ 1.0317 for s = 0.25.
        assert!((mean - 1.0317).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn invalid_sigma_rejected() {
        assert!(LogNormal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, f64::NAN).is_err());
    }
}
