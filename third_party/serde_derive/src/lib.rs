//! Derive macros for the vendored `serde` stub.
//!
//! Implemented with a hand-rolled token walker (no `syn`/`quote`, which are
//! unavailable offline). Supports the shapes this workspace uses:
//! named-field structs (with generics), tuple/newtype structs, and enums with
//! unit, tuple, and struct variants (externally tagged), plus the
//! `#[serde(default)]` field attribute and implicit `Option` defaulting.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Model
// ---------------------------------------------------------------------------

struct Field {
    name: String,
    is_option: bool,
    has_default: bool,
}

enum Body {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    body: VariantBody,
}

enum VariantBody {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Item {
    name: String,
    /// Full generic parameter segments, e.g. `["T: Clone"]`.
    generic_decls: Vec<String>,
    /// Bare generic argument names, e.g. `["T"]`.
    generic_args: Vec<String>,
    /// Names of type parameters (subset of args) that need trait bounds.
    type_params: Vec<String>,
    body: Body,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    // Skip outer attributes and visibility.
    loop {
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => pos += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                pos += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(pos) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        pos += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected struct/enum, found {other:?}"),
    };
    pos += 1;
    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    pos += 1;

    // Generics.
    let mut generic_decls = Vec::new();
    let mut generic_args = Vec::new();
    let mut type_params = Vec::new();
    if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
        if p.as_char() == '<' {
            pos += 1;
            let mut depth = 1usize;
            let mut segment: Vec<TokenTree> = Vec::new();
            let mut segments: Vec<Vec<TokenTree>> = Vec::new();
            while depth > 0 {
                let tok = tokens
                    .get(pos)
                    .unwrap_or_else(|| panic!("unterminated generics on {name}"))
                    .clone();
                pos += 1;
                if let TokenTree::Punct(ref q) = tok {
                    match q.as_char() {
                        '<' => depth += 1,
                        '>' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        ',' if depth == 1 => {
                            segments.push(std::mem::take(&mut segment));
                            continue;
                        }
                        _ => {}
                    }
                }
                segment.push(tok);
            }
            if !segment.is_empty() {
                segments.push(segment);
            }
            for seg in &segments {
                let text = tokens_to_string(seg);
                generic_decls.push(text);
                match seg.first() {
                    Some(TokenTree::Punct(q)) if q.as_char() == '\'' => {
                        // Lifetime parameter: name is `'a`.
                        let lt = match seg.get(1) {
                            Some(TokenTree::Ident(id)) => format!("'{id}"),
                            other => panic!("bad lifetime param {other:?}"),
                        };
                        generic_args.push(lt);
                    }
                    Some(TokenTree::Ident(id)) if id.to_string() == "const" => {
                        let cname = match seg.get(1) {
                            Some(TokenTree::Ident(id)) => id.to_string(),
                            other => panic!("bad const param {other:?}"),
                        };
                        generic_args.push(cname);
                    }
                    Some(TokenTree::Ident(id)) => {
                        let pname = id.to_string();
                        generic_args.push(pname.clone());
                        type_params.push(pname);
                    }
                    other => panic!("unsupported generic parameter {other:?}"),
                }
            }
        }
    }

    let body = match kind.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Unit,
            other => panic!("unsupported struct body for {name}: {other:?}"),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("unsupported enum body for {name}: {other:?}"),
        },
        other => panic!("cannot derive for `{other}` items"),
    };

    Item {
        name,
        generic_decls,
        generic_args,
        type_params,
        body,
    }
}

fn tokens_to_string(tokens: &[TokenTree]) -> String {
    let mut s = String::new();
    for t in tokens {
        if !s.is_empty() {
            s.push(' ');
        }
        s.push_str(&t.to_string());
    }
    s
}

/// Consumes leading attributes at `pos`; returns whether `#[serde(default)]`
/// was among them.
fn skip_attrs(tokens: &[TokenTree], pos: &mut usize) -> bool {
    let mut has_default = false;
    while let Some(TokenTree::Punct(p)) = tokens.get(*pos) {
        if p.as_char() != '#' {
            break;
        }
        if let Some(TokenTree::Group(g)) = tokens.get(*pos + 1) {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if let Some(TokenTree::Ident(id)) = inner.first() {
                if id.to_string() == "serde" {
                    if let Some(TokenTree::Group(args)) = inner.get(1) {
                        for arg in args.stream() {
                            if let TokenTree::Ident(a) = arg {
                                if a.to_string() == "default" {
                                    has_default = true;
                                }
                            }
                        }
                    }
                }
            }
        }
        *pos += 2;
    }
    has_default
}

fn skip_vis(tokens: &[TokenTree], pos: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*pos) {
        if id.to_string() == "pub" {
            *pos += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *pos += 1;
                }
            }
        }
    }
}

/// Advances past a type, stopping at a top-level `,` (which is not consumed).
fn skip_type(tokens: &[TokenTree], pos: &mut usize) -> Vec<TokenTree> {
    let mut depth = 0usize;
    let mut ty = Vec::new();
    while let Some(tok) = tokens.get(*pos) {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth = depth.saturating_sub(1),
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
            _ => {}
        }
        ty.push(tok.clone());
        *pos += 1;
    }
    ty
}

fn type_is_option(ty: &[TokenTree]) -> bool {
    // Matches `Option<..>` and `std::option::Option<..>` heads.
    ty.iter()
        .take_while(|t| !matches!(t, TokenTree::Punct(p) if p.as_char() == '<'))
        .any(|t| matches!(t, TokenTree::Ident(id) if id.to_string() == "Option"))
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        let has_default = skip_attrs(&tokens, &mut pos);
        skip_vis(&tokens, &mut pos);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected field name, found {other:?}"),
        };
        pos += 1;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        let ty = skip_type(&tokens, &mut pos);
        // Skip the trailing comma, if any.
        if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
            if p.as_char() == ',' {
                pos += 1;
            }
        }
        fields.push(Field {
            name,
            is_option: type_is_option(&ty),
            has_default,
        });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut count = 0;
    while pos < tokens.len() {
        skip_attrs(&tokens, &mut pos);
        skip_vis(&tokens, &mut pos);
        let ty = skip_type(&tokens, &mut pos);
        if !ty.is_empty() {
            count += 1;
        }
        if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
            if p.as_char() == ',' {
                pos += 1;
            }
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        skip_attrs(&tokens, &mut pos);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected variant name, found {other:?}"),
        };
        pos += 1;
        let body = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantBody::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantBody::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantBody::Unit,
        };
        // Skip any discriminant (`= expr`) and the separating comma.
        while let Some(tok) = tokens.get(pos) {
            if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                pos += 1;
                break;
            }
            pos += 1;
        }
        variants.push(Variant { name, body });
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn impl_header(item: &Item, trait_name: &str) -> String {
    let decls: Vec<String> = item
        .generic_decls
        .iter()
        .zip(&item.generic_args)
        .map(|(decl, arg)| {
            if item.type_params.contains(arg) {
                format!("{decl} : :: serde :: {trait_name}")
            } else {
                decl.clone()
            }
        })
        .collect();
    let impl_generics = if decls.is_empty() {
        String::new()
    } else {
        format!("< {} >", decls.join(" , "))
    };
    let ty_generics = if item.generic_args.is_empty() {
        String::new()
    } else {
        format!("< {} >", item.generic_args.join(" , "))
    };
    format!(
        "impl {impl_generics} :: serde :: {trait_name} for {} {ty_generics}",
        item.name
    )
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Named(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value(&self.{0})),",
                        f.name
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{pushes}])")
        }
        Body::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Body::Tuple(n) => {
            let items: String = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{items}])")
        }
        Body::Unit => "::serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.body {
                        VariantBody::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                        ),
                        VariantBody::Tuple(1) => format!(
                            "{name}::{vname}(x0) => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vname}\"), ::serde::Serialize::to_value(x0))]),"
                        ),
                        VariantBody::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                            let items: String = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b}),"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vname}\"), ::serde::Value::Array(::std::vec![{items}]))]),",
                                binds.join(", ")
                            )
                        }
                        VariantBody::Named(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let items: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value({0})),",
                                        f.name
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {} }} => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vname}\"), ::serde::Value::Object(::std::vec![{items}]))]),",
                                binds.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "{} {{ fn to_value(&self) -> ::serde::Value {{ {body} }} }}",
        impl_header(item, "Serialize")
    )
}

fn missing_field_expr(item_name: &str, f: &Field) -> String {
    if f.has_default {
        "::std::default::Default::default()".to_string()
    } else if f.is_option {
        "::std::option::Option::None".to_string()
    } else {
        format!(
            "return ::std::result::Result::Err(::serde::Error::new(\"missing field `{}` in {item_name}\"))",
            f.name
        )
    }
}

/// Builds the struct-literal field initializers for named fields read from
/// the object value expression `src`.
fn named_field_inits(item_name: &str, fields: &[Field], src: &str) -> String {
    fields
        .iter()
        .map(|f| {
            format!(
                "{0}: match {src}.get(\"{0}\") {{ \
                     ::std::option::Option::Some(fv) => ::serde::Deserialize::from_value(fv)?, \
                     ::std::option::Option::None => {1}, \
                 }},",
                f.name,
                missing_field_expr(item_name, f)
            )
        })
        .collect()
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Named(fields) => {
            let inits = named_field_inits(name, fields, "v");
            format!(
                "if v.as_object().is_none() {{ \
                     return ::std::result::Result::Err(::serde::Error::new(\"expected object for {name}\")); \
                 }} \
                 ::std::result::Result::Ok({name} {{ {inits} }})"
            )
        }
        Body::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Body::Tuple(n) => {
            let items: String = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
                .collect();
            format!(
                "let items = v.as_array().ok_or_else(|| ::serde::Error::new(\"expected array for {name}\"))?; \
                 if items.len() != {n} {{ \
                     return ::std::result::Result::Err(::serde::Error::new(\"wrong tuple length for {name}\")); \
                 }} \
                 ::std::result::Result::Ok({name}({items}))"
            )
        }
        Body::Unit => format!("::std::result::Result::Ok({name})"),
        Body::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.body, VariantBody::Unit))
                .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({name}::{0}),", v.name))
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.body {
                        VariantBody::Unit => None,
                        VariantBody::Tuple(1) => Some(format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(::serde::Deserialize::from_value(inner)?)),"
                        )),
                        VariantBody::Tuple(n) => {
                            let items: String = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{ \
                                     let items = inner.as_array().ok_or_else(|| ::serde::Error::new(\"expected array for {name}::{vname}\"))?; \
                                     if items.len() != {n} {{ \
                                         return ::std::result::Result::Err(::serde::Error::new(\"wrong tuple length for {name}::{vname}\")); \
                                     }} \
                                     ::std::result::Result::Ok({name}::{vname}({items})) \
                                 }}"
                            ))
                        }
                        VariantBody::Named(fields) => {
                            let inits = named_field_inits(name, fields, "inner");
                            Some(format!(
                                "\"{vname}\" => ::std::result::Result::Ok({name}::{vname} {{ {inits} }}),"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "if let ::std::option::Option::Some(s) = v.as_str() {{ \
                     return match s {{ \
                         {unit_arms} \
                         other => ::std::result::Result::Err(::serde::Error::new(::std::format!(\"unknown variant `{{}}` of {name}\", other))), \
                     }}; \
                 }} \
                 if let ::std::option::Option::Some(fields) = v.as_object() {{ \
                     if fields.len() == 1 {{ \
                         let (tag, inner) = &fields[0]; \
                         #[allow(unused_variables)] let inner = inner; \
                         return match tag.as_str() {{ \
                             {tagged_arms} \
                             other => ::std::result::Result::Err(::serde::Error::new(::std::format!(\"unknown variant `{{}}` of {name}\", other))), \
                         }}; \
                     }} \
                 }} \
                 ::std::result::Result::Err(::serde::Error::new(\"expected variant of {name}\"))"
            )
        }
    };
    format!(
        "#[automatically_derived] {} {{ \
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }} \
         }}",
        impl_header(item, "Deserialize")
    )
}
