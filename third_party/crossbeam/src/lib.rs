//! Offline stand-in for `crossbeam`, providing only `utils::CachePadded`,
//! which the SPSC queue uses to keep producer and consumer counters on
//! separate cache lines.

pub mod utils {
    use std::ops::{Deref, DerefMut};

    /// Pads and aligns a value to 128 bytes (two 64-byte lines, covering
    /// adjacent-line prefetchers), preventing false sharing between
    /// neighbouring fields.
    #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        pub const fn new(value: T) -> CachePadded<T> {
            CachePadded { value }
        }

        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T> From<T> for CachePadded<T> {
        fn from(value: T) -> CachePadded<T> {
            CachePadded::new(value)
        }
    }
}
