//! Golden-fixture replay for the simulation engines.
//!
//! Pins the exact numeric output of the DES across all 4 paper devices ×
//! 3 paper apps in clean, faulted, dynamic, and dynamic-faulted modes.
//! The fixtures were captured from the pre-unification engines
//! (`simulate`/`simulate_faulted`/`simulate_dynamic`/`simulate_dynamic_faulted`)
//! and the unified mode-parameterized engines must reproduce them
//! bit-identically: every float is compared via its shortest-roundtrip JSON
//! encoding, so a single ULP of drift in event ordering or summation order
//! fails the suite.
//!
//! Regenerate (only when an *intentional* model change lands) with:
//!
//! ```text
//! BT_GOLDEN_REGEN=1 cargo test --test golden_replay
//! ```

use bt_kernels::apps;
use bt_soc::des::{simulate, ChunkSpec};
use bt_soc::des_dynamic::{simulate_dynamic, DynamicPolicy};
use bt_soc::{
    devices, simulate_batch, DesSeedSpec, FaultSpec, RunConfig, RunReport, SlowdownRamp, SocSpec,
    StageFault, StageFaultKind, Straggler, WorkProfile,
};
use serde::{Deserialize, Serialize};

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/golden_des.json"
);

/// One pinned engine result. Every numeric field is serialized with
/// shortest-roundtrip f64 formatting, so string equality of the JSON
/// encoding is bit equality of the floats.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
struct GoldenCase {
    device: String,
    app: String,
    mode: String,
    submitted: u32,
    completed: u32,
    dropped: u32,
    faults_fired: u32,
    makespan_us: Option<f64>,
    mean_task_latency_us: Option<f64>,
    time_per_task_us: Option<f64>,
    throughput_hz: Option<f64>,
    chunk_utilization: Option<Vec<f64>>,
    bottleneck_chunk: Option<usize>,
    tasks: Option<u32>,
}

/// The paper's three workloads, matching `bt_bench::paper_apps()` (the root
/// crate does not depend on bt-bench, so the list is restated here).
fn paper_apps() -> Vec<(String, Vec<WorkProfile>)> {
    vec![
        (
            "alexnet_dense".into(),
            apps::alexnet_dense_app(apps::AlexNetConfig::default())
                .model()
                .works(),
        ),
        (
            "alexnet_sparse".into(),
            apps::alexnet_sparse_app(apps::AlexNetConfig::default())
                .model()
                .works(),
        ),
        (
            "octree".into(),
            apps::octree_app(apps::OctreeConfig::default())
                .model()
                .works(),
        ),
    ]
}

/// Deterministic contiguous chunking: stages split as evenly as possible
/// across the device's schedulable classes, in class order. Not an optimized
/// schedule — just a stable shape that exercises every PU class.
fn golden_chunks(soc: &SocSpec, works: &[WorkProfile]) -> Vec<ChunkSpec> {
    let classes = soc.schedulable_classes();
    let k = classes.len().min(works.len());
    let base = works.len() / k;
    let extra = works.len() % k;
    let mut chunks = Vec::with_capacity(k);
    let mut next = 0usize;
    for (i, class) in classes.into_iter().take(k).enumerate() {
        let len = base + usize::from(i < extra);
        chunks.push(ChunkSpec::new(class, works[next..next + len].to_vec()));
        next += len;
    }
    chunks
}

/// A deterministic fault cocktail exercising every fault family except PU
/// loss (loss drains the pipeline, which would leave most stats `None` and
/// pin nothing).
fn golden_faults(soc: &SocSpec) -> FaultSpec {
    let class = soc.schedulable_classes()[0];
    FaultSpec {
        slowdowns: vec![SlowdownRamp {
            class,
            start_us: 200.0,
            ramp_us: 400.0,
            factor: 1.5,
        }],
        stragglers: vec![Straggler {
            chunk: 0,
            task: 7,
            factor: 3.0,
        }],
        stage_faults: vec![
            StageFault {
                chunk: 0,
                task: 11,
                stage: 0,
                kind: StageFaultKind::Timeout { extra_us: 50.0 },
            },
            StageFault {
                chunk: 0,
                task: 17,
                stage: 0,
                kind: StageFaultKind::Error,
            },
        ],
        losses: vec![],
    }
}

fn golden_config() -> RunConfig {
    RunConfig {
        tasks: 20,
        warmup: 4,
        seed: 42,
        ..RunConfig::default()
    }
}

/// Projects a unified [`RunReport`] onto the pinned fixture shape.
fn fill(case: &mut GoldenCase, r: &RunReport) {
    case.submitted = u32::try_from(r.submitted).expect("golden runs are small");
    case.completed = u32::try_from(r.completed).expect("golden runs are small");
    case.dropped = u32::try_from(r.dropped).expect("golden runs are small");
    case.faults_fired = r.faults_fired;
    if let Some(s) = &r.stats {
        case.makespan_us = Some(s.makespan.as_f64());
        case.mean_task_latency_us = Some(s.mean_task_latency.as_f64());
        case.time_per_task_us = Some(s.time_per_task.as_f64());
        case.throughput_hz = Some(s.throughput_hz);
        case.chunk_utilization = Some(s.chunk_utilization.clone());
        case.bottleneck_chunk = Some(s.bottleneck_chunk);
        case.tasks = Some(s.tasks);
    }
}

fn blank_case(device: &str, app: &str, mode: &str) -> GoldenCase {
    GoldenCase {
        device: device.into(),
        app: app.into(),
        mode: mode.into(),
        submitted: 0,
        completed: 0,
        dropped: 0,
        faults_fired: 0,
        makespan_us: None,
        mean_task_latency_us: None,
        time_per_task_us: None,
        throughput_hz: None,
        chunk_utilization: None,
        bottleneck_chunk: None,
        tasks: None,
    }
}

/// Runs all four engine modes for every device × app and returns the cases
/// in a stable order.
fn compute_cases() -> Vec<GoldenCase> {
    let cfg = golden_config();
    let mut cases = Vec::new();
    for soc in devices::all() {
        for (app_name, works) in paper_apps() {
            let chunks = golden_chunks(&soc, &works);
            let faults = golden_faults(&soc);

            let mut clean = blank_case(soc.name(), &app_name, "clean");
            let r = simulate(&soc, &chunks, &cfg, None).expect("clean static run");
            fill(&mut clean, &r);
            cases.push(clean);

            let mut faulted = blank_case(soc.name(), &app_name, "faulted");
            let r = simulate(&soc, &chunks, &cfg, Some(&faults)).expect("faulted static run");
            fill(&mut faulted, &r);
            cases.push(faulted);

            let mut dynamic = blank_case(soc.name(), &app_name, "dynamic");
            let r = simulate_dynamic(&soc, &works, &cfg, DynamicPolicy::Fifo, None)
                .expect("clean dynamic run");
            fill(&mut dynamic, &r);
            cases.push(dynamic);

            let mut dyn_faulted = blank_case(soc.name(), &app_name, "dynamic_faulted");
            let r = simulate_dynamic(&soc, &works, &cfg, DynamicPolicy::BestFit, Some(&faults))
                .expect("faulted dynamic run");
            fill(&mut dyn_faulted, &r);
            cases.push(dyn_faulted);
        }
    }
    cases
}

#[test]
fn golden_fixtures_replay_bit_identically() {
    let cases = compute_cases();
    assert_eq!(cases.len(), 4 * 3 * 4, "4 devices x 3 apps x 4 modes");

    if std::env::var("BT_GOLDEN_REGEN").is_ok() {
        let json = serde_json::to_string_pretty(&cases).expect("serialize fixtures");
        std::fs::write(FIXTURE, json).expect("write fixture file");
        eprintln!("regenerated {FIXTURE} with {} cases", cases.len());
        return;
    }

    let raw = std::fs::read_to_string(FIXTURE)
        .expect("fixture missing — run with BT_GOLDEN_REGEN=1 to capture");
    let golden: Vec<GoldenCase> = serde_json::from_str(&raw).expect("parse fixture");
    assert_eq!(golden.len(), cases.len(), "fixture case count");

    let mut mismatches = Vec::new();
    for (got, want) in cases.iter().zip(&golden) {
        // Compare through the JSON encoding: shortest-roundtrip f64
        // formatting makes string equality equivalent to bit equality.
        let got_s = serde_json::to_string(got).unwrap();
        let want_s = serde_json::to_string(want).unwrap();
        if got_s != want_s {
            mismatches.push(format!(
                "{}/{}/{}:\n  got  {got_s}\n  want {want_s}",
                got.device, got.app, got.mode
            ));
        }
    }
    assert!(
        mismatches.is_empty(),
        "{} golden case(s) drifted:\n{}",
        mismatches.len(),
        mismatches.join("\n")
    );
}

/// The batched structure-of-arrays engine must reproduce every *static*
/// golden fixture bit-for-bit: per (device, app), the clean and faulted
/// cases are replayed as two lanes of one `simulate_batch` pass and
/// compared against the pinned JSON through the same shortest-roundtrip
/// encoding. (Dynamic-mode fixtures have no batched counterpart — the
/// batch engine is a pipelined-chain engine.)
#[test]
fn golden_static_fixtures_replay_through_batch_engine() {
    if std::env::var("BT_GOLDEN_REGEN").is_ok() {
        return; // the scalar test regenerates; nothing to compare yet
    }
    let raw = std::fs::read_to_string(FIXTURE)
        .expect("fixture missing — run with BT_GOLDEN_REGEN=1 to capture");
    let golden: Vec<GoldenCase> = serde_json::from_str(&raw).expect("parse fixture");
    let pinned = |device: &str, app: &str, mode: &str| {
        golden
            .iter()
            .find(|c| c.device == device && c.app == app && c.mode == mode)
            .unwrap_or_else(|| panic!("no pinned case {device}/{app}/{mode}"))
    };

    let cfg = golden_config();
    let mut mismatches = Vec::new();
    let mut replayed = 0usize;
    for soc in devices::all() {
        for (app_name, works) in paper_apps() {
            let chunks = golden_chunks(&soc, &works);
            let lanes = vec![
                DesSeedSpec::new(cfg.seed),
                DesSeedSpec::with_faults(cfg.seed, golden_faults(&soc)),
            ];
            let reports = simulate_batch(&soc, &chunks, &cfg, &lanes).expect("batched replay");
            for (mode, report) in [("clean", &reports[0]), ("faulted", &reports[1])] {
                let mut case = blank_case(soc.name(), &app_name, mode);
                fill(&mut case, report);
                let want = pinned(soc.name(), &app_name, mode);
                let got_s = serde_json::to_string(&case).unwrap();
                let want_s = serde_json::to_string(want).unwrap();
                if got_s != want_s {
                    mismatches.push(format!(
                        "{}/{}/{} (batched):\n  got  {got_s}\n  want {want_s}",
                        soc.name(),
                        app_name,
                        mode
                    ));
                }
                replayed += 1;
            }
        }
    }
    assert_eq!(replayed, 4 * 3 * 2, "all static fixtures replayed batched");
    assert!(
        mismatches.is_empty(),
        "{} batched golden case(s) drifted:\n{}",
        mismatches.len(),
        mismatches.join("\n")
    );
}

/// Faulted fixtures must themselves conserve tasks — guards against
/// capturing a broken baseline.
#[test]
fn golden_fixtures_conserve_tasks() {
    for case in compute_cases() {
        assert_eq!(
            case.completed + case.dropped,
            case.submitted,
            "{}/{}/{} leaks tasks",
            case.device,
            case.app,
            case.mode
        );
    }
}
