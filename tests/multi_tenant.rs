//! End-to-end and property tests for the multi-tenant runtime: the
//! interference-aware co-schedule of the paper's three apps beats naive
//! time-slicing; `simulate_multi` is bit-replayable; random tenant mixes
//! uphold per-tenant conservation on both substrates (virtual-time DES and
//! the real work-stealing host pool) and never deadlock.

use std::sync::Arc;

use bettertogether::kernels::{apps, AppModel, Application, KernelFn, ParCtx, Stage};
use bettertogether::pipeline::{
    run_multi_host, to_chunk_specs, RunConfig, Schedule, Tenant, TenantSet, WorkerBudget,
};
use bettertogether::soc::{devices, simulate_multi, PuClass, SocSpec, TenantSpec, WorkProfile};
use bt_faults::{admit_greedy, AdmissionConfig, AdmissionPolicy};
use proptest::prelude::*;

use PuClass::*;

/// The paper's three workloads as cost models.
fn paper_models() -> Vec<AppModel> {
    vec![
        apps::octree_app(apps::OctreeConfig::default()).model(),
        apps::alexnet_dense_app(apps::AlexNetConfig::default()).model(),
        apps::alexnet_sparse_app(apps::AlexNetConfig::default()).model(),
    ]
}

fn cfg(seed: u64) -> RunConfig {
    RunConfig {
        tasks: 25,
        warmup: 5,
        seed,
        ..RunConfig::default()
    }
}

fn spec(app: &AppModel, schedule: &Schedule, seed: u64) -> TenantSpec {
    TenantSpec::new(
        app.name.clone(),
        to_chunk_specs(app, schedule).expect("schedule fits app"),
        cfg(seed),
    )
}

/// An interference-aware co-placement of the three apps on the Pixel 7a:
/// each tenant leans on a different cluster mix so busy-sets overlap
/// across, not within, the DRAM-heavy phases.
fn co_schedules(models: &[AppModel]) -> Vec<Schedule> {
    vec![
        // octree: front half on big cores, offload the heavy middle to GPU.
        Schedule::new(vec![
            BigCpu, BigCpu, MediumCpu, Gpu, Gpu, LittleCpu, LittleCpu,
        ])
        .unwrap(),
        // alexnet dense: GPU-leaning conv trunk, CPU tail.
        Schedule::new(vec![Gpu; models[1].stage_count()]).unwrap(),
        // alexnet sparse: keep off the GPU entirely.
        Schedule::new(
            (0..models[2].stage_count())
                .map(|i| {
                    if i < models[2].stage_count() / 2 {
                        BigCpu
                    } else {
                        MediumCpu
                    }
                })
                .collect(),
        )
        .unwrap(),
    ]
}

#[test]
fn co_run_beats_naive_time_slicing_on_aggregate_makespan() {
    let soc = devices::pixel_7a();
    let models = paper_models();
    let schedules = co_schedules(&models);
    let tenants: Vec<TenantSpec> = models
        .iter()
        .zip(&schedules)
        .enumerate()
        .map(|(i, (m, s))| spec(m, s, 40 + i as u64))
        .collect();

    // Naive time-slicing: the device runs one app at a time, so the
    // aggregate makespan is the sum of solo makespans.
    let sliced: f64 = tenants
        .iter()
        .map(|t| {
            simulate_multi(&soc, std::slice::from_ref(t), None)
                .expect("solo run")
                .makespan_us
        })
        .sum();

    let co = simulate_multi(&soc, &tenants, None).expect("co-run");
    for r in &co.tenants {
        assert_eq!(r.completed + r.dropped, r.submitted);
        assert_eq!(r.dropped, 0, "clean co-run drops nothing");
    }
    assert!(
        co.makespan_us < sliced,
        "interference-aware co-schedule ({:.0}µs) must beat time-slicing ({sliced:.0}µs)",
        co.makespan_us
    );
}

#[test]
fn simulate_multi_is_bit_replayable() {
    let soc = devices::pixel_7a();
    let models = paper_models();
    let schedules = co_schedules(&models);
    let tenants: Vec<TenantSpec> = models
        .iter()
        .zip(&schedules)
        .map(|(m, s)| spec(m, s, 7))
        .collect();
    let a = simulate_multi(&soc, &tenants, None).expect("run a");
    let b = simulate_multi(&soc, &tenants, None).expect("run b");
    assert_eq!(
        format!("{a:?}"),
        format!("{b:?}"),
        "replay must be bit-identical"
    );

    let reseeded: Vec<TenantSpec> = models
        .iter()
        .zip(&schedules)
        .map(|(m, s)| spec(m, s, 8))
        .collect();
    let c = simulate_multi(&soc, &reseeded, None).expect("run c");
    assert_ne!(
        format!("{a:?}"),
        format!("{c:?}"),
        "a different seed must perturb the co-run"
    );
}

#[test]
fn admission_assembles_a_fair_paper_mix() {
    let soc = devices::pixel_7a();
    let models = paper_models();
    let schedules = co_schedules(&models);
    let candidates: Vec<bettertogether::core::CoTenant> = models
        .iter()
        .zip(&schedules)
        .enumerate()
        .map(|(i, (m, s))| {
            bettertogether::core::CoTenant::new(m.clone(), s.clone(), cfg(90 + i as u64))
        })
        .collect();
    let decision = admit_greedy(
        &soc,
        &candidates,
        &AdmissionConfig::new(AdmissionPolicy::FairShare { tolerance: 0.02 }),
    )
    .expect("admission sweep");
    assert!(
        !decision.admitted.is_empty(),
        "a permissive fair-share must admit at least the first tenant"
    );
    assert_eq!(
        decision.admitted.len(),
        decision.reports.len(),
        "one final-mix report per admitted tenant"
    );
}

/// A random (device, mix) draw: 1–4 tenants, each a paper app under a
/// schedule assembled from the device's own PU classes.
fn mix_strategy() -> impl Strategy<Value = (usize, Vec<(usize, Vec<usize>, u64)>)> {
    let tenant = (
        0usize..3,
        proptest::collection::vec(0usize..4, 12),
        any::<u64>(),
    );
    (0usize..4, proptest::collection::vec(tenant, 1..=4))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_mixes_conserve_tasks_and_replay((dev, mix) in mix_strategy()) {
        let soc: SocSpec = devices::all().swap_remove(dev % devices::all().len());
        let classes: Vec<PuClass> = soc.classes();
        let models = paper_models();
        let tenants: Vec<TenantSpec> = mix
            .iter()
            .map(|(app, picks, seed)| {
                let m = &models[app % models.len()];
                let k = m.stage_count();
                // Contiguous-by-construction: split the stage range into
                // n_chunks runs of distinct classes (offset-rotated).
                let n_chunks = 1 + picks[0] % classes.len().min(k);
                let offset = picks[1];
                let assignment: Vec<PuClass> = (0..k)
                    .map(|s| classes[(offset + s * n_chunks / k) % classes.len()])
                    .collect();
                spec(m, &Schedule::new(assignment).unwrap(), *seed)
            })
            .collect();
        let a = simulate_multi(&soc, &tenants, None).expect("mix simulates");
        for (r, t) in a.tenants.iter().zip(&tenants) {
            prop_assert_eq!(r.completed + r.dropped, r.submitted);
            prop_assert_eq!(r.submitted, u64::from(t.cfg.tasks + t.cfg.warmup));
        }
        let b = simulate_multi(&soc, &tenants, None).expect("replay");
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}

/// Cheap real application for host-pool properties: every stage bumps a
/// counter, so lost or duplicated work is visible in the total.
fn counting_app(stages: usize, hits: Arc<std::sync::atomic::AtomicU64>) -> Application<u64> {
    let list = (0..stages)
        .map(|i| {
            let hits = Arc::clone(&hits);
            Stage::new(
                format!("s{i}"),
                WorkProfile::new(10.0, 10.0),
                Arc::new(move |t: &mut u64, _ctx: &ParCtx| {
                    *t = t.wrapping_add(1);
                    hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }) as KernelFn<u64>,
            )
        })
        .collect();
    Application::new(
        "counting",
        list,
        Arc::new(|| 0u64),
        Arc::new(|t: &mut u64, seq| *t = seq),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn host_pool_mixes_terminate_with_conservation(
        n_tenants in 1usize..=4,
        workers in 1usize..=4,
        stages in proptest::collection::vec(1usize..=4, 4),
        tasks in proptest::collection::vec(1u32..=10, 4),
    ) {
        let hits = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut set = TenantSet::new();
        let mut expected_hits = 0u64;
        let all = [BigCpu, MediumCpu, LittleCpu, Gpu];
        for i in 0..n_tenants {
            let k = stages[i];
            let app = counting_app(k, Arc::clone(&hits));
            let schedule = Schedule::new((0..k).map(|s| all[(i + s) % all.len()]).collect()).unwrap();
            let run = RunConfig { tasks: tasks[i], warmup: 1, ..RunConfig::default() };
            expected_hits += u64::from(tasks[i] + 1) * k as u64;
            set.push(Tenant::new(format!("t{i}"), &app, &schedule, run).unwrap());
        }
        // If the pool ever deadlocked, this call would hang the suite —
        // the test harness timeout is the deadlock detector.
        let reports = run_multi_host(&set, &WorkerBudget::new(workers)).unwrap();
        prop_assert_eq!(reports.len(), n_tenants);
        for (i, r) in reports.iter().enumerate() {
            prop_assert_eq!(r.completed + r.dropped, r.submitted);
            prop_assert_eq!(r.submitted, u64::from(tasks[i] + 1));
            prop_assert_eq!(r.dropped, 0);
        }
        prop_assert_eq!(hits.load(std::sync::atomic::Ordering::Relaxed), expected_hits);
    }
}
