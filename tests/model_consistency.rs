//! Cross-crate consistency between the performance model's layers: the
//! profiler's tables, the optimizer's predictions, and the discrete-event
//! simulator's measurements must fit together the way the paper's results
//! depend on.

use bettertogether::core::metrics::pearson;
use bettertogether::core::{optimize, predict, OptimizerConfig};
use bettertogether::kernels::apps;
use bettertogether::pipeline::{simulate_baseline, simulate_schedule, Schedule};
use bettertogether::profiler::{profile, ProfileMode, ProfilerConfig};
use bettertogether::soc::{devices, PuClass, RunConfig};

fn noiseless_profiler() -> ProfilerConfig {
    ProfilerConfig {
        noise_sigma: 0.0,
        ..ProfilerConfig::default()
    }
}

fn noiseless_des() -> RunConfig {
    RunConfig {
        noise_sigma: 0.0,
        ..RunConfig::default()
    }
}

#[test]
fn homogeneous_prediction_matches_isolated_baseline_modulo_sync() {
    // For a single-chunk schedule the DES reduces to the serial sum of
    // isolated stage latencies plus one sync; the prediction from the
    // isolated table is exactly that sum (tables exclude sync).
    let soc = devices::jetson_orin_nano();
    let app = apps::octree_app(apps::OctreeConfig::default()).model();
    let table = profile(&soc, &app, ProfileMode::Isolated, &noiseless_profiler());
    let schedule = Schedule::homogeneous(7, PuClass::BigCpu);
    let predicted = predict::predict_latency(&table, &schedule).expect("covered");
    let measured = simulate_schedule(&soc, &app, &schedule, &noiseless_des(), None)
        .expect("simulates")
        .expect_stats()
        .time_per_task;
    let sync = soc.pu(PuClass::BigCpu).unwrap().sync_overhead_us();
    let diff = (measured.as_f64() - predicted.as_f64() - sync).abs();
    assert!(
        diff / predicted.as_f64() < 0.02,
        "predicted {predicted}, measured {measured}, sync {sync}"
    );
}

#[test]
fn interference_aware_predictions_correlate_on_every_pair() {
    // Fig. 6a's property, asserted as a floor: r ≥ 0.6 everywhere for the
    // BT approach (the paper's minimum is 0.83).
    let workloads = [
        apps::alexnet_dense_app(apps::AlexNetConfig::default()).model(),
        apps::alexnet_sparse_app(apps::AlexNetConfig::default()).model(),
        apps::octree_app(apps::OctreeConfig::default()).model(),
    ];
    for soc in devices::all() {
        for app in &workloads {
            let table = profile(
                &soc,
                app,
                ProfileMode::InterferenceHeavy,
                &ProfilerConfig::default(),
            );
            let cands = optimize(&soc, &table, &OptimizerConfig::default()).expect("candidates");
            if cands.len() < 3 {
                continue;
            }
            let predicted: Vec<f64> = cands.iter().map(|c| c.predicted.as_f64()).collect();
            let measured: Vec<f64> = cands
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    simulate_schedule(
                        &soc,
                        app,
                        &c.schedule,
                        &RunConfig {
                            seed: i as u64,
                            ..RunConfig::default()
                        },
                        None,
                    )
                    .expect("simulates")
                    .expect_stats()
                    .time_per_task
                    .as_f64()
                })
                .collect();
            if let Some(r) = pearson(&predicted, &measured) {
                assert!(
                    r > 0.6,
                    "{}/{}: correlation only {r:.3}",
                    soc.name(),
                    app.name
                );
            }
        }
    }
}

#[test]
fn baselines_pay_per_stage_sync() {
    // The baseline dispatch pattern must cost more than a single pipelined
    // chunk of the same stages, by roughly (stages − 1) sync overheads.
    let soc = devices::pixel_7a();
    let app = apps::alexnet_dense_app(apps::AlexNetConfig::default()).model();
    let des = noiseless_des();
    let baseline = simulate_baseline(&soc, &app, PuClass::Gpu, &des)
        .expect("simulates")
        .expect_stats()
        .time_per_task;
    let chunked = simulate_schedule(
        &soc,
        &app,
        &Schedule::homogeneous(9, PuClass::Gpu),
        &des,
        None,
    )
    .expect("simulates")
    .expect_stats()
    .time_per_task;
    let sync = soc.pu(PuClass::Gpu).unwrap().sync_overhead_us();
    let expect_gap = 8.0 * sync;
    let gap = baseline.as_f64() - chunked.as_f64();
    assert!(
        (gap - expect_gap).abs() / expect_gap < 0.1,
        "gap {gap} vs expected {expect_gap}"
    );
}

#[test]
fn balanced_schedules_predict_better_than_unbalanced() {
    // The rationale for the utilization filter (§3.3): schedules whose
    // chunks are balanced run under conditions matching interference-heavy
    // profiling, so their predictions are tighter.
    let soc = devices::pixel_7a();
    let app = apps::octree_app(apps::OctreeConfig::default()).model();
    let table = profile(
        &soc,
        &app,
        ProfileMode::InterferenceHeavy,
        &noiseless_profiler(),
    );
    let err = |schedule: &Schedule| -> f64 {
        let p = predict::predict_latency(&table, schedule)
            .expect("covered")
            .as_f64();
        let m = simulate_schedule(&soc, &app, schedule, &noiseless_des(), None)
            .expect("simulates")
            .expect_stats()
            .time_per_task
            .as_f64();
        ((p - m) / m).abs()
    };
    // Balanced: the framework's own top candidate.
    let cands = optimize(&soc, &table, &OptimizerConfig::default()).expect("candidates");
    let balanced_err = err(&cands[0].schedule);
    // Unbalanced: one heavy big-CPU chunk with a trivial GPU tail.
    let unbalanced = Schedule::new(vec![
        PuClass::BigCpu,
        PuClass::BigCpu,
        PuClass::BigCpu,
        PuClass::BigCpu,
        PuClass::BigCpu,
        PuClass::BigCpu,
        PuClass::Gpu,
    ])
    .unwrap();
    let unbalanced_err = err(&unbalanced);
    assert!(
        balanced_err < unbalanced_err,
        "balanced err {balanced_err:.3} should beat unbalanced {unbalanced_err:.3}"
    );
}

#[test]
fn profiling_cost_is_minutes_scale() {
    // §3.2: collecting one table takes ≈6 minutes per device per app at 30
    // reps. Our simulated accounting should land within an order of
    // magnitude for the heaviest workload.
    let soc = devices::pixel_7a();
    let app = apps::alexnet_dense_app(apps::AlexNetConfig::default()).model();
    let cost = bettertogether::profiler::profiling_cost(
        &soc,
        &app,
        ProfileMode::InterferenceHeavy,
        &ProfilerConfig::default(),
    );
    let minutes = cost.as_secs() / 60.0;
    assert!(
        (0.1..60.0).contains(&minutes),
        "profiling cost {minutes:.2} min out of plausible range"
    );
}
