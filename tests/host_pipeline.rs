//! Integration tests for the real host runtime: correctness of the
//! dispatcher/queue/TaskObject machinery under actual threads, with both a
//! synthetic checked application and the real octree kernels.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bettertogether::kernels::{apps, Application, KernelFn, ParCtx, Stage};
use bettertogether::pipeline::{run_host, PuThreads, RunConfig, Schedule};
use bettertogether::soc::{PuClass, WorkProfile};

/// Payload that hashes its sequence number through each stage; the last
/// stage verifies the accumulated value, catching lost/duplicated/
/// misordered work or recycling bugs.
#[derive(Debug, Default)]
struct Checked {
    seq: u64,
    acc: u64,
}

fn mix(x: u64, stage: u64) -> u64 {
    x.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .rotate_left(17)
        .wrapping_add(stage)
}

fn checked_app(
    stages: usize,
    errors: Arc<AtomicU64>,
    done: Arc<AtomicU64>,
) -> Application<Checked> {
    let mut list = Vec::new();
    for i in 0..stages {
        let is_last = i == stages - 1;
        let errors = Arc::clone(&errors);
        let done = Arc::clone(&done);
        let kernel: KernelFn<Checked> = Arc::new(move |t: &mut Checked, ctx: &ParCtx| {
            // Exercise the worker pool too.
            let partial = ctx.reduce(64, 0u64, |r| r.map(|x| x as u64).sum(), |a, b| a + b);
            assert_eq!(partial, 63 * 64 / 2);
            t.acc = mix(t.acc, i as u64);
            if is_last {
                let mut expect = t.seq;
                for s in 0..stages as u64 {
                    expect = mix(expect, s);
                }
                if expect != t.acc {
                    errors.fetch_add(1, Ordering::Relaxed);
                }
                done.fetch_add(1, Ordering::Relaxed);
            }
        });
        list.push(Stage::new(
            format!("s{i}"),
            WorkProfile::new(10.0, 10.0),
            kernel,
        ));
    }
    Application::new(
        "checked",
        list,
        Arc::new(Checked::default),
        Arc::new(|t: &mut Checked, seq| {
            t.seq = seq;
            t.acc = seq;
        }),
    )
}

#[test]
fn every_task_processed_exactly_once_in_order() {
    use PuClass::*;
    let errors = Arc::new(AtomicU64::new(0));
    let done = Arc::new(AtomicU64::new(0));
    let app = checked_app(6, Arc::clone(&errors), Arc::clone(&done));
    let schedule =
        Schedule::new(vec![BigCpu, BigCpu, MediumCpu, MediumCpu, Gpu, LittleCpu]).unwrap();
    let cfg = RunConfig {
        tasks: 200,
        warmup: 5,
        ..RunConfig::default()
    };
    let report = run_host(&app, &schedule, &PuThreads::uniform(2), &cfg, None).unwrap();
    assert_eq!(errors.load(Ordering::Relaxed), 0, "payload corruption");
    assert_eq!(done.load(Ordering::Relaxed), 205, "every task completes");
    assert!(report.expect_stats().throughput_hz > 0.0);
}

#[test]
fn deep_pipelines_and_tiny_buffers() {
    let errors = Arc::new(AtomicU64::new(0));
    let done = Arc::new(AtomicU64::new(0));
    let app = checked_app(4, Arc::clone(&errors), Arc::clone(&done));
    let schedule = Schedule::new(vec![
        PuClass::BigCpu,
        PuClass::MediumCpu,
        PuClass::LittleCpu,
        PuClass::Gpu,
    ])
    .unwrap();
    // Buffer pool of exactly 1 forces full serialization through the
    // queues; correctness must be unaffected.
    let cfg = RunConfig {
        tasks: 50,
        warmup: 0,
        buffers: 1,
        ..RunConfig::default()
    };
    run_host(&app, &schedule, &PuThreads::uniform(1), &cfg, None).unwrap();
    assert_eq!(errors.load(Ordering::Relaxed), 0);
    assert_eq!(done.load(Ordering::Relaxed), 50);
}

#[test]
fn real_octree_pipeline_produces_correct_structures() {
    // Compare the recycled-pipeline execution against fresh sequential
    // runs: the final stage validates its own octree in-line.
    let validated = Arc::new(AtomicU64::new(0));
    let base = apps::octree_app(apps::OctreeConfig {
        points: 3_000,
        shape: bettertogether::kernels::pointcloud::CloudShape::Clustered,
        max_depth: 5,
        seed: 7,
    });

    // Wrap the app with a validation stage appended.
    let mut stages: Vec<Stage<apps::OctreeTask>> = base.stages().to_vec();
    {
        let validated = Arc::clone(&validated);
        stages.push(Stage::new(
            "validate",
            WorkProfile::new(1.0, 1.0),
            Arc::new(move |t: &mut apps::OctreeTask, _ctx: &ParCtx| {
                let octree = t.octree.as_ref().expect("built by prior stage");
                assert_eq!(octree.cell_count() as u32, t.edge_total + 1);
                // Every unique key must locate inside the octree with a
                // covering range.
                for (idx, &key) in t.unique.iter().enumerate().step_by(97) {
                    let cell = octree.locate(key);
                    let (lo, hi) = octree.key_range(cell);
                    assert!((lo..=hi).contains(&idx), "key {idx} outside [{lo},{hi}]");
                }
                validated.fetch_add(1, Ordering::Relaxed);
            }) as KernelFn<apps::OctreeTask>,
        ));
    }
    let app = Application::new("octree+validate", stages, base.factory(), base.source());

    let schedule = Schedule::new(vec![
        PuClass::BigCpu,
        PuClass::BigCpu,
        PuClass::BigCpu,
        PuClass::MediumCpu,
        PuClass::MediumCpu,
        PuClass::Gpu,
        PuClass::Gpu,
        PuClass::Gpu,
    ])
    .unwrap();
    let cfg = RunConfig {
        tasks: 12,
        warmup: 2,
        ..RunConfig::default()
    };
    run_host(&app, &schedule, &PuThreads::uniform(2), &cfg, None).unwrap();
    assert_eq!(validated.load(Ordering::Relaxed), 14);
}

#[test]
fn panicking_stage_fails_cleanly_without_deadlock() {
    use bettertogether::pipeline::PipelineError;
    // Stage 2 panics on the 7th task; the pipeline must shut down and
    // report the failing chunk instead of deadlocking or corrupting state.
    let stage = |i: usize| -> Stage<u64> {
        Stage::new(
            format!("s{i}"),
            WorkProfile::new(1.0, 1.0),
            Arc::new(move |t: &mut u64, _ctx: &ParCtx| {
                if i == 2 && *t == 7 {
                    panic!("injected failure");
                }
            }) as KernelFn<u64>,
        )
    };
    let app = Application::new(
        "faulty",
        (0..4).map(stage).collect(),
        Arc::new(|| 0u64),
        Arc::new(|t: &mut u64, seq| *t = seq),
    );
    let schedule = Schedule::new(vec![
        PuClass::BigCpu,
        PuClass::MediumCpu,
        PuClass::Gpu,
        PuClass::LittleCpu,
    ])
    .unwrap();
    let cfg = RunConfig {
        tasks: 50,
        warmup: 0,
        ..RunConfig::default()
    };
    let err = run_host(&app, &schedule, &PuThreads::uniform(1), &cfg, None).unwrap_err();
    assert_eq!(err, PipelineError::StagePanicked { chunk: 2 });
}

#[test]
fn panicking_head_stage_fails_cleanly() {
    use bettertogether::pipeline::PipelineError;
    let stage = |i: usize| -> Stage<u64> {
        Stage::new(
            format!("s{i}"),
            WorkProfile::new(1.0, 1.0),
            Arc::new(move |t: &mut u64, _ctx: &ParCtx| {
                if i == 0 && *t == 3 {
                    panic!("injected head failure");
                }
            }) as KernelFn<u64>,
        )
    };
    let app = Application::new(
        "faulty-head",
        (0..3).map(stage).collect(),
        Arc::new(|| 0u64),
        Arc::new(|t: &mut u64, seq| *t = seq),
    );
    let schedule = Schedule::new(vec![PuClass::BigCpu, PuClass::Gpu, PuClass::Gpu]).unwrap();
    let err = run_host(
        &app,
        &schedule,
        &PuThreads::uniform(1),
        &RunConfig {
            tasks: 20,
            warmup: 0,
            ..RunConfig::default()
        },
        None,
    )
    .unwrap_err();
    assert_eq!(err, PipelineError::StagePanicked { chunk: 0 });
}

#[test]
fn duration_mode_runs_until_deadline() {
    use std::time::Duration;
    let errors = Arc::new(AtomicU64::new(0));
    let done = Arc::new(AtomicU64::new(0));
    let app = checked_app(3, Arc::clone(&errors), Arc::clone(&done));
    let schedule = Schedule::new(vec![PuClass::BigCpu, PuClass::Gpu, PuClass::Gpu]).unwrap();
    let cfg = RunConfig {
        tasks: 1, // only sizes warmup accounting in duration mode
        warmup: 2,
        duration: Some(Duration::from_millis(120)),
        ..RunConfig::default()
    };
    let report = run_host(&app, &schedule, &PuThreads::uniform(1), &cfg, None).unwrap();
    assert_eq!(errors.load(Ordering::Relaxed), 0);
    let stats = report.expect_stats();
    // The trivial kernels complete far more than the warmup within 120 ms.
    assert!(stats.tasks > 10, "only {} tasks in the window", stats.tasks);
    assert_eq!(done.load(Ordering::Relaxed), u64::from(stats.tasks) + 2);
    assert!(stats.throughput_hz > 0.0);
}

#[test]
fn timeline_recording_captures_all_tasks() {
    let errors = Arc::new(AtomicU64::new(0));
    let done = Arc::new(AtomicU64::new(0));
    let app = checked_app(3, Arc::clone(&errors), Arc::clone(&done));
    let schedule = Schedule::new(vec![PuClass::BigCpu, PuClass::Gpu, PuClass::Gpu]).unwrap();
    let cfg = RunConfig {
        tasks: 10,
        warmup: 0,
        record_timeline: true,
        ..RunConfig::default()
    };
    let report = run_host(&app, &schedule, &PuThreads::uniform(1), &cfg, None).unwrap();
    // Two chunks × 10 tasks = 20 spans, all well-formed.
    assert_eq!(report.timeline.len(), 20);
    for span in &report.timeline {
        assert!(span.end_us >= span.start_us);
        assert!(span.chunk < 2);
        assert!(span.task < 10);
    }
}

#[test]
fn single_chunk_host_run_matches_multi_chunk_results() {
    let e1 = Arc::new(AtomicU64::new(0));
    let d1 = Arc::new(AtomicU64::new(0));
    let app = checked_app(3, Arc::clone(&e1), Arc::clone(&d1));
    let single = Schedule::homogeneous(3, PuClass::BigCpu);
    let cfg = RunConfig {
        tasks: 30,
        warmup: 0,
        buffers: 2,
        ..RunConfig::default()
    };
    run_host(&app, &single, &PuThreads::uniform(2), &cfg, None).unwrap();
    assert_eq!(e1.load(Ordering::Relaxed), 0);
    assert_eq!(d1.load(Ordering::Relaxed), 30);
}
