//! End-to-end integration: the full BetterTogether flow across every
//! (device, application) pair of the paper's evaluation matrix.

use bettertogether::core::{BetterTogether, BtConfig, OptimizerConfig, SolverEngine};
use bettertogether::kernels::apps;
use bettertogether::profiler::ProfileMode;
use bettertogether::soc::devices;

fn workloads() -> Vec<bettertogether::kernels::AppModel> {
    vec![
        apps::alexnet_dense_app(apps::AlexNetConfig::default()).model(),
        apps::alexnet_sparse_app(apps::AlexNetConfig::default()).model(),
        apps::octree_app(apps::OctreeConfig::default()).model(),
    ]
}

#[test]
fn full_matrix_runs_and_beats_cpu_baseline() {
    for soc in devices::all() {
        for app in workloads() {
            let label = format!("{}/{}", soc.name(), app.name);
            let d = BetterTogether::new(soc.clone(), app)
                .run()
                .unwrap_or_else(|e| panic!("{label}: {e}"));
            // The pipeline never loses to the CPU-only baseline in our
            // calibration (the paper has one mild GPU-baseline slowdown).
            let vs_cpu = d.speedup_over_cpu().expect("measured");
            assert!(vs_cpu > 1.0, "{label}: speedup vs CPU was {vs_cpu:.2}");
            let vs_best = d.speedup_over_best_baseline().expect("measured");
            assert!(vs_best > 0.85, "{label}: severe slowdown {vs_best:.2}");
            // Schedule covers every stage exactly once by construction.
            assert_eq!(
                d.best_schedule().expect("autotuned").stage_count(),
                d.plan.table.stages().len(),
                "{label}"
            );
        }
    }
}

#[test]
fn candidate_ranking_is_consistent_between_engines() {
    let app = apps::octree_app(apps::OctreeConfig::default()).model();
    for soc in devices::all() {
        let exact = BetterTogether::new(soc.clone(), app.clone())
            .with_config(BtConfig {
                optimizer: OptimizerConfig {
                    engine: SolverEngine::Exact,
                    candidates: 3,
                    ..OptimizerConfig::with_threshold(0.0)
                },
                ..BtConfig::default()
            })
            .plan()
            .expect("exact plan");
        let sat = BetterTogether::new(soc.clone(), app.clone())
            .with_config(BtConfig {
                optimizer: OptimizerConfig {
                    engine: SolverEngine::Sat,
                    candidates: 3,
                    ..OptimizerConfig::with_threshold(0.0)
                },
                ..BtConfig::default()
            })
            .plan()
            .expect("sat plan");
        assert!(
            (exact
                .predicted_best()
                .expect("non-empty plan")
                .predicted
                .as_f64()
                - sat
                    .predicted_best()
                    .expect("non-empty plan")
                    .predicted
                    .as_f64())
            .abs()
                < 1e-6,
            "{}: engines disagree on the optimum",
            soc.name()
        );
    }
}

#[test]
fn interference_aware_profiles_differ_from_isolated_on_every_device() {
    let app = apps::octree_app(apps::OctreeConfig::default()).model();
    for soc in devices::all() {
        let heavy = BetterTogether::new(soc.clone(), app.clone()).profile();
        let iso = BetterTogether::new(soc.clone(), app.clone())
            .with_config(BtConfig {
                profile_mode: ProfileMode::Isolated,
                ..BtConfig::default()
            })
            .profile();
        assert_ne!(heavy, iso, "{}", soc.name());
        // CPU cells must be slower (or equal) under load on Jetson/Pixel;
        // the OnePlus little cores legitimately speed up (firmware boost).
        if soc.name().contains("Jetson") {
            for s in 0..app.stage_count() {
                let h = heavy
                    .latency(s, bettertogether::soc::PuClass::BigCpu)
                    .expect("profiled");
                let i = iso
                    .latency(s, bettertogether::soc::PuClass::BigCpu)
                    .expect("profiled");
                assert!(h > i, "{} stage {s}", soc.name());
            }
        }
    }
}

#[test]
fn octree_on_pixel_uses_heterogeneous_pipeline() {
    let app = apps::octree_app(apps::OctreeConfig::default()).model();
    let d = BetterTogether::new(devices::pixel_7a(), app)
        .run()
        .expect("runs");
    let classes = d.best_schedule().expect("autotuned").classes_used();
    assert!(
        classes.len() >= 3,
        "octree should spread over ≥3 PU classes on the Pixel, got {classes:?}"
    );
    assert!(
        classes.contains(&bettertogether::soc::PuClass::Gpu),
        "the GPU should host the radix-tree-centric middle stages"
    );
}

#[test]
fn jetson_schedules_use_at_most_two_chunks() {
    // Only two PU classes exist on the Jetson — contiguity caps chunks.
    for app in workloads() {
        let d = BetterTogether::new(devices::jetson_orin_nano(), app)
            .run()
            .expect("runs");
        assert!(d.best_schedule().expect("autotuned").chunks().len() <= 2);
    }
}
