//! Backend parity: the *same* generic driver runs the full Fig. 2 loop
//! over both [`ExecutionBackend`] implementations — the discrete-event
//! simulator and the real host dispatcher runtime — and the structural
//! invariants of the result hold identically on both:
//!
//! - every candidate schedule satisfies C1 (each stage on exactly one PU)
//!   and C2 (each class forms one contiguous chunk), and only uses classes
//!   the backend can schedule;
//! - `best_index` points at the measured minimum of the autotuning sweep;
//! - every baseline class the backend declared was actually measured;
//! - telemetry rides along on each candidate measurement when enabled.

use std::collections::HashSet;

use bettertogether::core::{
    BetterTogether, BtConfig, Deployment, ExecutionBackend, HostBackend, OptimizerConfig,
    SimBackend,
};
use bettertogether::kernels::apps;
use bettertogether::pipeline::RunConfig;
use bettertogether::profiler::host::{HostClasses, HostProfilerConfig};
use bettertogether::soc::{devices, PuClass};
use bettertogether::telemetry::TelemetryConfig;

/// The one driver both backends share: plan, deploy, check invariants.
fn drive_and_check<B: ExecutionBackend>(bt: &BetterTogether<B>) -> Deployment {
    let backend = bt.backend();
    let plan = bt.plan().expect("plan");
    assert!(
        !plan.candidates.is_empty(),
        "{}: no candidates",
        backend.name()
    );

    for (i, c) in plan.candidates.iter().enumerate() {
        let label = format!("{} candidate {i} ({})", backend.name(), c.schedule);
        // C1: one PU per stage — the assignment covers every stage once.
        assert_eq!(
            c.schedule.stage_count(),
            backend.stage_count(),
            "{label}: C1 violated"
        );
        // C2: contiguity — a class never owns two separate chunks.
        let classes = c.schedule.classes_used();
        let distinct: HashSet<_> = classes.iter().copied().collect();
        assert_eq!(classes.len(), distinct.len(), "{label}: C2 violated");
        // The optimizer only places chunks where the backend allows them.
        for class in distinct {
            assert!(backend.schedulable(class), "{label}: {class} unschedulable");
        }
    }

    let d = bt.deploy(plan).expect("deploy");

    // best_index is the argmin of the measured sweep.
    let best = d
        .outcome
        .measured_latency(d.outcome.best_index)
        .expect("best candidate measured");
    for m in &d.outcome.measured {
        assert!(
            best <= m.latency,
            "{}: best_index {} ({best}) beaten by candidate {} ({})",
            backend.name(),
            d.outcome.best_index,
            m.candidate_index,
            m.latency
        );
        assert!(
            m.telemetry.is_some(),
            "{}: candidate {} measured without telemetry",
            backend.name(),
            m.candidate_index
        );
    }

    // Every declared baseline class was measured.
    for class in backend.baseline_classes() {
        assert!(
            d.baselines.latency_of(class).is_some(),
            "{}: baseline {class} missing",
            backend.name()
        );
    }
    assert!(d.best_latency().is_some());
    assert!(d.speedup_over_best_baseline().is_some());
    d
}

fn small_config() -> BtConfig {
    BtConfig {
        optimizer: OptimizerConfig {
            candidates: 4,
            ..OptimizerConfig::default()
        },
        ..BtConfig::default()
    }
}

#[test]
fn sim_backend_satisfies_structural_invariants() {
    let app = apps::octree_app(apps::OctreeConfig::default()).model();
    let backend = SimBackend::new(devices::pixel_7a(), app).with_run(RunConfig {
        telemetry: TelemetryConfig::full(),
        ..RunConfig::default()
    });
    let d = drive_and_check(&BetterTogether::with_backend(backend).with_config(small_config()));
    // The simulated Pixel beats its own homogeneous baselines.
    assert!(d.speedup_over_best_baseline().expect("measured") > 1.0);
}

#[test]
fn parallel_hint_is_on_for_sim_and_off_for_host() {
    // The simulator may fan measurements out: runs are pure functions of
    // (config, run-index seed), so concurrency cannot perturb them.
    let app = apps::octree_app(apps::OctreeConfig::default()).model();
    let sim = SimBackend::new(devices::pixel_7a(), app);
    assert!(sim.parallel_measure_hint());
    assert!(!sim.with_parallel(false).parallel_measure_hint());

    // The host backend must stay strictly serial: wall-clock candidate
    // runs own the machine's cores, and concurrent runs would contend for
    // CPU and memory bandwidth — corrupting the latencies being ranked.
    let host = HostBackend::with_classes(
        apps::octree_app(apps::OctreeConfig {
            points: 100,
            shape: bettertogether::kernels::pointcloud::CloudShape::Uniform,
            max_depth: 3,
            seed: 1,
        }),
        HostClasses::new(vec![(PuClass::BigCpu, 2), (PuClass::LittleCpu, 1)]),
    );
    assert!(!host.parallel_measure_hint());
}

#[test]
fn host_backend_satisfies_structural_invariants() {
    // Small real octree so the wall-clock profiling + autotuning sweep
    // stays test-sized (a few hundred kernel executions).
    let app = apps::octree_app(apps::OctreeConfig {
        points: 1_000,
        shape: bettertogether::kernels::pointcloud::CloudShape::Uniform,
        max_depth: 4,
        seed: 11,
    });
    let backend = HostBackend::with_classes(
        app,
        HostClasses::new(vec![(PuClass::BigCpu, 2), (PuClass::LittleCpu, 1)]),
    )
    .with_profiler(HostProfilerConfig { reps: 1, warmup: 0 })
    .with_run(RunConfig {
        tasks: 4,
        warmup: 1,
        telemetry: TelemetryConfig::full(),
        ..RunConfig::default()
    });
    let d = drive_and_check(&BetterTogether::with_backend(backend).with_config(small_config()));
    // Host tiers both appear in the baseline table.
    assert!(d.baselines.latency_of(PuClass::BigCpu).is_some());
    assert!(d.baselines.latency_of(PuClass::LittleCpu).is_some());
}
