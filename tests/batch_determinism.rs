//! Batch-engine determinism: every lane of a structure-of-arrays batch
//! must be bit-identical to the scalar engine run with that lane's seed
//! and fault plan — across the full paper device × app grid in clean and
//! faulted modes, and (by property test) over random batch shapes with
//! mixed fault plans and arbitrary lane order.
//!
//! "Bit-identical" is checked through `Debug`-representation equality of
//! the whole [`bt_soc::RunReport`], the same yardstick the golden-replay
//! suite and the engine-unification tests use: one ULP of drift anywhere
//! (event ordering, summation order, noise stream position) fails.

use bt_faults::{FaultDomain, FaultPlan};
use bt_kernels::apps;
use bt_soc::des::{simulate, ChunkSpec};
use bt_soc::{
    devices, simulate_batch, simulate_batch_parallel, DesSeedSpec, FaultSpec, RunConfig,
    SlowdownRamp, SocSpec, StageFault, StageFaultKind, Straggler, WorkProfile,
};
use proptest::prelude::*;

/// All four paper apps (the golden suite pins three; the batch grid also
/// covers perception, whose stage works chain-chunk like any other app).
fn paper_apps() -> Vec<(String, Vec<WorkProfile>)> {
    vec![
        (
            "alexnet_dense".into(),
            apps::alexnet_dense_app(apps::AlexNetConfig::default())
                .model()
                .works(),
        ),
        (
            "alexnet_sparse".into(),
            apps::alexnet_sparse_app(apps::AlexNetConfig::default())
                .model()
                .works(),
        ),
        (
            "octree".into(),
            apps::octree_app(apps::OctreeConfig::default())
                .model()
                .works(),
        ),
        (
            "perception".into(),
            apps::perception_app(apps::PerceptionConfig::default())
                .model()
                .works(),
        ),
    ]
}

/// Deterministic contiguous chunking over the device's schedulable
/// classes — the golden suite's stable shape, restated here.
fn grid_chunks(soc: &SocSpec, works: &[WorkProfile]) -> Vec<ChunkSpec> {
    let classes = soc.schedulable_classes();
    let k = classes.len().min(works.len());
    let base = works.len() / k;
    let extra = works.len() % k;
    let mut chunks = Vec::with_capacity(k);
    let mut next = 0usize;
    for (i, class) in classes.into_iter().take(k).enumerate() {
        let len = base + usize::from(i < extra);
        chunks.push(ChunkSpec::new(class, works[next..next + len].to_vec()));
        next += len;
    }
    chunks
}

/// A fault cocktail touching every family except PU loss, targeting the
/// device's first schedulable class.
fn grid_faults(soc: &SocSpec) -> FaultSpec {
    let class = soc.schedulable_classes()[0];
    FaultSpec {
        slowdowns: vec![SlowdownRamp {
            class,
            start_us: 150.0,
            ramp_us: 300.0,
            factor: 1.4,
        }],
        stragglers: vec![Straggler {
            chunk: 0,
            task: 5,
            factor: 2.5,
        }],
        stage_faults: vec![
            StageFault {
                chunk: 0,
                task: 9,
                stage: 0,
                kind: StageFaultKind::Timeout { extra_us: 40.0 },
            },
            StageFault {
                chunk: 0,
                task: 13,
                stage: 0,
                kind: StageFaultKind::Error,
            },
        ],
        losses: vec![],
    }
}

fn grid_config() -> RunConfig {
    RunConfig {
        tasks: 20,
        warmup: 4,
        seed: 7,
        ..RunConfig::default()
    }
}

/// Scalar reference for one lane: the batch contract says this is exactly
/// what the lane must reproduce.
fn scalar_lane(
    soc: &SocSpec,
    chunks: &[ChunkSpec],
    cfg: &RunConfig,
    lane: &DesSeedSpec,
) -> bt_soc::RunReport {
    let cfg = RunConfig {
        seed: lane.seed,
        ..cfg.clone()
    };
    simulate(soc, chunks, &cfg, lane.faults.as_ref()).expect("scalar reference run")
}

#[test]
fn batch_lanes_match_scalar_across_device_app_grid() {
    let cfg = grid_config();
    for soc in devices::all() {
        for (app, works) in paper_apps() {
            let chunks = grid_chunks(&soc, &works);
            let lanes = vec![
                DesSeedSpec::new(1),
                DesSeedSpec::with_faults(2, grid_faults(&soc)),
                DesSeedSpec::new(1), // duplicate of lane 0: must repeat it
                DesSeedSpec::with_faults(1, grid_faults(&soc)),
            ];
            let batch = simulate_batch(&soc, &chunks, &cfg, &lanes).expect("batch run");
            assert_eq!(batch.len(), lanes.len());
            for (i, (lane, got)) in lanes.iter().zip(&batch).enumerate() {
                let want = scalar_lane(&soc, &chunks, &cfg, lane);
                assert_eq!(
                    format!("{want:?}"),
                    format!("{got:?}"),
                    "{}/{app} lane {i} diverged from scalar engine",
                    soc.name()
                );
            }
            assert_eq!(
                format!("{:?}", batch[0]),
                format!("{:?}", batch[2]),
                "{}/{app}: identical lanes must be bit-identical",
                soc.name()
            );
        }
    }
}

#[test]
fn sharded_batch_is_bit_identical_to_single_pass() {
    let cfg = grid_config();
    let soc = devices::pixel_7a();
    let works = apps::octree_app(apps::OctreeConfig::default())
        .model()
        .works();
    let chunks = grid_chunks(&soc, &works);
    let lanes: Vec<DesSeedSpec> = (0..9)
        .map(|i| {
            if i % 3 == 0 {
                DesSeedSpec::with_faults(i, grid_faults(&soc))
            } else {
                DesSeedSpec::new(i)
            }
        })
        .collect();
    let single = simulate_batch(&soc, &chunks, &cfg, &lanes).expect("single pass");
    for threads in [2, 4, 16] {
        let sharded =
            simulate_batch_parallel(&soc, &chunks, &cfg, &lanes, threads).expect("sharded pass");
        assert_eq!(
            format!("{single:?}"),
            format!("{sharded:?}"),
            "{threads} shards"
        );
    }
}

/// Random lane mixes: seeds and fault plans drawn independently per lane,
/// batch sizes from singleton to wider than the shard width.
fn lane_strategy() -> impl Strategy<Value = Vec<(u64, u64, bool)>> {
    // (noise seed, fault-plan seed, faulted?) per lane.
    proptest::collection::vec((0u64..1000, 0u64..1000, any::<bool>()), 1..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_batches_match_scalar_lane_for_lane(spec in lane_strategy(), tasks in 5u32..25) {
        let soc = devices::pixel_7a();
        let works = apps::octree_app(apps::OctreeConfig::default()).model().works();
        let chunks = grid_chunks(&soc, &works);
        let cfg = RunConfig { tasks, warmup: 2, seed: 3, ..RunConfig::default() };
        let domain = FaultDomain {
            classes: soc.schedulable_classes(),
            chunks: chunks.len(),
            stages: works.len(),
            tasks: tasks + 2,
            ..FaultDomain::default()
        };
        let lanes: Vec<DesSeedSpec> = spec
            .iter()
            .map(|&(seed, plan_seed, faulted)| DesSeedSpec {
                seed,
                faults: faulted.then(|| FaultPlan::random(plan_seed, &domain).to_spec()),
            })
            .collect();
        let batch = simulate_batch(&soc, &chunks, &cfg, &lanes).expect("batch run");
        for (lane, got) in lanes.iter().zip(&batch) {
            let want = scalar_lane(&soc, &chunks, &cfg, lane);
            prop_assert_eq!(format!("{want:?}"), format!("{got:?}"));
        }
    }

    #[test]
    fn cache_off_random_batches_still_match(spec in lane_strategy()) {
        // The dense service memo and the hashed fallback are value-neutral;
        // with the cache disabled entirely the engine must still agree.
        let soc = devices::oneplus_11();
        let works = apps::alexnet_sparse_app(apps::AlexNetConfig::default()).model().works();
        let chunks = grid_chunks(&soc, &works);
        let cfg = RunConfig {
            tasks: 10,
            warmup: 2,
            seed: 5,
            service_cache: false,
            ..RunConfig::default()
        };
        let lanes: Vec<DesSeedSpec> = spec
            .iter()
            .map(|&(seed, _, faulted)| DesSeedSpec {
                seed,
                faults: faulted.then(|| grid_faults(&soc)),
            })
            .collect();
        let batch = simulate_batch(&soc, &chunks, &cfg, &lanes).expect("batch run");
        for (lane, got) in lanes.iter().zip(&batch) {
            let want = scalar_lane(&soc, &chunks, &cfg, lane);
            prop_assert_eq!(format!("{want:?}"), format!("{got:?}"));
        }
    }
}
