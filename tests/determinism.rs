//! Determinism guarantees of the parallel evaluation engine.
//!
//! Two invariants gate every performance shortcut this engine takes:
//!
//! 1. **Parallel ≡ serial.** When the simulator backend fans autotuning,
//!    baseline, and profiling measurements out over worker threads, the
//!    resulting `Deployment` must be *bit-for-bit* identical to the one the
//!    forced-serial path produces — same per-run seeds (decorrelated by
//!    run index, not by thread), results merged in input order.
//! 2. **Cached ≡ uncached.** The DES service-time memo stores the
//!    *noiseless* base latency per (chunk, stage, busy-set) key and applies
//!    per-event noise after lookup, so enabling it must not change a single
//!    bit of any report, across every device model and application.
//!
//! Both are checked through `Debug` formatting, which covers every field
//! (including telemetry and utilization vectors) and exposes the full f64
//! bit pattern up to the shortest round-trippable decimal.

use bettertogether::core::{BetterTogether, SimBackend};
use bettertogether::kernels::apps;
use bettertogether::kernels::AppModel;
use bettertogether::pipeline::simulate_schedule;
use bettertogether::soc::{devices, RunConfig, SocSpec};

fn three_apps() -> Vec<(&'static str, AppModel)> {
    vec![
        (
            "octree",
            apps::octree_app(apps::OctreeConfig::default()).model(),
        ),
        (
            "alexnet_sparse",
            apps::alexnet_sparse_app(apps::AlexNetConfig::default()).model(),
        ),
        (
            "alexnet_dense",
            apps::alexnet_dense_app(apps::AlexNetConfig::default()).model(),
        ),
    ]
}

fn four_devices() -> Vec<(&'static str, SocSpec)> {
    vec![
        ("pixel_7a", devices::pixel_7a()),
        ("oneplus_11", devices::oneplus_11()),
        ("jetson_orin_nano", devices::jetson_orin_nano()),
        ("jetson_orin_nano_lp", devices::jetson_orin_nano_lp()),
    ]
}

#[test]
fn parallel_deployment_is_bit_identical_to_serial() {
    for (dev_name, soc) in four_devices() {
        for (app_name, app) in three_apps() {
            let parallel = BetterTogether::with_backend(
                SimBackend::new(soc.clone(), app.clone()).with_parallel(true),
            )
            .run()
            .expect("parallel run");
            let serial = BetterTogether::with_backend(
                SimBackend::new(soc.clone(), app.clone()).with_parallel(false),
            )
            .run()
            .expect("serial run");
            assert_eq!(
                format!("{parallel:?}"),
                format!("{serial:?}"),
                "{dev_name} × {app_name}: parallel deployment diverged from serial"
            );
        }
    }
}

#[test]
fn service_cache_is_bit_identical_to_uncached_everywhere() {
    for (dev_name, soc) in four_devices() {
        for (app_name, app) in three_apps() {
            // Take the framework's own top candidate so the schedule
            // exercises real multi-chunk interference on this device.
            let plan = BetterTogether::with_backend(SimBackend::new(soc.clone(), app.clone()))
                .plan()
                .expect("plan");
            let schedule = &plan.candidates[0].schedule;
            for seed in [0u64, 7, 23] {
                let cached = RunConfig {
                    seed,
                    service_cache: true,
                    ..RunConfig::default()
                };
                let uncached = RunConfig {
                    service_cache: false,
                    ..cached.clone()
                };
                let with_cache =
                    simulate_schedule(&soc, &app, schedule, &cached, None).expect("cached run");
                let without_cache =
                    simulate_schedule(&soc, &app, schedule, &uncached, None).expect("uncached run");
                assert_eq!(
                    format!("{with_cache:?}"),
                    format!("{without_cache:?}"),
                    "{dev_name} × {app_name} (seed {seed}): cache changed the simulation"
                );
            }
        }
    }
}
