//! Property tests pitting the SAT encoding against the exact enumerator —
//! the oracle check promised in DESIGN.md: for any profiling table, both
//! engines must agree on optima, and everything either emits must satisfy
//! the paper's constraints C1/C2.

use bettertogether::solver::enumerate::{
    enumerate_schedules, latency_candidates_exact, min_gapness_exact,
};
use bettertogether::solver::{Engine, ScheduleProblem};
use proptest::prelude::*;

fn table_strategy() -> impl Strategy<Value = Vec<Vec<f64>>> {
    // 2..=6 stages × 2..=4 classes, latencies in [1, 1000].
    (2usize..=6, 2usize..=4).prop_flat_map(|(n, m)| {
        proptest::collection::vec(proptest::collection::vec(1.0f64..1000.0, m..=m), n..=n)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sat_min_latency_matches_enumerator(rows in table_strategy()) {
        let p = ScheduleProblem::new(rows).expect("valid table");
        let exact = latency_candidates_exact(&p, 1)[0].t_max;
        let (sat, schedule) = p.min_latency(&[]).expect("feasible");
        prop_assert!((exact - sat).abs() < 1e-6, "exact {exact} vs sat {sat}");
        prop_assert!(p.is_valid(&schedule));
        // The witness really achieves the claimed bound.
        let sums = p.chunk_sums_of(&schedule);
        prop_assert!(sums.iter().all(|&s| s <= sat + 1e-6));
    }

    #[test]
    fn sat_min_gapness_matches_enumerator(rows in table_strategy()) {
        let p = ScheduleProblem::new(rows).expect("valid table");
        let exact = min_gapness_exact(&p).expect("non-empty").gapness();
        let (sat, schedule) = p.min_gapness().expect("feasible");
        prop_assert!((exact - sat).abs() < 1e-6, "exact {exact} vs sat {sat}");
        let sums = p.chunk_sums_of(&schedule);
        let max = sums.iter().cloned().fold(f64::MIN, f64::max);
        let min = sums.iter().cloned().fold(f64::MAX, f64::min);
        prop_assert!((max - min) <= sat + 1e-6);
    }

    #[test]
    fn every_enumerated_schedule_is_valid_and_unique(rows in table_strategy()) {
        let p = ScheduleProblem::new(rows).expect("valid table");
        let all = enumerate_schedules(&p);
        let mut seen = std::collections::HashSet::new();
        for e in &all {
            prop_assert!(p.is_valid(&e.assignment));
            prop_assert!(seen.insert(e.assignment.clone()), "duplicate");
            // t_max/t_min consistent with chunk sums.
            let max = e.chunk_sums.iter().cloned().fold(f64::MIN, f64::max);
            prop_assert!((max - e.t_max).abs() < 1e-9);
        }
    }

    #[test]
    fn window_solutions_respect_bounds(rows in table_strategy(), lo_frac in 0.0f64..0.5, hi_frac in 0.5f64..1.0) {
        let p = ScheduleProblem::new(rows).expect("valid table");
        let sums = p.chunk_sums();
        let lo = sums[((sums.len() - 1) as f64 * lo_frac) as usize];
        let hi = sums[((sums.len() - 1) as f64 * hi_frac) as usize];
        if let Some(schedule) = p.solve_window(lo, hi, &[]) {
            prop_assert!(p.is_valid(&schedule));
            for s in p.chunk_sums_of(&schedule) {
                prop_assert!(s >= lo - 1e-6 && s <= hi + 1e-6, "chunk {s} outside [{lo}, {hi}]");
            }
        }
        // The enumerator agrees on feasibility.
        let any_exact = enumerate_schedules(&p).into_iter().any(|e| {
            e.chunk_sums.iter().all(|&s| s >= lo - 1e-9 && s <= hi + 1e-9)
        });
        prop_assert_eq!(p.solve_window(lo, hi, &[]).is_some(), any_exact);
    }

    #[test]
    fn blocking_enumeration_is_exhaustive_and_distinct(rows in table_strategy()) {
        let p = ScheduleProblem::new(rows).expect("valid table");
        let space = enumerate_schedules(&p).len();
        let found = p.latency_candidates(space + 5);
        prop_assert_eq!(found.len(), space, "blocking must enumerate the whole space");
        let mut seen = std::collections::HashSet::new();
        for (_, a) in &found {
            prop_assert!(seen.insert(a.clone()));
        }
        // Non-decreasing latency order.
        for w in found.windows(2) {
            prop_assert!(w[0].0 <= w[1].0 + 1e-9);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Cross-engine oracle: the clause-learning CDCL engine (the default)
    /// and the chronological DPLL engine it replaced must return the same
    /// optima — which must also equal the exact enumerator's — and every
    /// witness either engine emits must verify against the constraints.
    #[test]
    fn cdcl_and_dpll_agree_with_exact_enumerator(rows in table_strategy()) {
        let cdcl = ScheduleProblem::new(rows.clone()).expect("valid table");
        prop_assert_eq!(cdcl.engine(), Engine::Cdcl, "CDCL is the default engine");
        let dpll = ScheduleProblem::new(rows)
            .expect("valid table")
            .with_engine(Engine::Dpll);

        let exact = latency_candidates_exact(&cdcl, 1)[0].t_max;
        let (tc, sc) = cdcl.min_latency(&[]).expect("feasible");
        let (td, sd) = dpll.min_latency(&[]).expect("feasible");
        prop_assert!((tc - td).abs() < 1e-9, "cdcl {tc} vs dpll {td}");
        prop_assert!((tc - exact).abs() < 1e-6, "sat {tc} vs exact {exact}");
        prop_assert!(cdcl.is_valid(&sc), "CDCL witness violates C1/C2");
        prop_assert!(dpll.is_valid(&sd), "DPLL witness violates C1/C2");

        let (gc, _) = cdcl.min_gapness().expect("feasible");
        let (gd, _) = dpll.min_gapness().expect("feasible");
        prop_assert!((gc - gd).abs() < 1e-9, "gapness cdcl {gc} vs dpll {gd}");
    }

    /// Both engines return the same feasibility verdict on arbitrary
    /// runtime windows, and any model found verifies.
    #[test]
    fn cdcl_and_dpll_window_verdicts_agree(
        rows in table_strategy(),
        lo_frac in 0.0f64..0.5,
        hi_frac in 0.5f64..1.0,
    ) {
        let cdcl = ScheduleProblem::new(rows.clone()).expect("valid table");
        let dpll = ScheduleProblem::new(rows)
            .expect("valid table")
            .with_engine(Engine::Dpll);
        let sums = cdcl.chunk_sums();
        let lo = sums[((sums.len() - 1) as f64 * lo_frac) as usize];
        let hi = sums[((sums.len() - 1) as f64 * hi_frac) as usize];
        let c = cdcl.solve_window(lo, hi, &[]);
        let d = dpll.solve_window(lo, hi, &[]);
        prop_assert_eq!(c.is_some(), d.is_some(), "window [{}, {}] verdicts differ", lo, hi);
        for s in c.iter().chain(d.iter()) {
            prop_assert!(cdcl.is_valid(s));
            for sum in cdcl.chunk_sums_of(s) {
                prop_assert!(sum >= lo - 1e-6 && sum <= hi + 1e-6);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn max_chunks_cap_agreement(rows in table_strategy(), k in 1usize..=3) {
        let p = ScheduleProblem::new(rows).expect("valid table").with_max_chunks(k);
        let all = enumerate_schedules(&p);
        prop_assert!(!all.is_empty(), "single-chunk schedules always exist");
        for e in &all {
            prop_assert!(e.chunks() <= k);
        }
        let exact = latency_candidates_exact(&p, 1)[0].t_max;
        let (sat, sched) = p.min_latency(&[]).expect("feasible under cap");
        prop_assert!((exact - sat).abs() < 1e-6, "exact {exact} vs sat {sat}");
        prop_assert!(p.is_valid(&sched));
    }
}

#[test]
fn disallowed_classes_respected_by_both_engines() {
    let rows = vec![vec![10.0, 1.0, 5.0]; 4];
    let p = ScheduleProblem::new(rows)
        .unwrap()
        .with_allowed(vec![true, false, true])
        .unwrap();
    for e in enumerate_schedules(&p) {
        assert!(e.assignment.iter().all(|&c| c != 1));
    }
    let (_, sched) = p.min_latency(&[]).unwrap();
    assert!(sched.iter().all(|&c| c != 1));
}
