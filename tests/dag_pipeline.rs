//! End-to-end tests of the fork/join schedule path: chain apps stay
//! bit-identical through the DAG engine, and on the branching perception
//! workload the DAG-aware schedule beats the best linearized one — with
//! replication of the measured bottleneck beating the best non-replicated
//! schedule.

use bettertogether::core::{optimize, optimize_dag, optimize_replicated, OptimizerConfig};
use bettertogether::kernels::{apps, AppModel};
use bettertogether::pipeline::{simulate_dag_schedule, simulate_schedule, DagSchedule, Schedule};
use bettertogether::profiler::{profile, ProfileMode, ProfilerConfig, ProfilingTable};
use bettertogether::soc::{devices, RunConfig, SocSpec};

fn perception() -> AppModel {
    apps::perception_app(apps::PerceptionConfig::default()).model()
}

fn interference_table(soc: &SocSpec, app: &AppModel) -> ProfilingTable {
    profile(
        soc,
        app,
        ProfileMode::InterferenceHeavy,
        &ProfilerConfig::default(),
    )
}

fn noiseless() -> RunConfig {
    RunConfig {
        noise_sigma: 0.0,
        ..RunConfig::default()
    }
}

#[test]
fn chain_apps_are_bit_identical_through_dag_engine() {
    use bettertogether::soc::PuClass::*;
    let app = apps::octree_app(apps::OctreeConfig::default()).model();
    let soc = devices::pixel_7a();
    // Noisy config with a timeline: every field of the report must agree.
    let cfg = RunConfig {
        noise_sigma: 0.05,
        seed: 11,
        record_timeline: true,
        ..RunConfig::default()
    };
    let linear = Schedule::new(vec![BigCpu, BigCpu, MediumCpu, Gpu, Gpu, Gpu, LittleCpu]).unwrap();
    let dag = DagSchedule::from_schedule(&linear);
    let a = simulate_schedule(&soc, &app, &linear, &cfg, None).unwrap();
    let b = simulate_dag_schedule(&soc, &app, &dag, &cfg, None).unwrap();
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}

#[test]
fn dag_aware_schedule_beats_best_linearized_in_des() {
    let soc = devices::pixel_7a();
    let app = perception();
    let table = interference_table(&soc, &app);
    let cfg = OptimizerConfig {
        candidates: 10,
        ..OptimizerConfig::with_threshold(0.0)
    };
    // One task in flight: per-task latency is then the critical path,
    // which is what branch overlap shortens (deep pools are
    // backpressure-bound, pinning latency to pool / throughput).
    let run = RunConfig {
        buffers: 1,
        ..noiseless()
    };

    let graph = app.task_graph();
    let dag_best = optimize_dag(&soc, &table, &graph, &cfg)
        .unwrap()
        .iter()
        .map(|c| {
            simulate_dag_schedule(&soc, &app, &c.schedule, &run, None)
                .unwrap()
                .expect_stats()
                .mean_task_latency
                .as_f64()
        })
        .fold(f64::INFINITY, f64::min);

    // The linearized arm: the same stages forced into their chain order,
    // best schedule from the contiguous-partition optimizer.
    let linear_best = optimize(&soc, &table, &cfg)
        .unwrap()
        .iter()
        .map(|c| {
            simulate_schedule(&soc, &app, &c.schedule, &run, None)
                .unwrap()
                .expect_stats()
                .mean_task_latency
                .as_f64()
        })
        .fold(f64::INFINITY, f64::min);

    println!("dag best {dag_best:.1} us, linearized best {linear_best:.1} us");
    assert!(
        dag_best < linear_best,
        "DAG-aware schedule must beat the best linearized one: {dag_best} vs {linear_best}"
    );
}

#[test]
fn replicating_the_measured_bottleneck_beats_best_nonreplicated() {
    let soc = devices::pixel_7a();
    let app = perception();
    let table = interference_table(&soc, &app);
    let cfg = OptimizerConfig {
        candidates: 10,
        ..OptimizerConfig::with_threshold(0.0)
    };
    let run = noiseless();
    let graph = app.task_graph();
    let candidates = optimize_dag(&soc, &table, &graph, &cfg).unwrap();

    // Autotune the non-replicated arm: measured-best steady-state rate.
    let tpt = |s: &DagSchedule| {
        simulate_dag_schedule(&soc, &app, s, &run, None)
            .unwrap()
            .expect_stats()
            .time_per_task
            .as_f64()
    };
    let (best_plain, plain_tpt) = candidates
        .iter()
        .map(|c| (c, tpt(&c.schedule)))
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap();

    // The *measured* bottleneck of that schedule: the heaviest stage of
    // its slowest chunk, by the chunk's own class latency.
    let bottleneck_chunk = best_plain
        .chunk_sums
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap()
        .0;
    let chunk = &best_plain.schedule.chunks()[bottleneck_chunk];
    let bottleneck_stage = chunk
        .stages
        .iter()
        .copied()
        .max_by(|&a, &b| {
            let lat = |s: usize| table.latency(s, chunk.pu).unwrap().as_f64();
            lat(a).partial_cmp(&lat(b)).unwrap()
        })
        .unwrap();

    let rep = optimize_replicated(&soc, &table, &graph, bottleneck_stage).unwrap();
    let rep_tpt = tpt(&rep.schedule);
    println!(
        "replicated stage {bottleneck_stage}: {rep_tpt:.1} us/task vs best plain {plain_tpt:.1}"
    );
    assert!(
        rep_tpt < plain_tpt,
        "replicating the bottleneck must beat the best non-replicated schedule: \
         {rep_tpt} vs {plain_tpt}"
    );
}
