//! Pins the runtime substrate's zero-steady-state-allocation guarantee:
//! once a pipeline's rings and TaskObject pool exist, pushing, popping,
//! and recycling allocate nothing — the property that makes `bt-rt`
//! honest as an MCU-class (`no_std + alloc`) substrate, where a hidden
//! per-task allocation would fragment a tiny heap.
//!
//! Uses the same process-global [`CountingAlloc`] as the serve crate's
//! cache-hit guarantee. Counting is global and monotonic, so everything
//! is bracketed inside ONE test function — adding more `#[test]`s to
//! this file would race the counter under the parallel test harness.

use bettertogether::rt::spsc;
use bettertogether::rt::{StaticRing, TaskObject, UsmBuffer};
use bettertogether::serve::CountingAlloc;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

static RING: StaticRing<u64, 8> = StaticRing::new();

#[test]
fn steady_state_push_pop_recycle_never_allocates() {
    // --- Setup (allocates freely): heap ring + TaskObject pool. ---
    let (mut tx, mut rx) =
        spsc::channel::<Box<TaskObject<UsmBuffer<f32>>>>(4).expect("positive capacity");
    let mut pool: Vec<Box<TaskObject<UsmBuffer<f32>>>> = (0..4)
        .map(|_| {
            let mut usm = UsmBuffer::with_capacity(256);
            usm.resize(256);
            Box::new(TaskObject::new(usm))
        })
        .collect();
    let (mut stx, mut srx) = RING.split().expect("first split");

    // --- Steady state: circulate the pool through the heap ring. ---
    let before = CountingAlloc::allocations();
    for seq in 0..10_000u64 {
        let mut task = pool.pop().expect("pool refilled every iteration");
        task.recycle(seq);
        // Vary the working length within capacity, as recycled USM
        // buffers do across tasks of different sizes.
        task.payload.resize(64 + (seq as usize % 192));
        task.payload.as_mut_slice()[0] = seq as f32;
        assert!(tx.push(task).is_ok(), "ring has room");
        pool.push(rx.pop().expect("just pushed"));
    }
    // --- Steady state: the const-generic static ring. ---
    for i in 0..10_000u64 {
        stx.push(i).expect("room");
        assert_eq!(srx.pop(), Some(i));
    }
    let after = CountingAlloc::allocations();

    assert_eq!(
        after - before,
        0,
        "push/pop/recycle must not allocate in steady state"
    );
    assert_eq!(pool.len(), 4, "every TaskObject returned to the pool");
    assert_eq!(
        pool.iter().map(|t| t.payload.reallocations()).max(),
        Some(0),
        "within-capacity USM resizes never reallocate"
    );
}
