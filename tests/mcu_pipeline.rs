//! End-to-end coverage of the MCU-class edge backend: the full Fig. 2
//! loop (profile → three-level optimize → autotune → baseline comparison)
//! driven through [`McuBackend`] on the `mcu_m7` device model and the
//! 4-stage sensor application.
//!
//! Pins the substrate's headline claims:
//!
//! - the interference-aware schedule beats the naive all-on-the-M7
//!   firmware baseline (`speedup_over_cpu > 1.0`);
//! - the winning schedule is genuinely heterogeneous (more than one PU
//!   class — the DMA engine and/or the M4 earn their keep);
//! - `devices/mcu_m7.json` is byte-for-byte the serialization of
//!   [`devices::mcu_m7`], so the served registry and the library agree;
//! - the whole loop is deterministic run-to-run.

use bettertogether::core::{BetterTogether, ExecutionBackend, McuBackend};
use bettertogether::kernels::apps;
use bettertogether::soc::{devices, PuClass, SocSpec};

fn mcu_bt() -> BetterTogether<McuBackend> {
    let app = apps::sensor_app(apps::SensorConfig::default()).model();
    BetterTogether::with_backend(McuBackend::new(devices::mcu_m7(), app))
}

#[test]
fn mcu_schedule_beats_naive_single_core_firmware() {
    let d = mcu_bt().run().expect("Fig. 2 loop on the MCU backend");
    let speedup = d
        .speedup_over_cpu()
        .expect("M7 baseline and best schedule both measured");
    assert!(
        speedup > 1.0,
        "pipelined schedule must beat all-on-M7, got {speedup:.3}x"
    );
    let best = d.best_schedule().expect("autotuned");
    assert!(
        best.classes_used().len() > 1,
        "winning schedule {best} must use more than one PU class"
    );
}

#[test]
fn mcu_baselines_are_cpu_only() {
    let bt = mcu_bt();
    assert_eq!(bt.backend().name(), "mcu");
    assert_eq!(
        bt.backend().baseline_classes(),
        vec![PuClass::BigCpu],
        "the DMA engine cannot host whole applications"
    );
    let d = bt.run().expect("loop");
    assert_eq!(d.baselines.entries().len(), 1);
    assert_eq!(d.baselines.entries()[0].class, PuClass::BigCpu);
    assert!(d.speedup_over_gpu().is_none(), "no GPU-only baseline row");
}

#[test]
fn mcu_device_file_matches_library_model() {
    let raw = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/devices/mcu_m7.json"))
        .expect("devices/mcu_m7.json exists");
    let from_disk: SocSpec = serde_json::from_str(&raw).expect("parses as a SocSpec");
    let in_library = devices::mcu_m7();
    assert_eq!(
        format!("{from_disk:?}"),
        format!("{in_library:?}"),
        "devices/mcu_m7.json must stay the serialization of devices::mcu_m7()"
    );
    let reserialized = serde_json::to_string_pretty(&in_library).expect("serializes");
    assert_eq!(
        raw.trim_end(),
        reserialized.trim_end(),
        "regenerate devices/mcu_m7.json after editing devices::mcu_m7()"
    );
}

#[test]
fn mcu_loop_is_deterministic() {
    let a = mcu_bt().run().expect("first run");
    let b = mcu_bt().run().expect("second run");
    assert_eq!(
        format!("{:?}", a.best_schedule()),
        format!("{:?}", b.best_schedule())
    );
    assert_eq!(
        a.best_latency().map(|l| l.as_f64()),
        b.best_latency().map(|l| l.as_f64())
    );
    assert_eq!(a.speedup_over_cpu(), b.speedup_over_cpu());
}

#[test]
fn mcu_dma_engine_is_schedulable_but_not_a_baseline() {
    let bt = mcu_bt();
    assert!(bt.backend().schedulable(PuClass::Gpu), "DMA takes chunks");
    assert!(bt.backend().schedulable(PuClass::BigCpu));
    assert!(bt.backend().schedulable(PuClass::LittleCpu));
    assert!(
        !bt.backend().schedulable(PuClass::MediumCpu),
        "absent class"
    );
}
