//! Portability study: schedule AlexNet-dense and AlexNet-sparse across all
//! four modeled edge platforms and show that the optimal pipeline schedule
//! is *not portable* — each workload-device pair gets its own mapping
//! (§1 of the paper: "a given pipeline schedule is not portable across
//! devices").
//!
//! ```sh
//! cargo run --release --example alexnet_edge
//! ```

use std::collections::HashSet;

use bettertogether::core::BetterTogether;
use bettertogether::kernels::apps;
use bettertogether::soc::devices;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workloads = [
        (
            "AlexNet-dense",
            apps::alexnet_dense_app(apps::AlexNetConfig::default()).model(),
        ),
        (
            "AlexNet-sparse",
            apps::alexnet_sparse_app(apps::AlexNetConfig::default()).model(),
        ),
    ];

    println!("Per-device optimal schedules (B=big, M=medium, L=little, G=gpu)\n");
    println!(
        "{:>16} {:>22} {:>11} {:>9} {:>9}",
        "workload", "device", "schedule", "BT (ms)", "speedup"
    );

    for (name, app) in &workloads {
        let mut schedules = HashSet::new();
        for soc in devices::all() {
            let d = BetterTogether::new(soc.clone(), app.clone()).run()?;
            let best = d.best_schedule().expect("autotuned").to_string();
            println!(
                "{:>16} {:>22} {:>11} {:>9.2} {:>8.2}x",
                name,
                soc.name(),
                best,
                d.best_latency().expect("measured").as_millis(),
                d.speedup_over_best_baseline().expect("measured")
            );
            schedules.insert(best);
        }
        println!(
            "  → {} distinct optimal schedules across 4 devices\n",
            schedules.len()
        );
    }

    println!(
        "Distinct per-device mappings are why BetterTogether re-profiles and re-solves per\n\
         target instead of shipping one static schedule."
    );
    Ok(())
}
