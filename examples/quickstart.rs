//! Quickstart: one generic driver, two execution backends.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the full BetterTogether flow from Fig. 2 of the paper — profile
//! every stage on every PU under interference, solve for candidate
//! schedules, autotune, compare against the homogeneous baselines — first
//! on the simulated Google Pixel 7a, then re-runs the *identical* loop on
//! the real host runtime (wall-clock profiling of the actual octree
//! kernels, dispatcher threads, SPSC queues) just by swapping the
//! [`ExecutionBackend`].

use bettertogether::core::{BetterTogether, Deployment, ExecutionBackend, HostBackend};
use bettertogether::kernels::apps;
use bettertogether::pipeline::RunConfig;
use bettertogether::profiler::host::{HostClasses, HostProfilerConfig};
use bettertogether::soc::{devices, PuClass};

/// The whole framework, generic over where schedules execute.
fn drive<B: ExecutionBackend>(
    bt: &BetterTogether<B>,
) -> Result<Deployment, Box<dyn std::error::Error>> {
    // 3. BT-Profiler: the interference-aware profiling table.
    let table = bt.profile();
    println!("{}", table.render());

    // 4. BT-Optimizer: candidate schedules sorted by predicted latency.
    let plan = bt.plan()?;
    println!("top candidate schedules (B=big, M=medium, L=little, G=gpu):");
    for (i, c) in plan.candidates.iter().take(5).enumerate() {
        println!(
            "  {}. {}  predicted {:.2} ms (gapness {:.2} ms)",
            i + 1,
            c.schedule,
            c.predicted.as_millis(),
            c.gapness.as_millis()
        );
    }

    // 5. BT-Implementer + autotuning: execute the candidates, pick the
    //    measured best, compare against the homogeneous baselines.
    let deployment = bt.deploy(plan)?;
    println!(
        "\nbest schedule: {}",
        deployment.best_schedule().expect("autotuned")
    );
    println!(
        "measured:      {:.2} ms/task",
        deployment.best_latency().expect("measured").as_millis()
    );
    for e in deployment.baselines.entries() {
        println!(
            "baseline:      {} {:.2} ms ({:.2}x speedup)",
            e.class,
            e.latency.as_millis(),
            deployment.speedup_over(e.class).expect("measured")
        );
    }
    println!(
        "speedup:       {:.2}x vs best baseline",
        deployment.speedup_over_best_baseline().expect("measured")
    );
    println!(
        "autotuning recovered {:.2}x beyond the predicted-best schedule",
        deployment.autotuning_gain().expect("measured")
    );
    Ok(deployment)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1–2. Inputs: the application (7-stage octree construction) and the
    //      target system (a modeled Pixel 7a: big/medium/little CPU
    //      clusters + Mali GPU).
    let app = apps::octree_app(apps::OctreeConfig::default()).model();
    let soc = devices::pixel_7a();
    println!("application: {} ({} stages)", app.name, app.stage_count());
    println!("device:      {} (simulated)\n", soc.name());
    drive(&BetterTogether::new(soc, app))?;

    // Same driver, real execution: profile the actual octree kernels with
    // wall-clock timing and autotune through the dispatcher-thread
    // runtime. Host "PU classes" are thread-count tiers. Sized small so
    // the real runs stay quick.
    let real_app = apps::octree_app(apps::OctreeConfig {
        points: 2_000,
        shape: bettertogether::kernels::pointcloud::CloudShape::Uniform,
        max_depth: 5,
        seed: 7,
    });
    println!("\n================ host backend ================\n");
    println!("device:      development host (real kernels)\n");
    let backend = HostBackend::with_classes(
        real_app,
        HostClasses::new(vec![(PuClass::BigCpu, 2), (PuClass::LittleCpu, 1)]),
    )
    .with_profiler(HostProfilerConfig { reps: 1, warmup: 0 })
    .with_run(RunConfig {
        tasks: 4,
        warmup: 1,
        ..RunConfig::default()
    });
    drive(&BetterTogether::with_backend(backend))?;
    Ok(())
}
