//! Quickstart: schedule the octree pipeline on a simulated Google Pixel 7a.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the full BetterTogether flow from Fig. 2 of the paper: profile
//! every stage on every PU under interference, solve for candidate
//! schedules, autotune, and compare against the homogeneous baselines.

use bettertogether::core::BetterTogether;
use bettertogether::kernels::apps;
use bettertogether::soc::devices;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1–2. Inputs: the application (7-stage octree construction) and the
    //      target system (a modeled Pixel 7a: big/medium/little CPU
    //      clusters + Mali GPU).
    let app = apps::octree_app(apps::OctreeConfig::default()).model();
    let soc = devices::pixel_7a();
    println!("application: {} ({} stages)", app.name, app.stage_count());
    println!("device:      {}\n", soc.name());

    let bt = BetterTogether::new(soc, app);

    // 3. BT-Profiler: the interference-aware profiling table.
    let table = bt.profile();
    println!("{}", table.render());

    // 4. BT-Optimizer: candidate schedules sorted by predicted latency.
    let plan = bt.plan()?;
    println!("top candidate schedules (B=big, M=medium, L=little, G=gpu):");
    for (i, c) in plan.candidates.iter().take(5).enumerate() {
        println!(
            "  {}. {}  predicted {:.2} ms (gapness {:.2} ms)",
            i + 1,
            c.schedule,
            c.predicted.as_millis(),
            c.gapness.as_millis()
        );
    }

    // 5. BT-Implementer + autotuning: execute the candidates, pick the
    //    measured best, compare against CPU-only and GPU-only baselines.
    let deployment = bt.run()?;
    println!("\nbest schedule: {}", deployment.best_schedule());
    println!(
        "measured:      {:.2} ms/task",
        deployment.best_latency().as_millis()
    );
    println!(
        "baselines:     CPU {:.2} ms, GPU {:.2} ms",
        deployment.baselines.cpu.as_millis(),
        deployment.baselines.gpu.as_millis()
    );
    println!(
        "speedup:       {:.2}x vs best baseline ({:.2}x vs CPU, {:.2}x vs GPU)",
        deployment.speedup_over_best_baseline(),
        deployment.speedup_over_cpu(),
        deployment.speedup_over_gpu()
    );
    println!(
        "autotuning recovered {:.2}x beyond the predicted-best schedule",
        deployment.autotuning_gain()
    );
    Ok(())
}
