//! Streaming point-cloud mapping on the *host* backend: the real kernels,
//! real dispatcher threads, real lock-free queues — the BT-Implementer
//! runtime executing an actual octree pipeline end to end.
//!
//! ```sh
//! cargo run --release --example octree_robotics
//! ```
//!
//! A robotics-style scenario: clustered LiDAR-like clouds stream in, each
//! task builds a truncated octree (OctoMap-style occupancy structure). We
//! profile the stages on the host with wall-clock timers, pick a pipeline
//! schedule, and compare the pipelined runtime against sequential
//! processing.

use std::time::Instant;

use bettertogether::kernels::apps::{self, OctreeConfig};
use bettertogether::kernels::pointcloud::CloudShape;
use bettertogether::kernels::ParCtx;
use bettertogether::pipeline::{run_host, PuThreads, RunConfig, Schedule};
use bettertogether::profiler::host::{profile_host, HostClasses, HostProfilerConfig};
use bettertogether::profiler::ProfileMode;
use bettertogether::soc::PuClass;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let per_tier = (cores / 2).max(1);
    println!("host parallelism: {cores} core(s) → {per_tier} worker(s) per tier");
    let app = apps::octree_app(OctreeConfig {
        points: 60_000,
        shape: CloudShape::Clustered,
        max_depth: 6,
        seed: 42,
    });
    println!("streaming octree construction: {} points/task\n", 60_000);

    // Host profiling with the same protocol as the device profiler.
    let classes = HostClasses::new(vec![(PuClass::BigCpu, per_tier), (PuClass::LittleCpu, 1)]);
    let cfg = HostProfilerConfig { reps: 3, warmup: 1 };
    let table = profile_host(&app, &classes, ProfileMode::Isolated, &cfg);
    println!("{}", table.render());

    // Sequential reference: one task at a time, all stages on the big tier.
    let tasks = 20u32;
    let ctx = ParCtx::new(per_tier);
    let mut payload = app.new_payload();
    let t0 = Instant::now();
    for seq in 0..tasks as u64 {
        app.run_sequential(&mut payload, seq, &ctx);
    }
    let sequential = t0.elapsed() / tasks;
    let cells = payload.octree.as_ref().expect("octree built").cell_count();
    println!(
        "sequential: {:.2} ms/task ({cells} octree cells/task)",
        sequential.as_secs_f64() * 1e3
    );

    // Pipelined: let the solver pick the split from the measured host
    // table — exactly the BT-Optimizer flow, driven by real wall-clock
    // profiles. Both host tiers get equal worker pools, so any win comes
    // from overlapping tasks across dispatchers.
    let equal_tiers = HostClasses::new(vec![
        (PuClass::BigCpu, per_tier),
        (PuClass::LittleCpu, per_tier),
    ]);
    let table = profile_host(&app, &equal_tiers, ProfileMode::Isolated, &cfg);
    let problem = bettertogether::solver::ScheduleProblem::new(table.to_matrix())?;
    let candidates = bettertogether::solver::enumerate::latency_candidates_exact(&problem, 5);
    let best = &candidates[0];
    let schedule = Schedule::from_class_indices(&best.assignment, table.classes())?;
    println!(
        "solver-chosen split: {} (predicted bottleneck {:.2} ms)",
        schedule,
        best.t_max / 1e3
    );

    let threads = PuThreads::uniform(per_tier);
    let report = run_host(
        &app,
        &schedule,
        &threads,
        &RunConfig {
            tasks,
            warmup: 3,
            record_timeline: true,
            ..RunConfig::default()
        },
        None,
    )?;
    let stats = report.expect_stats();
    println!(
        "pipelined ({}): {:.2} ms/task, {:.1} tasks/s, residence {:.2} ms",
        schedule,
        stats.time_per_task.as_f64() / 1e3,
        stats.throughput_hz,
        stats.mean_task_latency.as_f64() / 1e3
    );
    // Real-execution Gantt: every row is a dispatcher thread.
    let labels: Vec<String> = schedule
        .chunks()
        .iter()
        .map(|c| format!("{} [{}..={}]", c.pu, c.first_stage, c.last_stage))
        .collect();
    println!("\nreal execution timeline (tasks drawn by digit):");
    println!(
        "{}",
        bettertogether::soc::gantt::render_gantt(&report.timeline, &labels, 100)
    );

    let speedup = sequential.as_secs_f64() * 1e6 / stats.time_per_task.as_f64();
    println!("overlap speedup: {speedup:.2}x");
    if cores < 4 {
        println!(
            "(this host exposes only {cores} core(s); pipeline overlap needs several — \
             on a multicore machine the two dispatcher chunks run concurrently)"
        );
    }
    Ok(())
}
