//! Bring-your-own-device: define a new SoC model with [`SocBuilder`] and
//! let BetterTogether specialize a pipeline to it — the framework's
//! portability story extended beyond the paper's four platforms.
//!
//! ```sh
//! cargo run --release --example custom_soc
//! ```
//!
//! The example models an RK3588-class board (4 big + 4 little CPU cores,
//! mid-range Vulkan GPU) and contrasts the schedule BetterTogether derives
//! for it against the Pixel 7a's schedule for the same workload.

use bettertogether::core::BetterTogether;
use bettertogether::kernels::apps;
use bettertogether::soc::{devices, GpuBackend, InterferenceModel, PuClass, PuSpec, SocBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // An RK3588-like single-board computer.
    let board = SocBuilder::new("RK3588-class SBC")
        .pu(PuSpec::new(PuClass::BigCpu, "Cortex-A76", 4, 2.4)
            .with_ipc(3.0)
            .with_simd_lanes(4)
            .with_arith_eff(0.33)
            .with_mem_bw_gbs(20.0)
            .with_dispatch_overhead_us(12.0))
        .pu(PuSpec::new(PuClass::LittleCpu, "Cortex-A55", 4, 1.8)
            .with_ipc(1.1)
            .with_simd_lanes(2)
            .with_arith_eff(0.28)
            .with_mem_bw_gbs(8.0))
        .pu(PuSpec::new(PuClass::Gpu, "Mali-G610 MC4", 4, 0.9)
            .with_backend(GpuBackend::Vulkan)
            .with_ipc(2.0)
            .with_simd_lanes(32)
            .with_arith_eff(0.38)
            .with_divergence_penalty(0.9)
            .with_irregular_penalty(0.85)
            .with_mem_bw_gbs(16.0)
            .with_dispatch_overhead_us(25.0)
            .with_sync_overhead_us(120.0))
        .dram_bw_gbs(24.0)
        .interference(InterferenceModel::calibrated(
            [
                (PuClass::BigCpu, 1.25),
                (PuClass::LittleCpu, 1.3),
                (PuClass::Gpu, 0.9),
            ],
            0.3,
        ))
        .build()?;

    let app = apps::octree_app(apps::OctreeConfig::default()).model();

    println!("Scheduling the octree pipeline on two devices:\n");
    for soc in [board, devices::pixel_7a()] {
        let name = soc.name().to_string();
        let d = BetterTogether::new(soc, app.clone()).run()?;
        let best = d.best_schedule().expect("autotuned");
        println!("{name}:");
        println!("  best schedule: {best}");
        println!(
            "  measured {:.2} ms/task — {:.2}x vs best homogeneous baseline",
            d.best_latency().expect("measured").as_millis(),
            d.speedup_over_best_baseline().expect("measured")
        );
        let chunks = best
            .chunks()
            .iter()
            .map(|c| format!("{}[{}..={}]", c.pu, c.first_stage, c.last_stage))
            .collect::<Vec<_>>()
            .join("  ");
        println!("  chunks: {chunks}\n");
    }

    println!(
        "The two devices get different stage-to-PU mappings from the same application —\n\
         the specialization BetterTogether automates."
    );
    Ok(())
}
