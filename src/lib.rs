//! # BetterTogether
//!
//! Facade crate re-exporting the full BetterTogether public API: an
//! interference-aware framework for fine-grained software pipelining on
//! heterogeneous SoCs (IISWC 2025), reproduced in Rust.
//!
//! - [`core`] — the end-to-end framework (profile → optimize → autotune).
//! - [`profiler`] — BT-Profiler: isolated and interference-heavy tables.
//! - [`solver`] — the constraint-solving substrate (DPLL + enumerator).
//! - [`pipeline`] — BT-Implementer: dispatcher threads, SPSC queues,
//!   TaskObjects; host and simulated executors.
//! - [`kernels`] — the three evaluation workloads, implemented for real.
//! - [`soc`] — device models, cost/interference models, and the
//!   discrete-event simulator standing in for the paper's four devices.
//! - [`telemetry`] — per-dispatcher counters and execution spans shared by
//!   host and simulated runs, with Chrome trace / JSONL exporters.
//!
//! # Example
//!
//! ```
//! use bettertogether::core::BetterTogether;
//! use bettertogether::kernels::apps;
//! use bettertogether::soc::devices;
//!
//! let app = apps::octree_app(apps::OctreeConfig::default()).model();
//! let deployment = BetterTogether::new(devices::pixel_7a(), app).run()?;
//! println!(
//!     "{} → {} ({:.2}x vs best homogeneous baseline)",
//!     deployment.best_schedule(),
//!     deployment.best_latency(),
//!     deployment.speedup_over_best_baseline(),
//! );
//! # Ok::<(), bettertogether::core::BtError>(())
//! ```
#![warn(missing_docs)]

pub use bt_core as core;
pub use bt_kernels as kernels;
pub use bt_pipeline as pipeline;
pub use bt_profiler as profiler;
pub use bt_soc as soc;
pub use bt_solver as solver;
pub use bt_telemetry as telemetry;
