//! # BetterTogether
//!
//! Facade crate re-exporting the full BetterTogether public API: an
//! interference-aware framework for fine-grained software pipelining on
//! heterogeneous SoCs (IISWC 2025), reproduced in Rust.
//!
//! - [`core`] — the end-to-end framework (profile → optimize → autotune).
//! - [`profiler`] — BT-Profiler: isolated and interference-heavy tables.
//! - [`solver`] — the constraint-solving substrate (DPLL + enumerator).
//! - [`pipeline`] — BT-Implementer: dispatcher threads, SPSC queues,
//!   TaskObjects; host and simulated executors.
//! - [`kernels`] — the three evaluation workloads, implemented for real.
//! - [`soc`] — device models, cost/interference models, and the
//!   discrete-event simulator standing in for the paper's four devices.
//! - [`serve`] — scheduling-as-a-service: a content-addressed plan cache
//!   over the framework loop, with drift-triggered invalidation and
//!   batched cold solving across a device fleet.
//! - [`telemetry`] — per-dispatcher counters and execution spans shared by
//!   host and simulated runs, with Chrome trace / JSONL exporters.
//!
//! # Example
//!
//! ```
//! use bettertogether::core::BetterTogether;
//! use bettertogether::kernels::apps;
//! use bettertogether::soc::devices;
//!
//! let app = apps::octree_app(apps::OctreeConfig::default()).model();
//! let deployment = BetterTogether::new(devices::pixel_7a(), app).run()?;
//! println!(
//!     "{} → {} ({:.2}x vs best homogeneous baseline)",
//!     deployment.best_schedule().expect("autotuned"),
//!     deployment.best_latency().expect("measured"),
//!     deployment.speedup_over_best_baseline().expect("measured"),
//! );
//! # Ok::<(), bettertogether::core::BtError>(())
//! ```
//!
//! The deployment above was measured in the simulator; swap in
//! [`core::HostBackend`] via [`core::BetterTogether::with_backend`] to run
//! the identical loop against real kernels on this machine (see
//! `examples/quickstart.rs`).
#![warn(missing_docs)]

pub use bt_core as core;
pub use bt_kernels as kernels;
pub use bt_pipeline as pipeline;
pub use bt_profiler as profiler;
pub use bt_rt as rt;
pub use bt_serve as serve;
pub use bt_soc as soc;
pub use bt_solver as solver;
pub use bt_telemetry as telemetry;
