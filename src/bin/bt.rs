//! `bt` — command-line front end for the BetterTogether framework.
//!
//! ```text
//! bt --device pixel7a --app octree            # full run, human-readable
//! bt --device jetson --app sparse --json      # machine-readable output
//! bt --device oneplus11 --app dense --mode isolated --candidates 10
//! bt --list                                   # devices & apps
//! ```

use std::process::ExitCode;

use bettertogether::core::{BetterTogether, BtConfig, OptimizerConfig};
use bettertogether::kernels::{apps, AppModel};
use bettertogether::profiler::ProfileMode;
use bettertogether::soc::{devices, SocSpec};

const USAGE: &str = "\
bt — interference-aware software pipelining for heterogeneous SoCs

USAGE:
    bt --device <DEVICE> --app <APP> [OPTIONS]
    bt --list

OPTIONS:
    --device <DEVICE>      pixel7a | oneplus11 | jetson | jetson-lp
    --device-file <PATH>   load a custom SocSpec from JSON instead
    --app <APP>            dense | sparse | octree
    --mode <MODE>          interference (default) | isolated
    --candidates <K>       candidate schedules to autotune (default 20)
    --threshold <θ>        utilization filter T_min ≥ θ·T_max (default 0.45)
    --max-chunks <K>       cap dispatcher threads / chunks per schedule
    --json                 emit the deployment summary as JSON
    --table                print the profiling table
    --explain              print the winning schedule's chunk breakdown
    --energy               report energy per task and EDP vs baselines
    --list                 list available devices and applications
    -h, --help             show this help";

fn device_by_name(name: &str) -> Option<SocSpec> {
    match name {
        "pixel7a" | "pixel" => Some(devices::pixel_7a()),
        "oneplus11" | "oneplus" => Some(devices::oneplus_11()),
        "jetson" => Some(devices::jetson_orin_nano()),
        "jetson-lp" => Some(devices::jetson_orin_nano_lp()),
        _ => None,
    }
}

fn app_by_name(name: &str) -> Option<AppModel> {
    match name {
        "dense" => Some(apps::alexnet_dense_app(apps::AlexNetConfig::default()).model()),
        "sparse" => Some(apps::alexnet_sparse_app(apps::AlexNetConfig::default()).model()),
        "octree" => Some(apps::octree_app(apps::OctreeConfig::default()).model()),
        _ => None,
    }
}

struct Args {
    device: String,
    device_file: Option<String>,
    app: String,
    mode: ProfileMode,
    candidates: usize,
    threshold: f64,
    max_chunks: Option<usize>,
    json: bool,
    table: bool,
    explain: bool,
    energy: bool,
}

fn parse_args() -> Result<Option<Args>, String> {
    let mut args = std::env::args().skip(1).peekable();
    let mut device = None;
    let mut device_file: Option<String> = None;
    let mut app = None;
    let mut mode = ProfileMode::InterferenceHeavy;
    let mut candidates = 20usize;
    let mut threshold = 0.45f64;
    let mut max_chunks = None;
    let mut json = false;
    let mut table = false;
    let mut explain = false;
    let mut energy = false;

    let next_value = |args: &mut std::iter::Peekable<std::iter::Skip<std::env::Args>>,
                      flag: &str|
     -> Result<String, String> {
        args.next().ok_or_else(|| format!("{flag} needs a value"))
    };

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                return Ok(None);
            }
            "--list" => {
                println!("devices: pixel7a, oneplus11, jetson, jetson-lp");
                println!("apps:    dense, sparse, octree");
                return Ok(None);
            }
            "--device" => device = Some(next_value(&mut args, "--device")?),
            "--device-file" => device_file = Some(next_value(&mut args, "--device-file")?),
            "--app" => app = Some(next_value(&mut args, "--app")?),
            "--mode" => {
                mode = match next_value(&mut args, "--mode")?.as_str() {
                    "interference" => ProfileMode::InterferenceHeavy,
                    "isolated" => ProfileMode::Isolated,
                    other => return Err(format!("unknown mode '{other}'")),
                }
            }
            "--candidates" => {
                candidates = next_value(&mut args, "--candidates")?
                    .parse()
                    .map_err(|_| "--candidates needs an integer".to_string())?;
            }
            "--threshold" => {
                threshold = next_value(&mut args, "--threshold")?
                    .parse()
                    .map_err(|_| "--threshold needs a number".to_string())?;
            }
            "--max-chunks" => {
                max_chunks = Some(
                    next_value(&mut args, "--max-chunks")?
                        .parse()
                        .map_err(|_| "--max-chunks needs an integer".to_string())?,
                );
            }
            "--json" => json = true,
            "--table" => table = true,
            "--explain" => explain = true,
            "--energy" => energy = true,
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if device.is_none() && device_file.is_none() {
        return Err("--device or --device-file is required (try --list)".into());
    }
    let device = device.unwrap_or_default();
    let app = app.ok_or("--app is required (try --list)")?;
    Ok(Some(Args {
        device,
        device_file,
        app,
        mode,
        candidates,
        threshold,
        max_chunks,
        json,
        table,
        explain,
        energy,
    }))
}

fn run(args: Args) -> Result<(), String> {
    let soc = match &args.device_file {
        Some(path) => {
            let json =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            serde_json::from_str::<SocSpec>(&json)
                .map_err(|e| format!("invalid device JSON in {path}: {e}"))?
        }
        None => device_by_name(&args.device)
            .ok_or_else(|| format!("unknown device '{}' (try --list)", args.device))?,
    };
    let app =
        app_by_name(&args.app).ok_or_else(|| format!("unknown app '{}' (try --list)", args.app))?;

    let bt = BetterTogether::new(soc, app).with_config(BtConfig {
        profile_mode: args.mode,
        optimizer: OptimizerConfig {
            candidates: args.candidates,
            max_chunks: args.max_chunks,
            ..OptimizerConfig::with_threshold(args.threshold)
        },
    });

    let deployment = bt.run().map_err(|e| e.to_string())?;
    let best_schedule = deployment
        .best_schedule()
        .ok_or("autotuning produced no best schedule")?;

    if args.table {
        println!("{}", deployment.plan.table.render());
    }

    if args.json {
        // Hand-rolled JSON for a stable, dependency-free CLI contract.
        let cands: Vec<String> = deployment
            .plan
            .candidates
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let measured = deployment
                    .outcome
                    .measured_latency(i)
                    .expect("autotune measured every candidate");
                format!(
                    "{{\"schedule\":\"{}\",\"predicted_us\":{:.1},\"measured_us\":{:.1}}}",
                    c.schedule,
                    c.predicted.as_f64(),
                    measured.as_f64()
                )
            })
            .collect();
        println!(
            "{{\"device\":\"{}\",\"app\":\"{}\",\"best_schedule\":\"{}\",\
             \"best_us\":{:.1},\"baseline_cpu_us\":{:.1},\"baseline_gpu_us\":{:.1},\
             \"speedup\":{:.3},\"autotuning_gain\":{:.3},\"candidates\":[{}]}}",
            bt.soc().name(),
            bt.app().name,
            best_schedule,
            deployment.best_latency().expect("measured").as_f64(),
            deployment.baselines.cpu().expect("measured").as_f64(),
            deployment.baselines.gpu().expect("measured").as_f64(),
            deployment.speedup_over_best_baseline().expect("measured"),
            deployment.autotuning_gain().expect("measured"),
            cands.join(",")
        );
    } else {
        println!("device:        {}", bt.soc().name());
        println!(
            "application:   {} ({} stages)",
            bt.app().name,
            bt.app().stage_count()
        );
        println!("profiling:     {} mode", bt.config().profile_mode);
        println!("best schedule: {best_schedule}  (B=big M=medium L=little G=gpu)");
        println!(
            "measured:      {:.3} ms/task",
            deployment.best_latency().expect("measured").as_millis()
        );
        println!(
            "baselines:     CPU {:.3} ms | GPU {:.3} ms",
            deployment.baselines.cpu().expect("measured").as_millis(),
            deployment.baselines.gpu().expect("measured").as_millis()
        );
        println!(
            "speedup:       {:.2}x vs best baseline, {:.2}x vs CPU, {:.2}x vs GPU",
            deployment.speedup_over_best_baseline().expect("measured"),
            deployment.speedup_over_cpu().expect("measured"),
            deployment.speedup_over_gpu().expect("measured")
        );
        println!(
            "autotuning:    {:.2}x beyond predicted-best",
            deployment.autotuning_gain().expect("measured")
        );
        if args.energy {
            use bettertogether::core::energy::{measure_baseline_energy, measure_energy};
            use bettertogether::soc::power::PowerModel;
            use bettertogether::soc::PuClass;
            let model = PowerModel::default_for(bt.soc());
            let e =
                measure_energy(bt.backend(), best_schedule, &model).map_err(|e| e.to_string())?;
            let cpu = measure_baseline_energy(bt.backend(), PuClass::BigCpu, &model)
                .map_err(|e| e.to_string())?;
            let gpu = measure_baseline_energy(bt.backend(), PuClass::Gpu, &model)
                .map_err(|e| e.to_string())?;
            println!(
                "energy:        {:.2} mJ/task at {:.2} W (CPU baseline {:.2} mJ, GPU {:.2} mJ)",
                e.per_task_mj, e.avg_watts, cpu.per_task_mj, gpu.per_task_mj
            );
            println!(
                "EDP:           {:.2} mJ·ms vs best baseline {:.2} mJ·ms ({:.2}x better)",
                e.edp_mj_ms,
                cpu.edp_mj_ms.min(gpu.edp_mj_ms),
                cpu.edp_mj_ms.min(gpu.edp_mj_ms) / e.edp_mj_ms
            );
        }
        if args.explain {
            let winner = &deployment.plan.candidates[deployment.outcome.best_index];
            println!("\nchunk breakdown (predicted):");
            for (chunk, sum) in winner.schedule.chunks().iter().zip(&winner.chunk_sums) {
                let stage_names: Vec<&str> = (chunk.first_stage..=chunk.last_stage)
                    .map(|i| deployment.plan.table.stages()[i].as_str())
                    .collect();
                println!(
                    "  {:>6}  stages {}..={}  {:>9.3} ms  [{}]",
                    chunk.pu.label(),
                    chunk.first_stage,
                    chunk.last_stage,
                    sum.as_millis(),
                    stage_names.join(", ")
                );
            }
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match parse_args() {
        Ok(None) => ExitCode::SUCCESS,
        Ok(Some(args)) => match run(args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
